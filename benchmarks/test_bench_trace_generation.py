"""Throughput benchmark: longitudinal passive-trace generation.

The study's dataset is ≈17M connections; the generator's batched-count
representation keeps full-period generation fast.  This benchmark
measures generation at a representative scale and reports the implied
connection volume."""

from __future__ import annotations

from repro.longitudinal import PassiveTraceGenerator


def test_bench_trace_generation(benchmark, testbed):
    def _generate():
        return PassiveTraceGenerator(testbed, scale=40).generate()

    capture = benchmark.pedantic(_generate, rounds=1, iterations=2)
    total = sum(record.count for record in capture.records)
    print(
        f"\ngenerated {len(capture)} flow records representing {total:,} connections "
        f"across {len(capture.devices())} devices and {len(capture.months())} months"
    )
    print(
        "paper dataset: ~17M connections (avg ~422K/device); scale this generator "
        f"by ~{17_000_000 // max(total, 1)}x to match absolute volume"
    )
    assert len(capture.devices()) == 40
