"""E-T4: regenerate Table 4 (library alert responses / amenability)."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import survey_all_libraries


def test_bench_table4_amenability(benchmark):
    survey = benchmark(survey_all_libraries)
    amenable = {row.library for row in survey if row.amenable}
    assert amenable == {"MbedTLS", "OpenSSL"}
    print("\nTable 4: root-store exploration amenability per TLS library")
    print(
        render_table(
            ["Library", "Known CA, invalid signature", "Unknown CA", "Amenable"],
            [(*row.row(), "yes" if row.amenable else "no") for row in survey],
        )
    )
    print("paper: 2/6 libraries amenable (MbedTLS, OpenSSL) | measured: "
          f"{len(amenable)}/6 ({', '.join(sorted(amenable))})")
