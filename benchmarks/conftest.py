"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints it (run with ``-s`` to see the rendered artifacts; the printed
rows are also written into ``bench_output`` captures).  Timings measure
the full regeneration path, so the harness doubles as a performance
suite over the simulation stack.
"""

from __future__ import annotations

import pytest

from repro.core import ActiveExperimentCampaign
from repro.longitudinal import PassiveTraceGenerator
from repro.roothistory import build_default_universe
from repro.testbed import Testbed


@pytest.fixture(scope="session")
def universe():
    return build_default_universe()


@pytest.fixture(scope="session")
def testbed(universe):
    return Testbed(universe)


@pytest.fixture(scope="session")
def passive_capture(testbed):
    return PassiveTraceGenerator(testbed, scale=40).generate()


@pytest.fixture(scope="session")
def campaign_results(testbed):
    return ActiveExperimentCampaign(testbed).run(include_passthrough=True)
