"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints it (run with ``-s`` to see the rendered artifacts; the printed
rows are also written into ``bench_output`` captures).  Timings measure
the full regeneration path, so the harness doubles as a performance
suite over the simulation stack.

Telemetry integration: ``--telemetry`` enables the observability
subsystem (:mod:`repro.telemetry`) around every benchmark, and
``--metrics-out DIR`` writes one metrics snapshot per benchmark
alongside its timing -- the registry is reset at each test's start, so
a snapshot covers exactly that benchmark's work.  ``--profile-out DIR``
additionally wraps each benchmark in a ``bench.run`` span and writes
its span profile (the same :class:`repro.telemetry.Profiler` document
``iotls trace --profile-out`` produces), so benchmark timings flow
through the same profiling path as CLI runs.  Without the flags,
benchmarks run with telemetry disabled, measuring the guarded
(fast-path) overhead only.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import telemetry
from repro.core import ActiveExperimentCampaign
from repro.longitudinal import PassiveTraceGenerator
from repro.roothistory import build_default_universe
from repro.testbed import Testbed


def pytest_addoption(parser):
    group = parser.getgroup("telemetry")
    group.addoption(
        "--telemetry",
        action="store_true",
        default=False,
        help="enable repro.telemetry around every benchmark",
    )
    group.addoption(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="write one metrics snapshot per benchmark into DIR (implies --telemetry)",
    )
    group.addoption(
        "--profile-out",
        default=None,
        metavar="DIR",
        help="write one span profile per benchmark into DIR (implies --telemetry)",
    )
    parallel = parser.getgroup("parallel")
    parallel.addoption(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the trace/campaign fixtures (default 1; "
        "results are identical for any N)",
    )


@pytest.fixture(autouse=True)
def _benchmark_telemetry(request):
    """Per-benchmark telemetry window: reset, run, snapshot, disable."""
    import json

    metrics_dir = request.config.getoption("--metrics-out")
    profile_dir = request.config.getoption("--profile-out")
    enabled = (
        request.config.getoption("--telemetry")
        or metrics_dir is not None
        or profile_dir is not None
    )
    if not enabled:
        yield
        return
    runtime = telemetry.configure(enabled=True)
    with runtime.tracer.span("bench.run", benchmark=request.node.name):
        yield
    if metrics_dir is not None:
        telemetry.write_snapshot(
            telemetry.get_registry(),
            Path(metrics_dir) / f"{request.node.name}.metrics.json",
            extra={"benchmark": request.node.nodeid},
        )
    if profile_dir is not None:
        from repro.telemetry import Profiler

        path = Path(profile_dir) / f"{request.node.name}.profile.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = Profiler.from_runtime(runtime).to_dict()
        payload["benchmark"] = request.node.nodeid
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    telemetry.configure(enabled=False)


@pytest.fixture(scope="session")
def universe():
    return build_default_universe()


@pytest.fixture(scope="session")
def testbed(universe):
    return Testbed(universe)


@pytest.fixture(scope="session")
def workers(request):
    return request.config.getoption("--workers")


@pytest.fixture(scope="session")
def passive_capture(testbed, workers):
    return PassiveTraceGenerator(testbed, scale=40).generate(workers=workers)


@pytest.fixture(scope="session")
def campaign_results(testbed, workers):
    return ActiveExperimentCampaign(testbed).run(
        include_passthrough=True, workers=workers
    )
