"""E-X2: the TrafficPassthrough verification pass (§4.2)."""

from __future__ import annotations

import statistics

from repro.core import PassthroughExperiment


def test_bench_passthrough(benchmark, testbed, campaign_results):
    experiment = PassthroughExperiment(testbed)

    def _run():
        outcomes = []
        for report in campaign_results.interception:
            device = testbed.device(report.device)
            outcomes.append(experiment.run_device(device, report))
        return outcomes

    outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    mean_extra = statistics.mean(outcome.extra_fraction for outcome in outcomes)
    new_failures = sum(outcome.new_validation_failures for outcome in outcomes)
    print("\nTrafficPassthrough verification (§4.2)")
    print(f"average additional destinations surfaced: {mean_extra:.1%}")
    print(f"new certificate-validation failures found: {new_failures}")
    assert new_failures == 0
    assert 0.10 < mean_extra < 0.35
    print(
        f"paper: ~20.4% more destinations, no new failures | "
        f"measured: {mean_extra:.1%} more, {new_failures} new failures"
    )
