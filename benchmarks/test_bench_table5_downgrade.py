"""E-T5: regenerate Table 5 (downgrade-on-failure audit)."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import DowngradeAuditor

PAPER_ROWS = {
    "Amazon Echo Dot": ("no", "yes", "7 / 9"),
    "Amazon Echo Plus": ("no", "yes", "6 / 7"),
    "Amazon Echo Spot": ("no", "yes", "11 / 15"),
    "Fire TV": ("no", "yes", "13 / 21"),
    "Apple HomePod": ("no", "yes", "7 / 9"),
    "Google Home Mini": ("no", "yes", "5 / 5"),
    "Roku TV": ("yes", "yes", "8 / 15"),
}


def test_bench_table5_downgrade(benchmark, testbed):
    auditor = DowngradeAuditor(testbed)
    reports = benchmark.pedantic(auditor.audit_all_downgrades, rounds=1, iterations=1)
    downgraders = {report.device: report for report in reports if report.downgrades}
    assert set(downgraders) == set(PAPER_ROWS)
    rows = [report.table5_row() for report in downgraders.values()]
    print("\nTable 5: devices that downgrade security upon connection failures")
    print(
        render_table(
            ["Device", "Failed handshake", "Incomplete handshake", "Behavior", "Downgraded/Tested"],
            rows,
        )
    )
    for device, (failed, incomplete, ratio) in PAPER_ROWS.items():
        report = downgraders[device]
        measured_ratio = f"{report.downgraded_destinations} / {report.tested_destinations}"
        assert measured_ratio == ratio, device
        assert ("yes" if report.downgrades_on_failed else "no") == failed, device
        assert ("yes" if report.downgrades_on_incomplete else "no") == incomplete, device
    print("paper: 7 downgrading devices, ratios as above | measured: exact match")
