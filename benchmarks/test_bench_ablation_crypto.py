"""Ablation: signature-oracle cost vs a heavier hash-chain signature mode.

DESIGN.md's first design decision replaces real asymmetric crypto with a
signature oracle.  This ablation quantifies the choice: it benchmarks
chain validation with the oracle against a "realistic-cost" variant that
burns the ~equivalent work of an RSA-2048 verification (modelled as
iterated hashing), showing why the longitudinal generator stays
laptop-scale."""

from __future__ import annotations

import hashlib

from repro.pki import CertificateAuthority, DistinguishedName, RootStore, utc, validate_chain

WHEN = utc(2021, 3)
HOST = "ablation.example.com"

#: Iterated-SHA256 rounds approximating an RSA-2048 verify's cost.
_EXPENSIVE_ROUNDS = 400


def _setup():
    ca = CertificateAuthority(DistinguishedName(common_name="Ablation Root"), seed=b"ablation")
    intermediate = ca.issue_intermediate(
        DistinguishedName(common_name="Ablation Intermediate"), seed=b"ablation-int"
    )
    leaf, _ = intermediate.issue_leaf(HOST, seed=b"ablation-leaf")
    store = RootStore.from_certificates("ablation", [ca.certificate])
    return [leaf, intermediate.certificate], store


def _oracle_validate(chain, store):
    for _ in range(100):
        result = validate_chain(chain, store, when=WHEN, hostname=HOST)
        assert result.ok
    return result


def _expensive_validate(chain, store):
    for _ in range(100):
        # Same validation plus the simulated asymmetric-verify burn per
        # signature in the chain (leaf + intermediate).
        for certificate in chain:
            digest = certificate.tbs_bytes()
            for _ in range(_EXPENSIVE_ROUNDS):
                digest = hashlib.sha256(digest).digest()
        result = validate_chain(chain, store, when=WHEN, hostname=HOST)
        assert result.ok
    return result


def test_bench_ablation_oracle(benchmark):
    chain, store = _setup()
    benchmark(_oracle_validate, chain, store)


def test_bench_ablation_expensive_crypto(benchmark):
    chain, store = _setup()
    benchmark(_expensive_validate, chain, store)
