"""E-T8: regenerate Table 8 (revocation-checking support) from passive data."""

from __future__ import annotations

from repro.analysis import analyze_revocation, render_table


def test_bench_table8_revocation(benchmark, passive_capture):
    summary = benchmark(analyze_revocation, passive_capture)
    assert summary.crl_devices == ["Samsung TV"]
    assert len(summary.ocsp_devices) == 3
    assert len(summary.stapling_devices) == 12
    assert len(summary.non_checking_devices) == 28
    print("\nTable 8: certificate-revocation support among devices")
    print(render_table(["Method", "Devices (count)"], summary.table8_rows()))
    print(
        "paper: CRL 1, OCSP 3, stapling 12, 28 devices never check | measured: "
        f"CRL {len(summary.crl_devices)}, OCSP {len(summary.ocsp_devices)}, "
        f"stapling {len(summary.stapling_devices)}, "
        f"{len(summary.non_checking_devices)} never check"
    )
