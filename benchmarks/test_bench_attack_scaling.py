"""Extension bench: the §5.3 attack-scaling economics, quantified.

"Attackers can use knowledge of the fingerprints and associated
vulnerabilities to scale their attacks to large numbers of devices."
This bench learns the fingerprint->flaw knowledge base from the audit,
replays the passive capture, and compares a targeted attacker against a
blind one."""

from __future__ import annotations

from repro.analysis import render_table
from repro.analysis.attack_scaling import (
    FingerprintTargetedAttacker,
    shared_risk_analysis,
)
from repro.fingerprint import collect_device_fingerprints


def test_bench_attack_scaling(benchmark, testbed, campaign_results, passive_capture):
    collected = collect_device_fingerprints(testbed)
    attacker = FingerprintTargetedAttacker.from_campaign(
        campaign_results, collected, testbed
    )
    outcome = benchmark(attacker.evaluate, passive_capture)

    print("\nFingerprint-targeted vs blind interception over the passive capture:")
    print(
        render_table(
            ["Metric", "Value"],
            [
                ("connections observed", f"{outcome.total_connections:,}"),
                ("connections a targeted attacker touches", f"{outcome.targeted_connections:,} ({outcome.touch_fraction:.1%})"),
                ("targeted yield (interceptions/attack)", f"{outcome.targeted_yield:.1%}"),
                ("blind yield", f"{outcome.blind_yield:.1%}"),
                ("recall vs blind", f"{outcome.recall:.0%}"),
            ],
        )
    )
    findings = shared_risk_analysis(campaign_results, collected, testbed)
    scored = [finding for finding in findings if finding.predicted_devices]
    precision = sum(f.precision for f in scored) / len(scored) if scored else 1.0
    print(f"cross-device risk propagation: {len(scored)} shared-fingerprint "
          f"predictions, mean precision {precision:.0%}")
    assert outcome.recall == 1.0
    assert outcome.targeted_yield > outcome.blind_yield
    print(
        "paper (§5.3): shared instances let attackers scale; measured: targeting "
        f"touches {outcome.touch_fraction:.1%} of traffic at {outcome.recall:.0%} recall"
    )
