"""E-T2: exercise the Table 2 attack toolkit against a reference client.

Table 2 is the attack inventory itself; the benchmark validates that
each forged-credential shape produces its intended validation failure
(and measures the forging + validation cost)."""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.mitm import AttackerToolbox
from repro.pki import RootStore, ValidationErrorCode, utc, validate_chain

HOST = "victim.example.com"
WHEN = utc(2021, 3)


@pytest.fixture(scope="module")
def toolbox(testbed):
    return AttackerToolbox(issuing_ca=testbed.anchor(0))


@pytest.fixture(scope="module")
def victim_store(testbed):
    return RootStore.from_certificates(
        "victim", [testbed.anchor(index).certificate for index in range(3)]
    )


def _run_all(toolbox, victim_store):
    outcomes = {}
    chains = {
        "NoValidation": toolbox.self_signed_for(HOST),
        "WrongHostname": toolbox.wrong_hostname_chain(),
        "InvalidBasicConstraints": toolbox.invalid_basic_constraints_chain(HOST),
    }
    for attack, chain in chains.items():
        outcomes[attack] = validate_chain(
            list(chain), victim_store, when=WHEN, hostname=HOST
        ).code
    return outcomes


def test_bench_table2_attacks(benchmark, toolbox, victim_store):
    outcomes = benchmark(_run_all, toolbox, victim_store)
    assert outcomes["NoValidation"] is ValidationErrorCode.UNKNOWN_CA
    assert outcomes["WrongHostname"] is ValidationErrorCode.HOSTNAME_MISMATCH
    assert outcomes["InvalidBasicConstraints"] is ValidationErrorCode.INVALID_BASIC_CONSTRAINTS
    print("\nTable 2: interception attack suite (validation failure each induces)")
    print(
        render_table(
            ["Attack", "Strict-client failure"],
            [(attack, code.value) for attack, code in outcomes.items()],
        )
    )
