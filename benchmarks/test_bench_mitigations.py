"""Ablation: effect of the §6 mitigations on the Table 7 attack surface.

Re-runs the interception audit over the 11 vulnerable devices in three
configurations -- stock, leaf-pinned, and hardened with the uniform OS
TLS service -- and reports how many devices remain interceptable under
each.  (Root pinning is exercised in the unit tests, where its caveat --
same-CA certificates still pass -- is asserted directly.)
"""

from __future__ import annotations

from datetime import datetime, timezone

from repro.analysis import render_table
from repro.core.interception import TABLE2_ATTACKS
from repro.devices import Device, device_by_name
from repro.mitigations import PinnedClient, harden_device, pin_leaf
from repro.mitm import AttackerToolbox, InterceptionProxy
from repro.tls import perform_handshake

VULNERABLE = (
    "Zmodo Doorbell",
    "Amcrest Camera",
    "Smarter iKettle",
    "Yi Camera",
    "Wink Hub 2",
    "LG TV",
    "Smartthings Hub",
    "Amazon Echo Plus",
    "Amazon Echo Dot",
    "Amazon Echo Spot",
    "Fire TV",
)

WHEN = datetime(2021, 3, 15, tzinfo=timezone.utc)


def _device_interceptable(device, testbed, toolbox, *, pin: bool) -> bool:
    """Can ANY destination be intercepted by ANY Table 2 attack?"""
    for destination in device.profile.destinations:
        for mode in TABLE2_ATTACKS:
            proxy = InterceptionProxy(toolbox=toolbox, mode=mode)
            if pin:
                # Pinned configuration: wrap the instance's client with a
                # leaf pin for the genuine endpoint.  Even a client whose
                # validation has been failure-disabled stays protected,
                # so per-attempt state does not matter here.
                instance = device.instance(destination.instance)
                client = PinnedClient(
                    instance.spec.library.client(instance.client_config(38)),
                    pin_leaf(testbed.server_for(destination).chain[0]),
                )
                for _ in range(4):
                    result = perform_handshake(
                        client, proxy, hostname=destination.hostname, when=WHEN
                    )
                    if result.established:
                        return True
            else:
                # Stock configuration: drive the device's own instance so
                # stateful behaviours (the Yi Camera's validation-disable
                # counter) apply across consecutive attempts.
                device.power_cycle()
                for _ in range(4):
                    connection = device.connect_destination(destination, proxy)
                    if connection.established:
                        return True
    return False


def _sweep(testbed, universe):
    toolbox = AttackerToolbox(issuing_ca=testbed.anchor(0))
    counts = {"stock": 0, "leaf-pinned": 0, "os-tls-service": 0}
    for name in VULNERABLE:
        stock = testbed.device(name)
        stock.power_cycle()
        if _device_interceptable(stock, testbed, toolbox, pin=False):
            counts["stock"] += 1
        stock.power_cycle()
        if _device_interceptable(stock, testbed, toolbox, pin=True):
            counts["leaf-pinned"] += 1
        hardened = Device(harden_device(device_by_name(name)), universe=universe)
        if _device_interceptable(hardened, testbed, toolbox, pin=False):
            counts["os-tls-service"] += 1
    return counts


def test_bench_mitigation_ablation(benchmark, testbed, universe):
    counts = benchmark.pedantic(_sweep, args=(testbed, universe), rounds=1, iterations=1)
    print("\nMitigation ablation over the 11 Table 7 devices:")
    print(
        render_table(
            ["Configuration", "Devices still interceptable"],
            [(config, f"{count} / {len(VULNERABLE)}") for config, count in counts.items()],
        )
    )
    assert counts["stock"] == 11
    assert counts["leaf-pinned"] == 0
    assert counts["os-tls-service"] == 0
    print(
        "paper (§6): 'the interception attacks we presented could have been prevented "
        "with the proper use of certificate pinning' -- confirmed; uniform OS TLS "
        "service also eliminates the class"
    )
