"""E-F5: regenerate Figure 5 (shared-fingerprint graph)."""

from __future__ import annotations

from repro.fingerprint import (
    build_reference_database,
    build_shared_graph,
    collect_device_fingerprints,
)


def _build(testbed):
    collected = collect_device_fingerprints(testbed)
    return collected, build_shared_graph(collected, build_reference_database())


def test_bench_fig5_graph(benchmark, testbed):
    collected, graph = benchmark.pedantic(_build, args=(testbed,), rounds=1, iterations=1)

    multi = sum(1 for c in collected if c.multiple_instances)
    single = sum(1 for c in collected if not c.multiple_instances)
    sharing = graph.sharing_devices()
    assert (multi, single) == (14, 18)
    assert len(sharing) == 19

    print("\nFigure 5: shared TLS fingerprints")
    print(f"devices with one fingerprint: {single}; with multiple: {multi}")
    print(f"devices sharing >=1 fingerprint with other devices/applications: {len(sharing)}")
    print("clusters:")
    for cluster in sorted(graph.device_clusters(), key=len, reverse=True):
        print(f"  {sorted(cluster)}")
    openssl_devices = graph.devices_sharing_with_application("openssl")
    print(f"devices matching the stock OpenSSL label: {sorted(openssl_devices)}")
    assert len(openssl_devices) == 6
    assert graph.dominant_fingerprint_label("Fire TV") == {"android-sdk"}
    print(
        "paper: 18 single-fp / 14 multi-fp devices, 19 sharing, 6 OpenSSL-matching, "
        "Fire TV dominant fp = android-sdk | measured: exact match"
    )
