"""E-X1: regenerate the §5.1 prior-work comparison aggregates."""

from __future__ import annotations

from repro.analysis import compare_with_prior_work


def test_bench_comparison(benchmark, passive_capture):
    comparison = benchmark(compare_with_prior_work, passive_capture)
    print("\n§5.1 comparison with prior work")
    print(comparison.summary())
    # Shape: IoT far behind the web on TLS 1.3, far ahead on RC4.
    assert comparison.tls13_fraction < 0.30
    assert comparison.rc4_fraction > 0.50
    print(
        f"paper: ~17% TLS 1.3, ~60% RC4 | measured: "
        f"{comparison.tls13_fraction:.0%} TLS 1.3, {comparison.rc4_fraction:.0%} RC4"
    )
