"""E-F3: regenerate Figure 3 (forward-secret establishment)."""

from __future__ import annotations

from repro.longitudinal import build_strong_established_heatmap, detect_adoption_events
from repro.longitudinal.adoption import AdoptionKind


def test_bench_fig3_fs(benchmark, passive_capture):
    heatmap = benchmark(build_strong_established_heatmap, passive_capture)
    shown = heatmap.shown_devices()
    hidden = heatmap.hidden_devices()
    assert len(hidden) == 18

    print("\nFigure 3: fraction of established connections with forward secrecy (higher is better)")
    for device in shown:
        series = heatmap.series[device]
        row = "".join(
            "." if v is None else ("#" if v >= 0.75 else "+" if v >= 0.25 else "-" if v > 0 else " ")
            for v in series.values
        )
        print(f"{device:18.18s} |{row}|")

    events = {
        e.device: e.month
        for e in detect_adoption_events(passive_capture)
        if e.kind is AdoptionKind.FORWARD_SECRECY_ADOPTED
    }
    assert events == {
        "Ring Doorbell": 3,
        "Apple TV": 14,
        "Blink Hub": 21,
        "Wink Hub 2": 21,
        "Apple HomePod": 24,
    }
    print(
        "paper: 18 always-FS devices hidden; adopters Ring 4/2018, Apple TV 3/2019, "
        "Wink & Blink 10/2019, HomePod 1/2020 | measured: "
        f"{len(hidden)} hidden, adoption months {sorted(events.values())}"
    )
