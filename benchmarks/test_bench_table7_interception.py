"""E-T7: regenerate Table 7 (interception-vulnerable devices)."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import InterceptionAuditor

PAPER_RATIOS = {
    "Zmodo Doorbell": "6 / 6",
    "Amcrest Camera": "2 / 2",
    "Smarter iKettle": "1 / 1",  # "Smarter Brewer" in the paper
    "Yi Camera": "1 / 1",
    "Wink Hub 2": "1 / 2",
    "LG TV": "1 / 2",
    "Smartthings Hub": "1 / 3",
    "Amazon Echo Plus": "1 / 8",
    "Amazon Echo Dot": "1 / 9",
    "Amazon Echo Spot": "1 / 17",
    "Fire TV": "1 / 21",
}


def test_bench_table7_interception(benchmark, testbed):
    auditor = InterceptionAuditor(testbed)
    reports = benchmark.pedantic(auditor.audit_all, rounds=1, iterations=1)
    vulnerable = [report for report in reports if report.vulnerable]
    assert len(vulnerable) == 11
    print("\nTable 7: devices vulnerable to TLS interception attacks")
    print(
        render_table(
            ["Device", "NoValidation", "InvalidBasicConstraints", "WrongHostname", "Vuln/Total"],
            [report.table7_row() for report in vulnerable],
        )
    )
    for report in vulnerable:
        expected = PAPER_RATIOS[report.device]
        measured = f"{report.vulnerable_destinations} / {report.total_destinations}"
        assert measured == expected, report.device
    sensitive = sum(1 for report in vulnerable if report.leaks_sensitive_data)
    assert sensitive == 7
    print(
        f"paper: 11 vulnerable devices, 7 leaking sensitive data | "
        f"measured: {len(vulnerable)} vulnerable, {sensitive} leaking"
    )
