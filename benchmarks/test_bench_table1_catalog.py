"""E-T1: regenerate Table 1 (the 40-device testbed catalog)."""

from __future__ import annotations

from repro.analysis import render_table, table1_rows
from repro.devices import active_devices, build_catalog


def test_bench_table1_catalog(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 40
    passive_only = [device for _, device, marker in rows if marker == "*"]
    assert len(passive_only) == 8
    assert len(active_devices()) == 32
    print("\nTable 1: devices in the study (* = passive-only)")
    print(render_table(["Category", "Device", "Passive-only"], rows))
    print(
        f"paper: 40 devices, 32 active, >=200M units | "
        f"measured: {len(build_catalog())} devices, {len(active_devices())} active, "
        f"{sum(d.units_sold_millions for d in build_catalog()):.0f}M units"
    )
