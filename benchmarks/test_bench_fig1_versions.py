"""E-F1: regenerate Figure 1 (advertised vs established TLS versions
per device per month, three bands)."""

from __future__ import annotations

import numpy as np

from repro.longitudinal import build_version_heatmap
from repro.tls.versions import VersionBand


def _render_band_row(series) -> str:
    cells = []
    for value in series.values:
        if value is None:
            cells.append(".")
        elif value >= 0.75:
            cells.append("#")
        elif value >= 0.25:
            cells.append("+")
        elif value > 0:
            cells.append("-")
        else:
            cells.append(" ")
    return "".join(cells)


def test_bench_fig1_versions(benchmark, passive_capture):
    heatmap = benchmark(build_version_heatmap, passive_capture)
    shown = heatmap.shown_devices()
    assert len(shown) == 12
    assert len(heatmap.hidden_devices()) == 28

    print("\nFigure 1: TLS version heatmap (rows per device: 1.3 / 1.2 / older)")
    print("legend: '#'>=75%  '+'>=25%  '-'>0  ' '=0  '.'=no traffic; months 1/2018..3/2020")
    for side, table in (("ADVERTISED", heatmap.advertised), ("ESTABLISHED", heatmap.established)):
        print(f"--- {side} ---")
        for device in shown:
            for band in (VersionBand.TLS_1_3, VersionBand.TLS_1_2, VersionBand.OLDER):
                series = table[band].get(device)
                if series is None:
                    continue
                print(f"{device:18.18s} {band.value:>5s} |{_render_band_row(series)}|")

    # Headline claims around Figure 1.
    matrix = heatmap.matrix(VersionBand.OLDER, established=False)
    wemo = heatmap.devices.index("Wemo Plug")
    assert np.nanmin(matrix[wemo]) == 1.0  # Wemo advertises insecure throughout
    print(
        "paper: 12 devices shown / 28 TLS1.2-exclusive hidden | "
        f"measured: {len(shown)} shown / {len(heatmap.hidden_devices())} hidden"
    )
