"""E-T6: regenerate Table 6 (devices establishing old TLS versions)."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import DowngradeAuditor


def test_bench_table6_oldversions(benchmark, testbed):
    auditor = DowngradeAuditor(testbed)
    supports = benchmark.pedantic(auditor.audit_all_old_versions, rounds=1, iterations=1)
    old = [support for support in supports if support.any_old]
    assert len(old) == 18
    print("\nTable 6: devices that establish deprecated TLS versions when offered")
    print(
        render_table(
            ["Device", "TLS 1.0", "TLS 1.1"],
            [
                (s.device, "yes" if s.tls10 else "no", "yes" if s.tls11 else "no")
                for s in old
            ],
        )
    )
    wemo = next(s for s in old if s.device == "Wemo Plug")
    assert wemo.tls10 and not wemo.tls11
    print(
        "paper: 18 table rows (15 both versions, Fridge/Dryer 1.1-only, Wemo 1.0-only; "
        "prose says 19) | measured: "
        f"{len(old)} devices ({sum(1 for s in old if s.tls10 and s.tls11)} both)"
    )
