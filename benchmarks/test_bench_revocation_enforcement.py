"""Extension bench: revocation *enforcement* across the testbed.

Table 8 counts who signals revocation checking; this bench revokes each
device's first-destination certificate and measures who actually refuses
it -- quantifying the exposure behind "a large majority of devices (28)
do not ever conduct certificate revocation checks"."""

from __future__ import annotations

from collections import Counter

from repro.analysis import render_table
from repro.core import RevocationAuditor


def test_bench_revocation_enforcement(benchmark, testbed):
    auditor = RevocationAuditor(testbed)
    results = benchmark.pedantic(auditor.audit_all, rounds=1, iterations=1)

    by_method = Counter(result.method.value for result in results)
    protected = [result for result in results if result.protected]
    exposed = [result for result in results if result.accepts_revoked_certificate]

    print("\nRevocation enforcement against a revoked server certificate:")
    print(
        render_table(
            ["Outcome", "Devices"],
            [
                ("rejects revoked certificate", len(protected)),
                ("accepts revoked certificate", len(exposed)),
            ],
        )
    )
    print(f"methods on the audited boot paths: {dict(by_method)}")
    assert len(protected) + len(exposed) == 32
    assert len(exposed) >= 20  # the paper's non-checking majority, enforced
    print(
        "paper: 28 devices never check revocation | measured: "
        f"{len(exposed)} device boot paths accept a revoked certificate"
    )
