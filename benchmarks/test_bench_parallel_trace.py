"""Scaled serial-vs-parallel benchmark for passive-trace generation.

Runs the generator at a scale large enough that worker-process startup
(spawn + :mod:`repro` import) amortises, once serially and once through
the sharded executor at ``--workers N``.  Prints the measured speedup
and asserts the two captures are identical -- timing *and* determinism
in one pass.  ``tools/bench_parallel.py`` runs the same workload
standalone and records results in ``BENCH_parallel.json``.
"""

from __future__ import annotations

from time import perf_counter

from repro.longitudinal import PassiveTraceGenerator

#: High enough that spawn/import overhead is small against real work.
BENCH_SCALE = 200
BENCH_SEED = "iotls-bench-parallel"


def test_bench_parallel_trace(benchmark, workers):
    parallel_workers = max(workers, 2)

    started = perf_counter()
    serial = PassiveTraceGenerator(scale=BENCH_SCALE, seed=BENCH_SEED).generate()
    serial_seconds = perf_counter() - started

    def _generate_parallel():
        return PassiveTraceGenerator(scale=BENCH_SCALE, seed=BENCH_SEED).generate(
            workers=parallel_workers
        )

    started = perf_counter()
    parallel = benchmark.pedantic(_generate_parallel, rounds=1, iterations=1)
    parallel_seconds = perf_counter() - started

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    print(
        f"\nserial {serial_seconds:.2f}s vs {parallel_workers} workers "
        f"{parallel_seconds:.2f}s -- {speedup:.2f}x speedup "
        f"({len(serial)} flow records)"
    )
    assert serial.records == parallel.records
    assert serial.revocation_events == parallel.revocation_events
