"""E-T3: regenerate Table 3 (platform root-store histories) and the
derived probe sets (122 common / 87 deprecated)."""

from __future__ import annotations

from repro.analysis import render_table, table3_rows
from repro.roothistory import derive_common_names, derive_deprecated_names
from repro.roothistory.universe import PROBE_YEAR


def _derive(universe):
    common = derive_common_names(universe.histories, universe.records, probe_year=PROBE_YEAR)
    deprecated = derive_deprecated_names(
        universe.histories, universe.records, probe_year=PROBE_YEAR
    )
    return common, deprecated


def test_bench_table3_sources(benchmark, universe):
    common, deprecated = benchmark(_derive, universe)
    assert len(common) == 122
    assert len(deprecated) == 87
    print("\nTable 3: historical root-store sources")
    print(
        render_table(
            ["Platform", "Total versions", "Earliest year", "Latest store size"],
            table3_rows(universe),
        )
    )
    print(
        f"paper: 122 common / 87 deprecated probe certificates | "
        f"measured: {len(common)} common / {len(deprecated)} deprecated"
    )
