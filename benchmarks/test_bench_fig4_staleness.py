"""E-F4: regenerate Figure 4 (removal-year staleness of retained roots)."""

from __future__ import annotations

from repro.analysis import distrusted_trusted_by, staleness_by_device


def test_bench_fig4_staleness(benchmark, campaign_results, universe):
    staleness = benchmark(staleness_by_device, campaign_results.probes, universe)
    assert len(staleness) == 8

    years = list(range(2013, 2021))
    print("\nFigure 4: removal year of deprecated roots still present per device")
    header = "Device".ljust(20) + "".join(f"{year:>6}" for year in years)
    print(header)
    total_by_year = {year: 0 for year in years}
    for entry in sorted(staleness, key=lambda s: s.total_stale):
        cells = "".join(f"{entry.removal_years.get(year, 0):>6}" for year in years)
        print(entry.device.ljust(20) + cells)
        for year, count in entry.removal_years.items():
            total_by_year[year] += count
    print("TOTAL".ljust(20) + "".join(f"{total_by_year[year]:>6}" for year in years))

    # Shape assertions from §5.2.
    recent = total_by_year[2018] + total_by_year[2019]
    assert recent > sum(total_by_year.values()) / 2  # mass in 2018/2019
    lg = next(s for s in staleness if s.device == "LG TV")
    assert lg.oldest_removal_year == 2013  # LG TV reaches back to 2013

    trusted = distrusted_trusted_by(campaign_results.probes, universe)
    assert all(names for names in trusted.values())
    print("\nExplicitly distrusted CAs still trusted:")
    for device, names in sorted(trusted.items()):
        print(f"  {device:20s} {', '.join(names)}")
    print(
        "paper: majority deprecated 2018/2019, LG TV back to 2013, every probed device "
        "trusts >=1 distrusted CA | measured: confirmed"
    )
