"""E-F2: regenerate Figure 2 (insecure-ciphersuite advertisement)."""

from __future__ import annotations

from repro.longitudinal import build_insecure_advertised_heatmap


def test_bench_fig2_insecure(benchmark, passive_capture):
    heatmap = benchmark(build_insecure_advertised_heatmap, passive_capture)
    shown = heatmap.shown_devices()
    assert len(shown) == 34
    assert len(heatmap.hidden_devices()) == 6

    print("\nFigure 2: fraction of ClientHellos advertising insecure suites (lower is better)")
    for device in shown:
        series = heatmap.series[device]
        row = "".join(
            "." if v is None else ("#" if v >= 0.75 else "+" if v >= 0.25 else "-" if v > 0 else " ")
            for v in series.values
        )
        print(f"{device:18.18s} |{row}|")

    blink = heatmap.series["Blink Hub"]
    assert blink.values[16] == 0.0  # dropped weak ciphers 5/2019
    # SmartThings' main instance drops weak suites 3/2020; its legacy side
    # instance keeps them, so the fraction falls sharply but not to zero.
    smartthings = heatmap.series["Smartthings Hub"]
    assert smartthings.values[25] > 0.65
    assert smartthings.values[26] < 0.35
    print(
        "paper: 34 devices advertise insecure suites, 6 clean (hidden); Blink Hub "
        "deprecates 5/2019, SmartThings 3/2020 | measured: "
        f"{len(shown)} shown / {len(heatmap.hidden_devices())} hidden, events confirmed"
    )
