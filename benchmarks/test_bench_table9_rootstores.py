"""E-T9: regenerate Table 9 (root-store exploration of the 8 amenable
devices via the TLS-alert side channel)."""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import RootStoreProber
from repro.devices import device_by_name

PAPER_TABLE9 = {
    # device: (common %, deprecated %) as reported in the paper
    "Google Home Mini": (100, 6),
    "Amazon Echo Plus": (98, 18),
    "Amazon Echo Dot": (98, 19),
    "Amazon Echo Dot 3": (90, 27),
    "Wink Hub 2": (92, 38),
    "Roku TV": (91, 41),
    "LG TV": (93, 59),
    "Harman Invoke": (82, 59),
}


def _probe_all(testbed):
    prober = RootStoreProber(testbed)
    reports = []
    for name in PAPER_TABLE9:
        device = testbed.device(device_by_name(name))
        reports.append(prober.probe_device(device))
    return reports


def test_bench_table9_rootstores(benchmark, testbed):
    reports = benchmark.pedantic(_probe_all, args=(testbed,), rounds=1, iterations=1)
    assert all(report.calibration.amenable for report in reports)
    print("\nTable 9: root-store exploration (present / conclusively checked)")
    print(
        render_table(
            ["Device", "Common certs (122)", "Deprecated certs (87)"],
            [report.table9_row() for report in reports],
        )
    )
    print("\npaper vs measured (percent present among conclusive):")
    for report in reports:
        cp, cc = report.common_tally
        dp, dc = report.deprecated_tally
        paper_common, paper_dep = PAPER_TABLE9[report.device]
        measured_common = round(100 * cp / cc)
        measured_dep = round(100 * dp / dc)
        print(
            f"  {report.device:20s} common {paper_common:>3}% -> {measured_common:>3}%   "
            f"deprecated {paper_dep:>2}% -> {measured_dep:>2}%"
        )
        # Shape check: within 10 percentage points of the paper.
        assert abs(measured_common - paper_common) <= 10, report.device
        assert abs(measured_dep - paper_dep) <= 10, report.device
