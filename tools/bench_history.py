"""Shared benchmark-trajectory helpers: append/load ``BENCH_history.jsonl``.

Every ``tools/bench_*.py`` run appends one JSON line per timing to the
repo-root ``BENCH_history.jsonl``, so the repository accumulates a
performance trajectory across commits -- date, git revision, host
fingerprint, and seconds.  ``tools/bench_gate.py`` reads the trajectory
back and flags regressions against the best prior same-host run.

Since the run ledger landed, every appended row is a full
``iotls-run-ledger/1`` entry (``kind: "bench"``) written through the
ledger's atomic append boundary, and each timing is *also* mirrored
into the run ledger next to the history file -- one queryable store
(``iotls runs trend``) spans experiment runs and benchmarks alike.
``--migrate`` rewrites pre-ledger rows in place into the unified
schema, tagging rows that predate the host fingerprint ``legacy: true``
so the gate's ``None == None`` shape fallback stops matching them
against modern runs.

The file is JSONL (one self-contained record per line) rather than a
JSON array so appends are atomic and merge conflicts stay line-local.

Usage (migration)::

    PYTHONPATH=src python tools/bench_history.py --migrate [--dry-run]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path
from typing import Any

try:
    from repro.telemetry.schemas import LEDGER_SCHEMA
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.telemetry.schemas import LEDGER_SCHEMA

__all__ = ["HISTORY_FILENAME", "append_history", "git_rev", "load_history", "main"]

HISTORY_FILENAME = "BENCH_history.jsonl"


def git_rev(repo_root: str | Path | None = None) -> str:
    """The current short git revision, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root or Path(__file__).resolve().parents[1],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = completed.stdout.strip()
    return rev if completed.returncode == 0 and rev else "unknown"


def append_history(
    benchmark: str,
    seconds: float,
    *,
    path: str | Path | None = None,
    extra: dict[str, Any] | None = None,
    ledger: str | Path | None = "auto",
) -> dict[str, Any]:
    """Append one timing record to the trajectory and return it.

    The record is a complete ``iotls-run-ledger/1`` entry (benchmark
    fields at the top level, where the gate, SLO evaluation, and trend
    report have always read them) written via the ledger's atomic
    single-``write()`` boundary.  ``ledger="auto"`` mirrors the entry
    into the run ledger sitting next to the history file; an explicit
    path overrides the destination and ``None`` disables mirroring.
    """
    # The telemetry package is the sanctioned clock/host-provenance and
    # ledger-write boundary (RL002/RL013); lazy so read-only consumers
    # (bench_gate) need no repro install.
    from repro.telemetry import ledger as run_ledger

    entry = run_ledger.build_entry(
        "bench",
        kind="bench",
        seconds=seconds,
        extra={
            "benchmark": benchmark,
            "git_rev": git_rev(),
            "host_cpu_count": os.cpu_count(),
            **(extra or {}),
        },
    )
    path = Path(path) if path else Path(__file__).resolve().parents[1] / HISTORY_FILENAME
    run_ledger.append_entry(entry, path)
    if ledger == "auto":
        ledger = path.resolve().parent / run_ledger.DEFAULT_LEDGER_PATH
    if ledger is not None:
        run_ledger.append_entry(entry, ledger)
    return entry


def load_history(path: str | Path | None = None) -> list[dict[str, Any]]:
    """Read the trajectory; missing file or malformed lines yield/skip."""
    import json

    path = Path(path) if path else Path(__file__).resolve().parents[1] / HISTORY_FILENAME
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # a torn/conflicted line must not poison the gate
    return entries


def main() -> int:
    """``--migrate``: rewrite legacy rows into ledger schema in place."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--migrate",
        action="store_true",
        help=f"rewrite pre-ledger rows into {LEDGER_SCHEMA} schema "
        "(tagging fingerprint-less rows legacy: true)",
    )
    parser.add_argument(
        "--history",
        default=str(Path(__file__).resolve().parents[1] / HISTORY_FILENAME),
        metavar="PATH",
        help=f"trajectory file (default: repo-root {HISTORY_FILENAME})",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would change without rewriting the file",
    )
    args = parser.parse_args()
    if not args.migrate:
        print("error: nothing to do; pass --migrate", file=sys.stderr)
        return 2

    from repro.telemetry import ledger as run_ledger

    rows = load_history(args.history)
    if not rows:
        print(f"no history at {args.history}; nothing to migrate")
        return 0
    migrated = [run_ledger.from_history_row(row) for row in rows]
    changed = sum(1 for row, entry in zip(rows, migrated) if entry != row)
    tagged = sum(1 for entry in migrated if entry.get("legacy"))
    print(
        f"{len(rows)} row(s): {changed} migrated to {run_ledger.LEDGER_SCHEMA}, "
        f"{tagged} tagged legacy (no host fingerprint)"
    )
    if args.dry_run:
        print("dry run: file left untouched")
        return 0
    if changed:
        run_ledger.rewrite_ledger(migrated, args.history)
        print(f"rewrote {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
