"""Shared benchmark-trajectory helpers: append/load ``BENCH_history.jsonl``.

Every ``tools/bench_*.py`` run appends one JSON line per timing to the
repo-root ``BENCH_history.jsonl``, so the repository accumulates a
performance trajectory across commits -- date, git revision, host core
count, and seconds.  ``tools/bench_gate.py`` reads the trajectory back
and flags regressions against the best prior same-host run.

The file is JSONL (one self-contained record per line) rather than a
JSON array so appends are atomic and merge conflicts stay line-local.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path
from typing import Any

__all__ = ["HISTORY_FILENAME", "append_history", "git_rev", "load_history"]

HISTORY_FILENAME = "BENCH_history.jsonl"


def git_rev(repo_root: str | Path | None = None) -> str:
    """The current short git revision, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root or Path(__file__).resolve().parents[1],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = completed.stdout.strip()
    return rev if completed.returncode == 0 and rev else "unknown"


def append_history(
    benchmark: str,
    seconds: float,
    *,
    path: str | Path | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Append one timing record to the trajectory and return it."""
    # The telemetry package is the sanctioned clock/host-provenance
    # boundary (RL002); lazy so read-only consumers (bench_gate) need
    # no repro install.
    from repro.telemetry import host_date, host_fingerprint

    entry: dict[str, Any] = {
        "benchmark": benchmark,
        "date": host_date(),
        "git_rev": git_rev(),
        "host": host_fingerprint(),
        "host_cpu_count": os.cpu_count(),
        "seconds": round(seconds, 4),
    }
    if extra:
        entry.update(extra)
    path = Path(path) if path else Path(__file__).resolve().parents[1] / HISTORY_FILENAME
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path | None = None) -> list[dict[str, Any]]:
    """Read the trajectory; missing file or malformed lines yield/skip."""
    path = Path(path) if path else Path(__file__).resolve().parents[1] / HISTORY_FILENAME
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # a torn/conflicted line must not poison the gate
    return entries
