"""Benchmark regression gate over the ``BENCH_history.jsonl`` trajectory.

Compares each benchmark's latest run against the best (fastest) prior
run recorded on the same host -- cross-host timings are not
comparable, so entries from other host shapes are ignored.  Entries
carry a ``host`` fingerprint (cpu count, platform, machine) written by
``bench_history.append_history``; when both entries have one, the full
fingerprint must match, and legacy entries fall back to comparing
``host_cpu_count`` alone.  A latest run slower than ``threshold`` x
the best prior time (default 1.25) is a regression.

``--slo tools/slo.json`` additionally evaluates declarative SLOs
against the trajectory (see ``repro.telemetry.slo``): blocking SLO
failures fail the gate, advisory ones only warn.

Exit codes: 0 = within threshold (or nothing to compare), 1 = at least
one regression or blocking SLO failure (``--warn-only`` downgrades
this to 0 for advisory CI steps), 2 = usage error / bad SLO policy.

Usage::

    python tools/bench_gate.py [--history BENCH_history.jsonl] \
        [--threshold 1.25] [--slo tools/slo.json] [--warn-only]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_history import HISTORY_FILENAME, load_history  # noqa: E402

DEFAULT_THRESHOLD = 1.25


def _same_host(a: dict, b: dict) -> bool:
    """True when two history entries were recorded on comparable hosts.

    Entries written since the ``host`` fingerprint landed must match on
    the full fingerprint (cpu count + platform + machine); comparisons
    involving a legacy entry fall back to ``host_cpu_count`` so old
    trajectory data keeps gating.
    """
    fp_a, fp_b = a.get("host"), b.get("host")
    if isinstance(fp_a, dict) and isinstance(fp_b, dict):
        return fp_a == fp_b
    return a.get("host_cpu_count") == b.get("host_cpu_count")


#: Workload-shape parameters that must match for two runs of the same
#: benchmark to be comparable.  Entries that omit a key (or predate it)
#: compare as ``None == None``, so legacy trajectory data keeps gating.
SHAPE_KEYS = ("scale", "workers", "flow_cap")


def _same_shape(a: dict, b: dict) -> bool:
    """True when two history entries measured the same workload shape.

    Same-host is not enough: ``bench_stream.py --scale 400`` and
    ``--scale 4000`` both append ``stream_trace`` entries, and gating
    the big run against the small one's time manufactures a phantom
    10x regression (or masks a real one in the other direction).
    """
    return all(a.get(key) == b.get(key) for key in SHAPE_KEYS)


def gate(entries: list[dict], *, threshold: float = DEFAULT_THRESHOLD) -> list[dict]:
    """Return one verdict per benchmark with >=2 comparable runs.

    Each verdict carries the benchmark name, the latest and best-prior
    seconds, the ratio, and ``regressed`` (ratio above ``threshold``).
    """
    by_benchmark: dict[str, list[dict]] = {}
    for entry in entries:
        if "benchmark" in entry and isinstance(entry.get("seconds"), (int, float)):
            by_benchmark.setdefault(entry["benchmark"], []).append(entry)

    verdicts = []
    for benchmark, runs in sorted(by_benchmark.items()):
        latest = runs[-1]
        # Migrated pre-fingerprint rows are tagged `legacy: true`: their
        # missing shape keys would compare None == None against any
        # modern run, so they are never usable as comparison baselines.
        prior = [
            run
            for run in runs[:-1]
            if not run.get("legacy")
            and _same_host(run, latest)
            and _same_shape(run, latest)
        ]
        if not prior:
            continue
        best = min(prior, key=lambda run: run["seconds"])
        ratio = latest["seconds"] / best["seconds"] if best["seconds"] > 0 else 0.0
        verdicts.append(
            {
                "benchmark": benchmark,
                "latest_seconds": latest["seconds"],
                "latest_rev": latest.get("git_rev", "unknown"),
                "best_prior_seconds": best["seconds"],
                "best_prior_rev": best.get("git_rev", "unknown"),
                "ratio": round(ratio, 4),
                "threshold": threshold,
                "regressed": ratio > threshold,
            }
        )
    return verdicts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--history",
        default=str(Path(__file__).resolve().parents[1] / HISTORY_FILENAME),
        help=f"trajectory file (default: repo-root {HISTORY_FILENAME})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="slowdown ratio above which the latest run regresses (default 1.25)",
    )
    parser.add_argument(
        "--slo",
        default=None,
        metavar="PATH",
        help="evaluate SLOs from this policy file; blocking failures fail the gate",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (advisory CI step)",
    )
    parser.add_argument(
        "--regressions-warn-only",
        action="store_true",
        help="timing regressions only warn (wall-clock ratios are noisy "
        "across runners), but blocking SLO failures still fail the gate",
    )
    args = parser.parse_args()
    if args.threshold <= 0:
        print("error: --threshold must be positive", file=sys.stderr)
        return 2

    entries = load_history(args.history)
    if not entries:
        print(f"no benchmark history at {args.history}; nothing to gate")
        return 0

    slo_blocking_failures: list[dict] = []
    if args.slo:
        try:
            from repro.telemetry.slo import (
                SloPolicyError,
                evaluate_slos,
                load_slo_policy,
                render_verdicts,
            )
        except ImportError:
            print(
                "error: --slo needs the repro package importable "
                "(run with PYTHONPATH=src)",
                file=sys.stderr,
            )
            return 2
        try:
            slos = load_slo_policy(args.slo)
        except (OSError, SloPolicyError) as exc:
            print(f"error: bad SLO policy {args.slo}: {exc}", file=sys.stderr)
            return 2
        slo_verdicts = evaluate_slos(entries, slos)
        print("SLO verdicts:")
        print(render_verdicts(slo_verdicts))
        print()
        failures = [v for v in slo_verdicts if v["status"] == "fail"]
        slo_blocking_failures = [v for v in failures if v["blocking"]]
        for verdict in failures:
            level = "BLOCKING" if verdict["blocking"] else "advisory"
            print(
                f"{level} SLO failure: {verdict['slo']} "
                f"({verdict['benchmark']}.{verdict['metric']} = {verdict['value']})",
                file=sys.stderr,
            )

    verdicts = gate(entries, threshold=args.threshold)
    if not verdicts:
        print(
            f"{len(entries)} history entries but no benchmark has a prior "
            "same-host, same-shape run; nothing to compare"
        )
        if slo_blocking_failures and not args.warn_only:
            return 1
        return 0

    regressed = [verdict for verdict in verdicts if verdict["regressed"]]
    for verdict in verdicts:
        marker = "REGRESSION" if verdict["regressed"] else "ok"
        print(
            f"[{marker}] {verdict['benchmark']}: "
            f"{verdict['latest_seconds']:.3f}s ({verdict['latest_rev']}) vs best "
            f"{verdict['best_prior_seconds']:.3f}s ({verdict['best_prior_rev']}) "
            f"-- {verdict['ratio']:.2f}x (threshold {verdict['threshold']:.2f}x)"
        )
    if regressed:
        print(
            f"\n{len(regressed)} benchmark(s) slower than "
            f"{args.threshold:.2f}x their best same-host run",
            file=sys.stderr,
        )
    else:
        print(f"\nall {len(verdicts)} gated benchmark(s) within threshold")
    failing = bool(slo_blocking_failures) or (
        bool(regressed) and not args.regressions_warn_only
    )
    if args.warn_only:
        return 0
    return 1 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
