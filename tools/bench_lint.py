"""Benchmark the whole-program lint pass and record its wall time.

The project graph makes reprolint quadratic-curious: pass 1 walks every
module's AST several times (symbols, aliases, calls, thread entries)
and pass 2 runs fixpoint propagation over the call graph, so a careless
change can turn the blocking CI lint step from seconds into minutes.
This benchmark times one full ``--whole-program`` run over ``src`` and
``tools`` and appends the timing to the bench trajectory
(``BENCH_history.jsonl``), where the ``lint-wall-time-budget`` SLO in
``tools/slo.json`` turns it into a gated budget -- the same
``bench_gate --slo`` machinery that guards streaming throughput.

Usage::

    PYTHONPATH=src python tools/bench_lint.py [--jobs N] [--repeat K]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_history import append_history  # noqa: E402

try:
    from repro.lint import Baseline, run_lint
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.lint import Baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCHMARK = "lint_whole_program"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="process-pool width for the per-file pass (default serial, "
        "the configuration the CI lint job times)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="K",
        help="time K runs and record the fastest (default 1)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="trajectory file (default: repo-root BENCH_history.jsonl)",
    )
    args = parser.parse_args()

    baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
    best_seconds = None
    report = None
    for _ in range(max(1, args.repeat)):
        started = perf_counter()
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tools"],
            root=REPO_ROOT,
            baseline=baseline,
            whole_program=True,
            jobs=args.jobs if args.jobs > 1 else None,
        )
        seconds = perf_counter() - started
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds

    assert report is not None and best_seconds is not None
    entry = append_history(
        BENCHMARK,
        round(best_seconds, 4),
        path=args.history,
        extra={
            "files_checked": report.files_checked,
            "violations": len(report.violations),
            "suppressed": len(report.suppressed),
            "jobs": args.jobs,
        },
    )
    print(
        f"{BENCHMARK}: {entry['seconds']}s for {report.files_checked} "
        f"file(s) (jobs={args.jobs}, violations={len(report.violations)}, "
        f"baselined={len(report.suppressed)})"
    )
    if not report.ok:
        print("note: lint is not clean; the blocking lint job will fail", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
