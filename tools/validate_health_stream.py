"""Validate a ``--heartbeat-out`` run-health stream (iotls-health-stream/1).

CI runs this over the JSONL a ``--heartbeat-out`` run produced to pin
the contract external consumers depend on:

* line 1 is a ``header`` record carrying the schema tag,
* at least one ``heartbeat`` record follows (the Throttle's
  first-call-passes rule guarantees one even for sub-interval runs),
* heartbeat ``seq`` numbers are strictly monotonic from 1,
* every heartbeat carries the required fields,
* exactly one ``summary`` record closes the stream, last.

Exit codes: 0 = valid, 1 = malformed stream, 2 = usage error.

Usage::

    python tools/validate_health_stream.py run.health.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

EXPECTED_SCHEMA = "iotls-health-stream/1"
HEARTBEAT_REQUIRED = ("seq", "label", "done", "elapsed_seconds", "rate", "ewma_rate")
SUMMARY_REQUIRED = ("label", "done", "seconds", "rate", "heartbeats")


def validate(path: Path) -> list[str]:
    """Return every contract violation found in the stream (empty = valid)."""
    errors: list[str] = []
    try:
        lines = [line for line in path.read_text(encoding="utf-8").splitlines() if line]
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not lines:
        return ["stream is empty"]

    records = []
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict) or "kind" not in record:
            errors.append(f"line {number}: record has no 'kind' field")
            continue
        records.append((number, record))

    if not records:
        return errors or ["no parseable records"]

    first_number, first = records[0]
    if first.get("kind") != "header":
        errors.append(f"line {first_number}: stream must start with a header record")
    elif first.get("schema") != EXPECTED_SCHEMA:
        errors.append(
            f"line {first_number}: schema {first.get('schema')!r}, "
            f"expected {EXPECTED_SCHEMA!r}"
        )

    heartbeats = [(n, r) for n, r in records if r.get("kind") == "heartbeat"]
    summaries = [(n, r) for n, r in records if r.get("kind") == "summary"]

    if not heartbeats:
        errors.append("no heartbeat records (expected at least one)")
    last_seq = 0
    for number, record in heartbeats:
        for key in HEARTBEAT_REQUIRED:
            if key not in record:
                errors.append(f"line {number}: heartbeat missing {key!r}")
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                errors.append(
                    f"line {number}: seq {seq} not strictly after {last_seq}"
                )
            last_seq = seq

    if len(summaries) != 1:
        errors.append(f"{len(summaries)} summary records (expected exactly 1)")
    else:
        number, summary = summaries[0]
        if (number, summary) != (records[-1][0], records[-1][1]):
            errors.append(f"line {number}: summary is not the final record")
        for key in SUMMARY_REQUIRED:
            if key not in summary:
                errors.append(f"line {number}: summary missing {key!r}")

    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stream", help="run-health JSONL file to validate")
    args = parser.parse_args()
    path = Path(args.stream)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    errors = validate(path)
    if errors:
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        return 1
    heartbeat_count = sum(
        1
        for line in path.read_text(encoding="utf-8").splitlines()
        if line and json.loads(line).get("kind") == "heartbeat"
    )
    print(f"{path}: valid {EXPECTED_SCHEMA} stream ({heartbeat_count} heartbeat(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
