"""Back-compat shim: validate a run-health stream (iotls-health-stream/1).

The validator now lives in ``tools/validate_streams.py`` alongside the
run-ledger and bench-trend contract checks.  This entry point keeps the
old filename (and its public names) working for existing CI configs and
scripts::

    python tools/validate_health_stream.py run.health.jsonl

is equivalent to::

    python tools/validate_streams.py run.health.jsonl \
        --schema iotls-health-stream/1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from validate_streams import (  # noqa: E402
    HEALTH_SCHEMA as EXPECTED_SCHEMA,
    HEARTBEAT_REQUIRED,
    SUMMARY_REQUIRED,
    validate_health_stream as validate,
)

__all__ = ["EXPECTED_SCHEMA", "HEARTBEAT_REQUIRED", "SUMMARY_REQUIRED", "validate"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stream", help="run-health JSONL file to validate")
    args = parser.parse_args()
    path = Path(args.stream)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    errors = validate(path)
    if errors:
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(f"{path}: valid {EXPECTED_SCHEMA} stream")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
