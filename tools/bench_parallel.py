"""Record serial-vs-parallel trace-generation timings in BENCH_parallel.json.

Runs the passive-trace generator at a benchmark scale once serially and
once per requested worker count, verifies every parallel capture is
record-identical to the serial one, and writes the timings, speedups,
and host core count to ``BENCH_parallel.json`` at the repo root.  Each
timing is also appended to the ``BENCH_history.jsonl`` trajectory that
``tools/bench_gate.py`` gates on.  Telemetry is enabled for every run
(serial included, so timings compare like with like) and each parallel
entry records ``worker_skew`` -- the slowest shard's wall time over the
mean, from the stitched cross-worker span profile -- which the
``parallel-skew-ceiling`` SLO watches for straggler regressions.

Usage::

    PYTHONPATH=src python tools/bench_parallel.py [--scale 200] \
        [--workers 2 4] [--out BENCH_parallel.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_history import append_history  # noqa: E402

import repro.telemetry as telemetry
from repro.longitudinal import PassiveTraceGenerator
from repro.parallel import pool_session
from repro.telemetry import Profiler, host_date

DEFAULT_SCALE = 200
SEED = "iotls-bench-parallel"


def _timed_generate(scale: int, workers: int):
    """One telemetry-isolated generation run: capture, seconds, skew,
    and the warm pool's reuse stats (``None`` for the serial run).

    The runtime is reset before each run so the span profile (and the
    worker skew derived from it) covers exactly this run.  Parallel runs
    execute inside a :func:`pool_session`, like real ``run_*`` calls;
    the timing includes the pool spawn, so speedups stay honest about
    the one-off warm-up cost the session amortises.
    """
    runtime = telemetry.get()
    runtime.reset()
    pool_stats = None
    started = perf_counter()
    if workers == 1:
        capture = PassiveTraceGenerator(scale=scale, seed=SEED).generate(workers=1)
    else:
        with pool_session(workers) as pool:
            capture = PassiveTraceGenerator(scale=scale, seed=SEED).generate(
                workers=workers
            )
            pool_stats = pool.stats() if pool is not None else None
    seconds = perf_counter() - started
    skew = Profiler.from_runtime(runtime).shard_skew()
    return capture, seconds, skew, pool_stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="mirror timing entries into this run ledger "
        "(default: the .iotls/ledger.jsonl next to the history file)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="record timings in BENCH_history.jsonl only",
    )
    args = parser.parse_args()
    ledger = None if args.no_ledger else (args.ledger or "auto")

    # Telemetry on for serial and parallel alike: both pay the same
    # instrumentation cost, so speedup ratios stay meaningful.
    telemetry.configure(enabled=True)

    serial_capture, serial_seconds, _, _ = _timed_generate(args.scale, workers=1)
    print(f"serial: {serial_seconds:.2f}s ({len(serial_capture)} flow records)")
    append_history(
        "bench_parallel/serial",
        serial_seconds,
        extra={"scale": args.scale},
        ledger=ledger,
    )

    runs = {}
    for workers in args.workers:
        capture, seconds, skew, pool_stats = _timed_generate(
            args.scale, workers=workers
        )
        extra = {"scale": args.scale}
        if skew is not None:
            extra["worker_skew"] = skew["max_over_mean"]
        if pool_stats is not None:
            extra["warm_pool_reused_dispatches"] = pool_stats["reused_dispatches"]
        append_history(
            f"bench_parallel/workers{workers}", seconds, extra=extra, ledger=ledger
        )
        identical = (
            capture.records == serial_capture.records
            and capture.revocation_events == serial_capture.revocation_events
        )
        speedup = serial_seconds / seconds if seconds > 0 else 0.0
        skew_note = f", skew={skew['max_over_mean']:.2f}x" if skew is not None else ""
        print(
            f"workers={workers}: {seconds:.2f}s -- {speedup:.2f}x, "
            f"identical={identical}{skew_note}"
        )
        runs[str(workers)] = {
            "seconds": round(seconds, 4),
            "speedup_vs_serial": round(speedup, 4),
            "identical_to_serial": identical,
            "worker_skew": skew["max_over_mean"] if skew is not None else None,
            # How many dispatches rode an already-warm process (spawn
            # amortisation evidence; see repro.parallel.pool).
            "warm_pool": pool_stats,
        }

    document = {
        "benchmark": "tools/bench_parallel.py (passive-trace generation)",
        "date": host_date(),
        "command": {
            "serial": f"iotls trace --scale {args.scale} --seed {SEED}",
            "parallel": f"iotls trace --scale {args.scale} --seed {SEED} --workers N",
        },
        "units": f"seconds per full 27-month generation at scale={args.scale}",
        "host_cpu_count": os.cpu_count(),
        "serial": {"seconds": round(serial_seconds, 4)},
        "parallel": runs,
        "acceptance": (
            "every parallel capture must be record-identical to the serial one; "
            ">=1.8x speedup expected at 4 workers on a host with >=4 cores "
            "(CPU-bound workload: speedup is bounded by host_cpu_count)"
        ),
    }
    path = Path(args.out)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return 0 if all(run["identical_to_serial"] for run in runs.values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
