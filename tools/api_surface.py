"""Snapshot and check the library's public API surface.

The public surface is every package's ``__all__`` plus, for the
``repro.api`` run facade specifically, the full call signature of each
exported callable (parameter names, kinds, and defaults -- the things a
caller's code depends on).  ``--update`` writes the committed baseline
(``tools/api_surface.json``); ``--check`` (the default) re-derives the
surface and fails with a name-level diff when it no longer matches, so
accidental API breaks surface in CI instead of in consumers.

Usage::

    PYTHONPATH=src python tools/api_surface.py --check   # CI gate
    PYTHONPATH=src python tools/api_surface.py --update  # after a deliberate change
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
from pathlib import Path

try:
    from repro.telemetry.schemas import API_SURFACE_SCHEMA
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.telemetry.schemas import API_SURFACE_SCHEMA

BASELINE = Path(__file__).resolve().parent / "api_surface.json"

#: Packages whose ``__all__`` constitutes the public surface.
MODULES = [
    "repro.api",
    "repro.analysis",
    "repro.cli",
    "repro.core",
    "repro.devices",
    "repro.fingerprint",
    "repro.lint",
    "repro.longitudinal",
    "repro.mitm",
    "repro.parallel",
    "repro.pki",
    "repro.roothistory",
    "repro.serve",
    "repro.telemetry",
    "repro.testbed",
    "repro.tls",
]

#: The facade's signatures are part of the contract, not just its names.
SIGNATURE_MODULE = "repro.api"


def _signature(obj) -> list[dict[str, str]] | None:
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return None
    return [
        {
            "name": parameter.name,
            "kind": parameter.kind.name,
            "default": (
                "<required>"
                if parameter.default is inspect.Parameter.empty
                else repr(parameter.default)
            ),
        }
        for parameter in signature.parameters.values()
    ]


def build_surface() -> dict:
    surface: dict = {"schema": API_SURFACE_SCHEMA, "modules": {}, "signatures": {}}
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        surface["modules"][module_name] = sorted(module.__all__)
    facade = importlib.import_module(SIGNATURE_MODULE)
    for name in sorted(facade.__all__):
        signature = _signature(getattr(facade, name))
        if signature is not None:
            surface["signatures"][f"{SIGNATURE_MODULE}.{name}"] = signature
    return surface


def _diff(baseline: dict, current: dict) -> list[str]:
    lines = []
    base_modules = baseline.get("modules", {})
    for module_name in MODULES:
        old = set(base_modules.get(module_name, []))
        new = set(current["modules"][module_name])
        for name in sorted(old - new):
            lines.append(f"{module_name}: removed {name!r}")
        for name in sorted(new - old):
            lines.append(f"{module_name}: added {name!r}")
    base_signatures = baseline.get("signatures", {})
    for qualified, signature in current["signatures"].items():
        old = base_signatures.get(qualified)
        if old is not None and old != signature:
            lines.append(f"{qualified}: signature changed")
    for qualified in sorted(set(base_signatures) - set(current["signatures"])):
        lines.append(f"{qualified}: signature no longer derivable")
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true", help="diff against the baseline (default)"
    )
    mode.add_argument(
        "--update", action="store_true", help="rewrite the committed baseline"
    )
    args = parser.parse_args()

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    current = build_surface()

    if args.update:
        BASELINE.write_text(json.dumps(current, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {BASELINE}")
        return 0

    if not BASELINE.exists():
        print(f"missing baseline {BASELINE}; run with --update first", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    lines = _diff(baseline, current)
    if lines:
        print("public API surface drifted from tools/api_surface.json:", file=sys.stderr)
        for line in lines:
            print(f"  {line}", file=sys.stderr)
        print(
            "intentional change? re-run: PYTHONPATH=src python tools/api_surface.py --update",
            file=sys.stderr,
        )
        return 1
    total = sum(len(names) for names in current["modules"].values())
    print(f"api surface ok: {total} exported names across {len(MODULES)} modules")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
