"""Benchmark the streaming trace pipeline at paper scale.

Streams the full 27-month capture into a count-only sink at a large
``--scale`` (the default, 4000, approximates the study's ~17M-connection
volume -- 100x the analysis default) with a ``--flow-cap`` so record
volume tracks connection volume.  Two passes:

1. a **timing pass** with the tracemalloc hold disabled
   (``ResourceSampler(trace_heap=False)``) -- tracemalloc instruments
   every allocation and used to put a hard multi-second floor under the
   measurement, hiding real hot-path wins -- which produces the
   throughput figure and the RSS peak, then
2. a **heap probe** with tracing on, which produces the traced-heap
   peak; its wall time is never recorded.

The point of the memory measurement: peak memory must stay flat while
connection volume grows, because nothing is materialised.  Each run
appends a ``stream_trace`` entry to the ``BENCH_history.jsonl``
trajectory that ``tools/bench_gate.py`` gates on -- including
``records_per_second`` (the ``stream-throughput-floor`` SLO) and
``peak_rss_kib`` (the ``stream-rss-ceiling`` SLO in ``tools/slo.json``).

Usage::

    PYTHONPATH=src python tools/bench_stream.py [--scale 4000] \
        [--flow-cap 50] [--workers 1] [--skip-heap-probe]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_history import append_history  # noqa: E402

from repro.longitudinal import PassiveTraceGenerator
from repro.parallel import pool_session
from repro.telemetry import ResourceSampler
from repro.testbed import DiscardSink

DEFAULT_SCALE = 4000  # ~100x the analysis default; approximates the paper's volume
SEED = "iotls-bench-stream"


def safe_rate(count: int, seconds: float, *, floor: float = 1e-9) -> float:
    """Events per second with the elapsed time clamped away from zero.

    A degenerate timing (zero or near-zero elapsed -- tiny workloads,
    coarse clocks) must never record ``inf``/``ZeroDivisionError`` into
    the trajectory: one non-finite ``records_per_second`` poisons every
    downstream trend statistic and SLO comparison over the series.
    """
    return count / max(seconds, floor)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument("--flow-cap", type=int, default=50)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--skip-heap-probe",
        action="store_true",
        help="timing pass only; record peak_mib as 0 (quick iterations)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="mirror the timing entry into this run ledger "
        "(default: the .iotls/ledger.jsonl next to the history file)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="record the timing in BENCH_history.jsonl only",
    )
    args = parser.parse_args()

    generator = PassiveTraceGenerator(
        scale=args.scale, seed=SEED, flow_cap=args.flow_cap
    )
    # One warm pool spans both passes when --workers > 1, mirroring how
    # the run facade amortises worker spawns across phases.
    with pool_session(args.workers):
        # Timing pass: untraced, so the clock sees the real hot path.
        sink = DiscardSink()
        with ResourceSampler(trace_heap=False) as sampler:
            started = perf_counter()
            generator.stream_into(sink, workers=args.workers)
            seconds = perf_counter() - started
        resources = sampler.summary()

        # Heap probe: traced, untimed.  Same workload, so its traced
        # peak is the timing pass's peak without the observer effect.
        peak_traced_bytes = 0
        if not args.skip_heap_probe:
            with ResourceSampler() as heap_sampler:
                generator.stream_into(DiscardSink(), workers=args.workers)
            peak_traced_bytes = heap_sampler.summary()["peak_traced_bytes"]

    throughput = safe_rate(sink.records_seen, seconds)
    peak_mib = peak_traced_bytes / (1024 * 1024)
    peak_rss_kib = resources["peak_rss_kib"]
    print(
        f"scale={args.scale} flow_cap={args.flow_cap} workers={args.workers}: "
        f"{seconds:.2f}s -- {sink.records_seen} flow records "
        f"({sink.connections_seen} connections), "
        f"{throughput:,.0f} records/s, peak {peak_mib:.1f} MiB traced, "
        f"RSS {peak_rss_kib:,} KiB"
    )
    append_history(
        "stream_trace",
        seconds,
        extra={
            "scale": args.scale,
            "flow_cap": args.flow_cap,
            "workers": args.workers,
            "flow_records": sink.records_seen,
            "connections": sink.connections_seen,
            "records_per_second": round(throughput, 1),
            "peak_mib": round(peak_mib, 2),
            "peak_rss_kib": peak_rss_kib,
        },
        ledger=None if args.no_ledger else (args.ledger or "auto"),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
