"""Benchmark the streaming trace pipeline at paper scale.

Streams the full 27-month capture into a count-only sink at a large
``--scale`` (the default, 4000, approximates the study's ~17M-connection
volume -- 100x the analysis default) with a ``--flow-cap`` so record
volume tracks connection volume, and reports throughput plus resource
peaks measured by :class:`repro.telemetry.ResourceSampler` (traced-heap
peak via its reference-counted tracemalloc hold, plus whole-process
RSS).  The point of the measurement: peak memory must stay flat while
connection volume grows, because nothing is materialised.  Each run
appends a ``stream_trace`` entry to the ``BENCH_history.jsonl``
trajectory that ``tools/bench_gate.py`` gates on -- including
``peak_rss_kib``, which the ``stream-rss-ceiling`` SLO in
``tools/slo.json`` watches.

Usage::

    PYTHONPATH=src python tools/bench_stream.py [--scale 4000] \
        [--flow-cap 50] [--workers 1]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_history import append_history  # noqa: E402

from repro.longitudinal import PassiveTraceGenerator
from repro.telemetry import ResourceSampler
from repro.testbed import DiscardSink

DEFAULT_SCALE = 4000  # ~100x the analysis default; approximates the paper's volume
SEED = "iotls-bench-stream"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument("--flow-cap", type=int, default=50)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    generator = PassiveTraceGenerator(
        scale=args.scale, seed=SEED, flow_cap=args.flow_cap
    )
    sink = DiscardSink()
    # The sampler context manager guarantees the tracemalloc hold is
    # released even when stream_into raises mid-run.
    with ResourceSampler() as sampler:
        started = perf_counter()
        generator.stream_into(sink, workers=args.workers)
        seconds = perf_counter() - started
    resources = sampler.summary()

    throughput = sink.records_seen / seconds if seconds > 0 else 0.0
    peak_mib = resources["peak_traced_bytes"] / (1024 * 1024)
    peak_rss_kib = resources["peak_rss_kib"]
    print(
        f"scale={args.scale} flow_cap={args.flow_cap} workers={args.workers}: "
        f"{seconds:.2f}s -- {sink.records_seen} flow records "
        f"({sink.connections_seen} connections), "
        f"{throughput:,.0f} records/s, peak {peak_mib:.1f} MiB traced, "
        f"RSS {peak_rss_kib:,} KiB"
    )
    append_history(
        "stream_trace",
        seconds,
        extra={
            "scale": args.scale,
            "flow_cap": args.flow_cap,
            "workers": args.workers,
            "flow_records": sink.records_seen,
            "connections": sink.connections_seen,
            "records_per_second": round(throughput, 1),
            "peak_mib": round(peak_mib, 2),
            "peak_rss_kib": peak_rss_kib,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
