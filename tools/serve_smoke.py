"""Smoke-test the resident fleet service end to end.

Drives a real ``iotls serve`` subprocess the way CI (and a curious
operator) would:

1. start the server on an ephemeral-ish port with a fresh ledger,
2. ``POST /runs`` the same trace request twice and assert the cache
   contract: ``miss`` then ``hit``, byte-identical stream bodies, equal
   manifest digests, and **zero** new warm-pool dispatches for the hit,
3. validate the streamed body against the ``iotls-trace-stream/1``
   contract and the access log against ``iotls-serve-access/1``
   (via :mod:`validate_streams`),
4. assert a distinct request misses (the cache is content-addressed,
   not request-order magic),
5. shut the server down and leave the access log behind for artifact
   upload.

Exit codes: 0 = contract holds, 1 = violation, 2 = environment failure
(server would not start).

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--port N] [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from validate_streams import validate_access_log, validate_trace_stream  # noqa: E402

TRACE_REQUEST = {"command": "trace", "scale": 1, "seed": "serve-smoke"}
OTHER_REQUEST = {"command": "trace", "scale": 1, "seed": "serve-smoke-b"}


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
        return json.loads(response.read())


def post_run(base: str, body: dict) -> tuple[dict, bytes]:
    request = urllib.request.Request(
        f"{base}/runs",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return dict(response.headers), response.read()


def wait_healthy(base: str, deadline: float) -> bool:
    while time.monotonic() < deadline:
        try:
            if get(base, "/healthz").get("status") == "ok":
                return True
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    return False


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8753)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--keep",
        metavar="DIR",
        help="run inside DIR and keep ledger/artifacts/access log "
        "(default: a temp dir, deleted on success)",
    )
    args = parser.parse_args()

    workdir = Path(args.keep) if args.keep else Path(tempfile.mkdtemp(prefix="iotls-serve-"))
    workdir.mkdir(parents=True, exist_ok=True)
    access_log = workdir / "access.jsonl"
    base = f"http://127.0.0.1:{args.port}"
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else str(src)
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(args.port),
            "--workers",
            str(args.workers),
            "--ledger",
            str(workdir / "ledger.jsonl"),
            "--artifact-dir",
            str(workdir / "artifacts"),
            "--access-log",
            str(access_log),
        ],
        env=env,
        cwd=workdir,
    )
    failures: list[str] = []
    try:
        if not wait_healthy(base, time.monotonic() + 60):
            print("error: server never became healthy", file=sys.stderr)
            return 2

        first_headers, first_body = post_run(base, TRACE_REQUEST)
        dispatches_after_miss = (get(base, "/status")["pool"] or {}).get("dispatches", 0)
        second_headers, second_body = post_run(base, TRACE_REQUEST)
        dispatches_after_hit = (get(base, "/status")["pool"] or {}).get("dispatches", 0)

        if first_headers.get("X-IoTLS-Cache") != "miss":
            failures.append(f"first request: cache {first_headers.get('X-IoTLS-Cache')!r}, expected 'miss'")
        if second_headers.get("X-IoTLS-Cache") != "hit":
            failures.append(f"second request: cache {second_headers.get('X-IoTLS-Cache')!r}, expected 'hit'")
        digest_a = first_headers.get("X-IoTLS-Manifest-Digest")
        digest_b = second_headers.get("X-IoTLS-Manifest-Digest")
        if not digest_a or digest_a != digest_b:
            failures.append(f"manifest digests differ across identical requests: {digest_a} vs {digest_b}")
        if first_body != second_body:
            failures.append("cached stream body differs from the computed one")
        if dispatches_after_hit != dispatches_after_miss:
            failures.append(
                f"cache hit dispatched work: pool dispatches {dispatches_after_miss} "
                f"-> {dispatches_after_hit}"
            )

        distinct_headers, _ = post_run(base, OTHER_REQUEST)
        if distinct_headers.get("X-IoTLS-Cache") != "miss":
            failures.append("distinct request did not miss the cache")

        stream_path = workdir / "stream-body.jsonl"
        stream_path.write_bytes(first_body)
        for problem in validate_trace_stream(stream_path):
            failures.append(f"trace stream: {problem}")

        status = get(base, "/status")
        print(
            "serve smoke:",
            json.dumps({"cache": status["cache"], "pool": status["pool"], "resident": status["resident"]}),
        )
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()

    for problem in validate_access_log(access_log):
        failures.append(f"access log: {problem}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"serve smoke ok (access log: {access_log})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
