"""Validate the repo's machine-readable stream/report contracts.

The schema catalog lives in :mod:`repro.telemetry.schemas` -- the
central registry every producer imports its ``iotls-*/N`` identifier
from.  This tool holds the *validators*: each registry entry that
declares a ``validator`` names a function here, and the ``VALIDATORS``
dispatch table below is built from the registry, so a schema cannot be
published without its contract check (reprolint rule RL022 enforces the
same pairing statically).

Validated contracts (``--schema`` accepts any of them; the default is
auto-detection from the file's first parseable record):

* ``health-stream`` -- a ``--heartbeat-out`` run-health JSONL stream:
  header first, strictly seq-monotonic heartbeats, exactly one
  trailing summary,
* ``run-ledger`` -- a run-ledger JSONL store: every line a
  self-contained entry with schema tag, known kind/status, and the
  per-kind required fields,
* ``bench-trend`` -- a trend-report JSON document (``iotls runs trend
  --json`` / ``iotls bench-report``),
* ``trace-stream`` -- a streamed trace artifact: schema header first,
  one record/revocation-event object per line, exactly one trailing
  summary whose counts match the lines,
* ``serve-access`` -- the fleet service's access log: header first,
  strictly seq-monotonic events, at most one trailing summary,
* ``slo`` -- the declarative SLO policy file (tools/slo.json),
* ``serve-status`` -- a ``GET /status`` snapshot document,
* ``resources`` -- a ResourceSampler run summary.

CI runs this over artifacts its smoke steps produce so the contracts
external consumers depend on are pinned, not aspirational.

Exit codes: 0 = valid, 1 = contract violation, 2 = usage error.

Usage::

    python tools/validate_streams.py PATH [--schema SCHEMA]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

try:
    from repro.telemetry.schemas import all_schemas
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.telemetry.schemas import all_schemas

_IDS = {schema.name: schema.id for schema in all_schemas()}
HEALTH_SCHEMA = _IDS["health-stream"]
LEDGER_SCHEMA = _IDS["run-ledger"]
TREND_SCHEMA = _IDS["bench-trend"]
TRACE_SCHEMA = _IDS["trace-stream"]
ACCESS_SCHEMA = _IDS["serve-access"]
SLO_SCHEMA = _IDS["slo"]
STATUS_SCHEMA = _IDS["serve-status"]
RESOURCES_SCHEMA = _IDS["resources"]

HEARTBEAT_REQUIRED = ("seq", "label", "done", "elapsed_seconds", "rate", "ewma_rate")
SUMMARY_REQUIRED = ("label", "done", "seconds", "rate", "heartbeats")

LEDGER_KINDS = ("run", "bench", "check")
LEDGER_STATUSES = ("ok", "error")
LEDGER_REQUIRED = ("schema", "kind", "status", "date", "host")


def validate_health_stream(path: Path) -> list[str]:
    """Contract violations in a run-health stream (empty = valid)."""
    errors: list[str] = []
    try:
        lines = [line for line in path.read_text(encoding="utf-8").splitlines() if line]
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not lines:
        return ["stream is empty"]

    records = []
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict) or "kind" not in record:
            errors.append(f"line {number}: record has no 'kind' field")
            continue
        records.append((number, record))

    if not records:
        return errors or ["no parseable records"]

    first_number, first = records[0]
    if first.get("kind") != "header":
        errors.append(f"line {first_number}: stream must start with a header record")
    elif first.get("schema") != HEALTH_SCHEMA:
        errors.append(
            f"line {first_number}: schema {first.get('schema')!r}, "
            f"expected {HEALTH_SCHEMA!r}"
        )

    heartbeats = [(n, r) for n, r in records if r.get("kind") == "heartbeat"]
    summaries = [(n, r) for n, r in records if r.get("kind") == "summary"]

    if not heartbeats:
        errors.append("no heartbeat records (expected at least one)")
    last_seq = 0
    for number, record in heartbeats:
        for key in HEARTBEAT_REQUIRED:
            if key not in record:
                errors.append(f"line {number}: heartbeat missing {key!r}")
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                errors.append(f"line {number}: seq {seq} not strictly after {last_seq}")
            last_seq = seq

    if len(summaries) != 1:
        errors.append(f"{len(summaries)} summary records (expected exactly 1)")
    else:
        number, summary = summaries[0]
        if (number, summary) != (records[-1][0], records[-1][1]):
            errors.append(f"line {number}: summary is not the final record")
        for key in SUMMARY_REQUIRED:
            if key not in summary:
                errors.append(f"line {number}: summary missing {key!r}")

    return errors


def _validate_ledger_entry(number: int, entry: dict[str, Any]) -> list[str]:
    """Per-entry ledger contract (shared by run/bench/check kinds)."""
    errors = []
    required = LEDGER_REQUIRED
    if entry.get("legacy"):
        # Migrated pre-fingerprint rows legitimately lack a host dict.
        required = tuple(key for key in required if key != "host")
    for key in required:
        if key not in entry:
            errors.append(f"line {number}: entry missing {key!r}")
    if entry.get("schema") != LEDGER_SCHEMA:
        errors.append(
            f"line {number}: schema {entry.get('schema')!r}, expected {LEDGER_SCHEMA!r}"
        )
    kind = entry.get("kind")
    if kind not in LEDGER_KINDS:
        errors.append(f"line {number}: kind {kind!r} not one of {LEDGER_KINDS}")
    status = entry.get("status")
    if status not in LEDGER_STATUSES:
        errors.append(f"line {number}: status {status!r} not one of {LEDGER_STATUSES}")
    if kind in ("run", "check"):
        if not isinstance(entry.get("command"), str):
            errors.append(f"line {number}: {kind} entry needs a string 'command'")
        if not isinstance(entry.get("params"), dict):
            errors.append(f"line {number}: {kind} entry needs a 'params' object")
        if not isinstance(entry.get("config_digest"), str):
            errors.append(f"line {number}: {kind} entry needs a 'config_digest'")
    if kind == "bench":
        if not isinstance(entry.get("benchmark"), str):
            errors.append(f"line {number}: bench entry needs a 'benchmark' name")
        if not isinstance(entry.get("seconds"), (int, float)):
            errors.append(f"line {number}: bench entry needs numeric 'seconds'")
    if status == "error" and not isinstance(entry.get("error"), dict):
        errors.append(f"line {number}: error entry needs an 'error' object")
    error = entry.get("error")
    if isinstance(error, dict) and "type" not in error:
        errors.append(f"line {number}: error object missing 'type'")
    return errors


def validate_run_ledger(path: Path) -> list[str]:
    """Contract violations in a run-ledger store (empty = valid).

    Stricter than the tolerant runtime loader: a validated ledger may
    not contain torn or foreign lines at all.
    """
    try:
        lines = [line for line in path.read_text(encoding="utf-8").splitlines() if line]
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not lines:
        return ["ledger is empty"]
    errors: list[str] = []
    for number, line in enumerate(lines, start=1):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(entry, dict):
            errors.append(f"line {number}: entry is not an object")
            continue
        errors.extend(_validate_ledger_entry(number, entry))
    return errors


def validate_bench_trend(path: Path) -> list[str]:
    """Contract violations in a trend-report document (empty = valid)."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse {path}: {exc}"]
    # iotls bench-report --json wraps the trend document; accept both.
    if isinstance(document, dict) and "trend" in document:
        document = document["trend"]
    if not isinstance(document, dict):
        return ["document is not an object"]
    errors = []
    if document.get("schema") != TREND_SCHEMA:
        errors.append(
            f"schema {document.get('schema')!r}, expected {TREND_SCHEMA!r}"
        )
    if not isinstance(document.get("entries"), int):
        errors.append("'entries' must be an integer")
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict):
        errors.append("'benchmarks' must be an object")
    else:
        for name, summary in sorted(benchmarks.items()):
            for key in ("runs", "best_seconds", "latest_seconds"):
                if key not in summary:
                    errors.append(f"benchmarks[{name!r}] missing {key!r}")
    hosts = document.get("hosts")
    if hosts is not None and not isinstance(hosts, dict):
        errors.append("'hosts' must be an object when present")
    return errors


def validate_trace_stream(path: Path) -> list[str]:
    """Contract violations in a streamed trace artifact (empty = valid)."""
    try:
        lines = [line for line in path.read_text(encoding="utf-8").splitlines() if line]
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not lines:
        return ["stream is empty"]
    errors: list[str] = []
    records = revocations = 0
    summary: dict[str, Any] | None = None
    summary_line = None
    for number, line in enumerate(lines, start=1):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(entry, dict):
            errors.append(f"line {number}: entry is not an object")
            continue
        if number == 1:
            if entry.get("schema") != TRACE_SCHEMA:
                errors.append(
                    f"line 1: schema {entry.get('schema')!r}, "
                    f"expected {TRACE_SCHEMA!r}"
                )
            if not isinstance(entry.get("metadata"), dict):
                errors.append("line 1: header needs a 'metadata' object")
            continue
        if "record" in entry:
            records += 1
        elif "revocation_event" in entry:
            revocations += 1
        elif "summary" in entry:
            if summary is not None:
                errors.append(f"line {number}: second summary line")
            summary = entry["summary"]
            summary_line = number
        else:
            errors.append(
                f"line {number}: expected a record/revocation_event/summary line"
            )
    if summary is None:
        errors.append("no summary line (stream truncated?)")
    else:
        if summary_line != len(lines):
            errors.append(f"line {summary_line}: summary is not the final line")
        declared = summary.get("flow_records")
        if declared != records:
            errors.append(
                f"summary declares {declared} flow_records, stream holds {records}"
            )
        declared = summary.get("revocation_events")
        if declared != revocations:
            errors.append(
                f"summary declares {declared} revocation_events, "
                f"stream holds {revocations}"
            )
    return errors


def validate_access_log(path: Path) -> list[str]:
    """Contract violations in a serve access log (empty = valid)."""
    try:
        lines = [line for line in path.read_text(encoding="utf-8").splitlines() if line]
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not lines:
        return ["access log is empty"]
    errors: list[str] = []
    last_seq = 0
    summaries = 0
    for number, line in enumerate(lines, start=1):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: not valid JSON ({exc})")
            continue
        if not isinstance(entry, dict):
            errors.append(f"line {number}: entry is not an object")
            continue
        kind = entry.get("kind")
        if number == 1:
            if kind != "header":
                errors.append("line 1: access log must start with a header")
            elif entry.get("schema") != ACCESS_SCHEMA:
                errors.append(
                    f"line 1: schema {entry.get('schema')!r}, "
                    f"expected {ACCESS_SCHEMA!r}"
                )
            continue
        if kind == "event":
            for key in ("seq", "event", "elapsed_seconds"):
                if key not in entry:
                    errors.append(f"line {number}: event missing {key!r}")
            seq = entry.get("seq")
            if isinstance(seq, int):
                if seq <= last_seq:
                    errors.append(
                        f"line {number}: seq {seq} not strictly after {last_seq}"
                    )
                last_seq = seq
        elif kind == "summary":
            summaries += 1
            if number != len(lines):
                errors.append(f"line {number}: summary is not the final line")
            if not isinstance(entry.get("counts"), dict):
                errors.append(f"line {number}: summary needs a 'counts' object")
        else:
            errors.append(f"line {number}: unknown kind {kind!r}")
    if summaries > 1:
        errors.append(f"{summaries} summary lines (expected at most 1)")
    return errors


SLO_OPS = ("<=", "<", ">=", ">")
SLO_LEVELS = ("blocking", "advisory")


def _load_document(path: Path) -> tuple[dict[str, Any] | None, list[str]]:
    """Parse one JSON document, returning (document, errors)."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return None, [f"cannot parse {path}: {exc}"]
    if not isinstance(document, dict):
        return None, ["document is not an object"]
    return document, []


def validate_slo_policy(path: Path) -> list[str]:
    """Contract violations in an SLO policy document (empty = valid)."""
    document, errors = _load_document(path)
    if document is None:
        return errors
    if document.get("schema") != SLO_SCHEMA:
        errors.append(f"schema {document.get('schema')!r}, expected {SLO_SCHEMA!r}")
    slos = document.get("slos")
    if not isinstance(slos, list) or not slos:
        return errors + ["'slos' must be a non-empty list"]
    for index, slo in enumerate(slos):
        if not isinstance(slo, dict):
            errors.append(f"slos[{index}]: not an object")
            continue
        for key in ("name", "benchmark", "metric", "op", "threshold"):
            if key not in slo:
                errors.append(f"slos[{index}]: missing {key!r}")
        if "op" in slo and slo["op"] not in SLO_OPS:
            errors.append(f"slos[{index}]: op {slo['op']!r} not one of {SLO_OPS}")
        if "threshold" in slo and not isinstance(slo["threshold"], (int, float)):
            errors.append(f"slos[{index}]: threshold must be numeric")
        level = slo.get("level", "blocking")
        if level not in SLO_LEVELS:
            errors.append(f"slos[{index}]: level {level!r} not one of {SLO_LEVELS}")
    return errors


def validate_serve_status(path: Path) -> list[str]:
    """Contract violations in a GET /status snapshot (empty = valid)."""
    document, errors = _load_document(path)
    if document is None:
        return errors
    if document.get("schema") != STATUS_SCHEMA:
        errors.append(f"schema {document.get('schema')!r}, expected {STATUS_SCHEMA!r}")
    queue = document.get("queue")
    if not isinstance(queue, dict):
        errors.append("'queue' must be an object")
    else:
        for key in ("depth", "capacity", "executors", "inflight"):
            if not isinstance(queue.get(key), int):
                errors.append(f"queue.{key} must be an integer")
    cache = document.get("cache")
    if not isinstance(cache, dict):
        errors.append("'cache' must be an object")
    else:
        for key in ("hits", "misses", "coalesced"):
            if not isinstance(cache.get(key), int):
                errors.append(f"cache.{key} must be an integer")
    if not isinstance(document.get("resident"), dict):
        errors.append("'resident' must be an object")
    if not isinstance(document.get("access"), dict):
        errors.append("'access' must be an object")
    return errors


def validate_resource_summary(path: Path) -> list[str]:
    """Contract violations in a ResourceSampler summary (empty = valid)."""
    document, errors = _load_document(path)
    if document is None:
        return errors
    if document.get("schema") != RESOURCES_SCHEMA:
        errors.append(
            f"schema {document.get('schema')!r}, expected {RESOURCES_SCHEMA!r}"
        )
    samples = document.get("samples")
    if not isinstance(samples, int):
        errors.append("'samples' must be an integer")
    elif samples > 0:
        for key in ("seconds", "peak_rss_kib", "peak_traced_bytes"):
            if not isinstance(document.get(key), (int, float)):
                errors.append(f"{key!r} must be numeric when samples > 0")
        stages = document.get("stages")
        if stages is not None and not isinstance(stages, dict):
            errors.append("'stages' must be an object when present")
    return errors


def _build_validators() -> dict[str, Any]:
    """Dispatch table, driven by the registry so the pairing can't drift."""
    table: dict[str, Any] = {}
    for schema in all_schemas():
        if schema.validator is None:
            continue
        function = globals().get(schema.validator)
        if function is None:
            raise RuntimeError(
                f"registry declares validator {schema.validator!r} for "
                f"{schema.id} but tools/validate_streams.py does not define it"
            )
        table[schema.id] = function
    return table


VALIDATORS = _build_validators()


def detect_schema(path: Path) -> str | None:
    """Guess which contract a file claims, from its first parseable record."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    stripped = text.lstrip()
    if not stripped:
        return None
    first_line = stripped.splitlines()[0]
    try:
        record = json.loads(first_line)
    except json.JSONDecodeError:
        # Not line-delimited: try the whole file as one JSON document.
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            return None
    if not isinstance(record, dict):
        return None
    schema = record.get("schema")
    if schema in VALIDATORS:
        return schema
    trend = record.get("trend")
    if isinstance(trend, dict) and trend.get("schema") in VALIDATORS:
        return trend["schema"]
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="stream/report file to validate")
    parser.add_argument(
        "--schema",
        choices=sorted(VALIDATORS),
        help="contract to validate against (default: auto-detect from content)",
    )
    args = parser.parse_args()
    path = Path(args.path)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    schema = args.schema or detect_schema(path)
    if schema is None:
        print(
            f"error: cannot detect a known schema in {path}; pass --schema",
            file=sys.stderr,
        )
        return 2
    errors = VALIDATORS[schema](path)
    if errors:
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(f"{path}: valid {schema}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
