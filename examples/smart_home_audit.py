#!/usr/bin/env python3
"""Audit an entire smart home: the full active-experiment campaign.

Reproduces §5.2's pipeline against all 32 active devices -- interception
attacks (Table 7), downgrade probes (Tables 5/6), root-store probing
(Table 9) and the TrafficPassthrough verification -- then prints a
security report card per device.

Run:  python examples/smart_home_audit.py
"""

from __future__ import annotations

import statistics

from repro.analysis import render_table
from repro.core import ActiveExperimentCampaign
from repro.mitm import AttackMode


def grade(vulnerable: bool, downgrades: bool, old_versions: bool) -> str:
    if vulnerable:
        return "CRITICAL"
    if downgrades:
        return "WEAK"
    if old_versions:
        return "LEGACY"
    return "OK"


def main() -> None:
    print("Running the full active-experiment campaign (32 devices)...")
    results = ActiveExperimentCampaign().run()

    downgrade_by_device = {report.device: report for report in results.downgrade}
    old_by_device = {support.device: support for support in results.old_versions}

    rows = []
    for report in results.interception:
        downgrade = downgrade_by_device[report.device]
        old = old_by_device[report.device]
        issues = []
        if report.vulnerable_to(AttackMode.NO_VALIDATION):
            issues.append("accepts any certificate")
        elif report.vulnerable_to(AttackMode.WRONG_HOSTNAME):
            issues.append("skips hostname validation")
        if downgrade.downgrades:
            issues.append(downgrade.behavior.lower())
        if old.any_old:
            versions = [v for v, flag in (("1.0", old.tls10), ("1.1", old.tls11)) if flag]
            issues.append(f"establishes TLS {'/'.join(versions)}")
        rows.append(
            (
                report.device,
                grade(report.vulnerable, downgrade.downgrades, old.any_old),
                f"{report.vulnerable_destinations}/{report.total_destinations}",
                "; ".join(issues) or "none found",
            )
        )

    severity = {"CRITICAL": 0, "WEAK": 1, "LEGACY": 2, "OK": 3}
    rows.sort(key=lambda row: (severity[row[1]], row[0]))
    print()
    print(render_table(["Device", "Grade", "Vulnerable dests", "Findings"], rows))

    print("\n--- campaign summary (paper's §1 findings) ---")
    print(f"devices vulnerable to interception: {results.vulnerable_device_count} (paper: 11)")
    print(f"devices leaking sensitive data:     {results.sensitive_leak_count} (paper: 7)")
    print(f"devices downgrading on failure:     {results.downgrading_device_count} (paper: 7)")
    print(f"devices establishing old TLS:       {results.old_version_device_count} (paper: 18-19)")
    print(f"probe-amenable devices:             {len(results.amenable_probe_reports)} (paper: 8)")
    extra = statistics.mean(outcome.extra_fraction for outcome in results.passthrough)
    print(f"passthrough extra destinations:     {extra:.1%} (paper: ~20.4%), "
          f"new validation failures: "
          f"{sum(outcome.new_validation_failures for outcome in results.passthrough)} (paper: 0)")


if __name__ == "__main__":
    main()
