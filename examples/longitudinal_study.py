#!/usr/bin/env python3
"""The two-year longitudinal study: passive capture + Figures 1-3.

Generates the 27-month passive trace (January 2018 - March 2020),
renders ASCII versions of the paper's three heatmap figures, lists every
detected adoption/deprecation event, and prints the Table 8 revocation
summary plus the prior-work comparison.

Run:  python examples/longitudinal_study.py [scale]
"""

from __future__ import annotations

import sys

from repro.analysis import analyze_revocation, compare_with_prior_work, render_table
from repro.longitudinal import (
    PassiveTraceGenerator,
    build_insecure_advertised_heatmap,
    build_strong_established_heatmap,
    build_version_heatmap,
    detect_adoption_events,
)
from repro.tls.versions import VersionBand


def _cell(value: float | None) -> str:
    if value is None:
        return "."
    if value >= 0.75:
        return "#"
    if value >= 0.25:
        return "+"
    if value > 0:
        return "-"
    return " "


def _render_series(series) -> str:
    return "".join(_cell(value) for value in series.values)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    print(f"Generating the 27-month passive trace (scale={scale})...")
    capture = PassiveTraceGenerator(scale=scale).generate()
    total = sum(record.count for record in capture.records)
    print(f"captured {total:,} connections from {len(capture.devices())} devices\n")

    versions = build_version_heatmap(capture)
    print(f"Figure 1 -- devices not using TLS 1.2 exclusively "
          f"({len(versions.shown_devices())} shown, {len(versions.hidden_devices())} hidden):")
    for device in versions.shown_devices():
        advertised_old = versions.advertised[VersionBand.OLDER][device]
        advertised_13 = versions.advertised[VersionBand.TLS_1_3][device]
        print(f"  {device:18.18s} older|{_render_series(advertised_old)}| "
              f"1.3|{_render_series(advertised_13)}|")

    insecure = build_insecure_advertised_heatmap(capture)
    print(f"\nFigure 2 -- insecure-suite advertisers "
          f"({len(insecure.shown_devices())} shown; clean: {', '.join(insecure.hidden_devices())})")

    strong = build_strong_established_heatmap(capture)
    print(f"\nFigure 3 -- forward-secrecy establishment "
          f"({len(strong.hidden_devices())} always-strong devices hidden)")

    print("\nDetected adoption/deprecation events:")
    for event in detect_adoption_events(capture):
        print(f"  {event.describe()}")

    print("\nTable 8 -- revocation checking:")
    summary = analyze_revocation(capture)
    print(render_table(["Method", "Devices (count)"], summary.table8_rows()))
    print(f"devices never checking revocation: {len(summary.non_checking_devices)}")

    print("\nPrior-work comparison (§5.1):")
    print(f"  {compare_with_prior_work(capture).summary()}")


if __name__ == "__main__":
    main()
