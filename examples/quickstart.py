#!/usr/bin/env python3
"""Quickstart: the IoTLS reproduction in five minutes.

Builds the simulated smart-home testbed, boots one device against its
genuine cloud servers, mounts an interception attack on a vulnerable
device, and runs the paper's novel root-store probe against an amenable
one.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import RootStoreProber
from repro.mitm import AttackerToolbox, AttackMode, InterceptionProxy
from repro.testbed import SmartPlug, Testbed


def main() -> None:
    testbed = Testbed()

    # ------------------------------------------------------------------
    # 1. Benign traffic: boot a device against its real cloud endpoints.
    # ------------------------------------------------------------------
    print("=== 1. Booting a Google Home Mini against genuine servers ===")
    ghm = testbed.device("Google Home Mini")
    for connection in ghm.boot(lambda dest: testbed.server_for(dest)):
        result = connection.attempt.final
        cipher = result.response.server_hello.cipher_suite.name if result.established else "-"
        print(f"  {connection.destination.hostname:28s} {result.state.value:12s} "
              f"{result.established_version or '':8} {cipher}")

    # ------------------------------------------------------------------
    # 2. An on-path attacker with a self-signed certificate.
    # ------------------------------------------------------------------
    print("\n=== 2. NoValidation attack: secure vs vulnerable device ===")
    toolbox = AttackerToolbox(issuing_ca=testbed.anchor(0))
    attack = InterceptionProxy(toolbox=toolbox, mode=AttackMode.NO_VALIDATION)

    for name in ("D-Link Camera", "Zmodo Doorbell"):
        device = testbed.device(name)
        device.power_cycle()
        connection = device.connect_destination(device.first_destination(), attack)
        if connection.established:
            plaintext = ", ".join(connection.attempt.final.application_data)
            print(f"  {name}: INTERCEPTED -- captured plaintext: {plaintext!r}")
        else:
            alert = connection.attempt.final.client_alert
            print(f"  {name}: rejected the forged certificate "
                  f"(alert: {alert.description.name.lower() if alert else 'none'})")

    # ------------------------------------------------------------------
    # 3. The TLS-alert side channel: is a given root CA trusted?
    # ------------------------------------------------------------------
    print("\n=== 3. Root-store probing via TLS alert side channel ===")
    prober = RootStoreProber(testbed)
    plug = SmartPlug(testbed.device("Wink Hub 2"))
    calibration = prober.calibrate(plug)
    print(f"  amenable: {calibration.amenable} "
          f"(unknown-CA alert: {calibration.unknown_ca_alert}, "
          f"bad-signature alert: {calibration.known_ca_alert})")

    universe = testbed.universe
    for ca_name in ("Certification Authority of WoSign", "TURKTRUST Elektronik Sertifika Hizmet Saglayicisi"):
        record = universe.records[ca_name]
        result = prober.probe_certificate(
            plug, calibration, record.certificate, conclusive_rate=1.0
        )
        print(f"  {ca_name[:50]:52s} -> {result.outcome.value} "
              f"(observed alert: {result.observed_alert})")


if __name__ == "__main__":
    main()
