#!/usr/bin/env python3
"""Root-store exploration of one device, end to end (the §4.2 technique).

Walks through the full probe campaign the paper ran for Table 9:

1. derive the *common* and *deprecated* certificate sets from the
   versioned platform root-store histories (Table 3),
2. calibrate the device's two failure alerts,
3. sweep both probe sets with spoofed-CA interceptions (one reboot per
   certificate),
4. report the Table 9 row, the Figure 4 staleness histogram, and any
   explicitly distrusted CAs still trusted.

Run:  python examples/root_store_probe.py [device-name]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.core import RootStoreProber
from repro.testbed import Testbed

DEFAULT_DEVICE = "LG TV"


def main() -> None:
    device_name = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_DEVICE
    testbed = Testbed()
    universe = testbed.universe

    print(f"Probe sets derived from {len(universe.histories)} platform histories:")
    print(f"  common (latest stores, unexpired): {len(universe.common_names)}")
    print(f"  deprecated (removed before expiry): {len(universe.deprecated_names)}")

    prober = RootStoreProber(testbed)
    device = testbed.device(device_name)
    print(f"\nProbing {device_name} "
          f"({sum(1 for _ in device.profile.destinations)} destinations, "
          f"boot instance: {device.first_destination().instance})")

    report = prober.probe_device(device)
    calibration = report.calibration
    if not calibration.amenable:
        print(f"Device is NOT amenable to the technique: {calibration.reason}")
        return

    print(f"calibrated alerts -- unknown CA: {calibration.unknown_ca_alert!r}, "
          f"known CA with bad signature: {calibration.known_ca_alert!r}")

    name, common, deprecated = report.table9_row()
    print(f"\nTable 9 row: {name} | common {common} | deprecated {deprecated}")

    present = report.present_deprecated_names()
    years = Counter()
    for ca_name in present:
        record = universe.records[ca_name]
        if record.removal_year:
            years[record.removal_year] += 1
    print("\nStaleness (removal year -> retained roots):")
    for year in sorted(years):
        print(f"  {year}: {'#' * years[year]} ({years[year]})")

    distrusted = [
        universe.records[ca_name]
        for ca_name in present
        if universe.records[ca_name].is_distrusted
    ]
    if distrusted:
        print("\nExplicitly distrusted CAs still trusted by this device:")
        for record in distrusted:
            event = record.distrust
            print(f"  {record.name} -- distrusted {event.year} by {event.platform}: {event.reason}")
    else:
        print("\nNo explicitly distrusted CA found in the probed set.")


if __name__ == "__main__":
    main()
