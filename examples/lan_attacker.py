#!/usr/bin/env python3
"""Attacker placement on the home network (§6's user-risk discussion).

The paper warns that MITM attacks need not come from a malicious router:
"other devices on the same user network" can gain the on-path position
"using ARP spoofing".  This walkthrough puts a malicious smart plug on
the home LAN, has it ARP-spoof two victims, and shows that its
interception capability is exactly the gateway attacker's -- TLS
validation is the only line of defence that distinguishes the victims.

Run:  python examples/lan_attacker.py
"""

from __future__ import annotations

from repro.mitm import AttackerToolbox, AttackMode, InterceptionProxy
from repro.testbed import HomeNetwork, LanDeviceAttacker, Testbed


def main() -> None:
    testbed = Testbed()
    network = HomeNetwork()
    interceptor = InterceptionProxy(
        toolbox=AttackerToolbox(issuing_ca=testbed.anchor(0)),
        mode=AttackMode.NO_VALIDATION,
    )

    victims = ["Zmodo Doorbell", "D-Link Camera"]
    for name in victims:
        network.join(name)
    print(f"home network: gateway {network.gateway_ip}, victims joined")

    for name in victims:
        victim = testbed.device(name)
        destination = victim.first_destination()
        attacker = LanDeviceAttacker(
            name="Malicious Smart Plug",
            interceptor=interceptor,
            network=network,
            upstream=testbed.server_for(destination),
        )

        print(f"\n=== {name} -> {destination.hostname} ===")
        victim.power_cycle()
        connection = victim.connect_destination(
            destination, attacker.responder_for(name)
        )
        print(f"  before ARP spoofing: established={connection.established} "
              f"(genuine path; attacker off-path)")

        attacker.spoof(name)
        print(f"  ARP cache poisoned: gateway MAC is now {attacker.mac}")
        victim.power_cycle()
        connection = victim.connect_destination(
            destination, attacker.responder_for(name)
        )
        if connection.established:
            plaintext = ", ".join(connection.attempt.final.application_data)
            print(f"  INTERCEPTED from inside the LAN -- plaintext: {plaintext!r}")
        else:
            alert = connection.attempt.final.client_alert
            print("  interception FAILED: certificate validation held "
                  f"(alert: {alert.description.name.lower() if alert else 'silent close'})")
        attacker.stop_spoofing(name)

    print("\nTakeaway: on-path position is cheap inside the home; only the")
    print("device's own TLS validation separates the two outcomes above.")


if __name__ == "__main__":
    main()
