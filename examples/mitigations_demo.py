#!/usr/bin/env python3
"""The paper's §6 recommendations, demonstrated end to end.

Shows each mitigation acting on the study's vulnerable devices:

1. certificate pinning -- leaf pins stop every Table 7 attack, while the
   paper's caveat (root pinning without validation) is reproduced,
2. the vendor audit service grading device hellos at boot,
3. the in-home guardian pausing insecure connections for user review,
4. TLS as an OS service: hardening a device and re-running the audits.

Run:  python examples/mitigations_demo.py
"""

from __future__ import annotations

from repro.core import DowngradeAuditor, InterceptionAuditor
from repro.devices import Device, device_by_name
from repro.mitigations import (
    InHomeGuardian,
    PinnedClient,
    TLSAuditService,
    harden_device,
    pin_leaf,
    pin_root,
)
from repro.mitm import AttackerToolbox, AttackMode, InterceptionProxy
from repro.pki import utc
from repro.testbed import Testbed
from repro.tls import perform_handshake

WHEN = utc(2021, 3)


def main() -> None:
    testbed = Testbed()
    toolbox = AttackerToolbox(issuing_ca=testbed.anchor(0))

    # ------------------------------------------------------------------
    print("=== 1. Certificate pinning on the Zmodo Doorbell (no validation) ===")
    zmodo = testbed.device("Zmodo Doorbell")
    destination = zmodo.first_destination()
    genuine = testbed.server_for(destination)
    instance = zmodo.instance(destination.instance)
    stock_client = instance.spec.library.client(instance.client_config(38))

    attack = InterceptionProxy(toolbox=toolbox, mode=AttackMode.WRONG_HOSTNAME)
    stock = perform_handshake(stock_client, attack, hostname=destination.hostname, when=WHEN)
    print(f"  stock client under WrongHostname: intercepted={stock.established}")

    leaf_pinned = PinnedClient(stock_client, pin_leaf(genuine.chain[0]))
    pinned = perform_handshake(leaf_pinned, attack, hostname=destination.hostname, when=WHEN)
    print(f"  leaf-pinned client:               intercepted={pinned.established}")

    root_pinned = PinnedClient(stock_client, pin_root(testbed.anchor(0).certificate))
    weak = perform_handshake(root_pinned, attack, hostname=destination.hostname, when=WHEN)
    print(f"  root-pinned, no validation:       intercepted={weak.established}"
          "  <- the paper's caveat: root pins are not enough")

    # ------------------------------------------------------------------
    print("\n=== 2. Vendor audit service ===")
    service = TLSAuditService(testbed.anchor(0))
    for name in ("Wemo Plug", "Roku TV", "D-Link Camera"):
        service.check_in(testbed.device(name))
        severity = service.worst_severity(name)
        findings = service.findings_for(name)
        print(f"  {name:16s} worst={severity.value:8s} "
              f"findings={sorted({finding.advisory for finding in findings})}")

    # ------------------------------------------------------------------
    print("\n=== 3. In-home guardian ===")
    dryer = testbed.device("Samsung Dryer")
    dryer_dest = dryer.first_destination()
    guardian = InHomeGuardian(device=dryer.name, upstream=testbed.server_for(dryer_dest))
    connection = dryer.connect_destination(dryer_dest, guardian)
    print(f"  first attempt established={connection.established}")
    for paused in guardian.paused:
        print(f"  PAUSED for user review: {paused.hostname} -- {paused.reason}")
    guardian.allow(dryer_dest.hostname)
    connection = dryer.connect_destination(dryer_dest, guardian)
    print(f"  after user allows: established={connection.established}")

    # ------------------------------------------------------------------
    print("\n=== 4. TLS as an OS service (uniform hardening) ===")
    for name in ("Zmodo Doorbell", "Amazon Echo Dot"):
        hardened = Device(harden_device(device_by_name(name)), universe=testbed.universe)
        interception = InterceptionAuditor(testbed).audit_device(hardened)
        downgrade = DowngradeAuditor(testbed).audit_device_downgrade(hardened)
        print(f"  {name:16s} vulnerable={interception.vulnerable} "
              f"downgrades={downgrade.downgrades} "
              f"(stock device: see smart_home_audit.py)")


if __name__ == "__main__":
    main()
