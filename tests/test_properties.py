"""Cross-cutting property-based tests on core invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.devices.configs import FS_MODERN, RSA_PLAIN, WEAK_LEGACY
from repro.pki import (
    CertificateAuthority,
    DistinguishedName,
    RootStore,
    ValidationErrorCode,
    utc,
    validate_chain,
)
from repro.tls import ClientHello, ProtocolVersion, negotiate
from repro.tls.ciphersuites import REGISTRY

_ALL_CODES = sorted(code for code, s in REGISTRY.items() if not s.tls13_only)
_VERSIONS = [
    ProtocolVersion.SSL_3_0,
    ProtocolVersion.TLS_1_0,
    ProtocolVersion.TLS_1_1,
    ProtocolVersion.TLS_1_2,
]


class TestNegotiationProperties:
    @given(
        client_max=st.sampled_from(_VERSIONS),
        server_versions=st.sets(st.sampled_from(_VERSIONS), min_size=1),
        client_ciphers=st.lists(st.sampled_from(_ALL_CODES), min_size=1, max_size=12, unique=True),
        server_ciphers=st.lists(st.sampled_from(_ALL_CODES), min_size=1, max_size=12, unique=True),
    )
    @settings(max_examples=120)
    def test_negotiated_parameters_acceptable_to_both(
        self, client_max, server_versions, client_ciphers, server_ciphers
    ):
        hello = ClientHello(legacy_version=client_max, cipher_codes=tuple(client_ciphers))
        server_hello = negotiate(hello, frozenset(server_versions), tuple(server_ciphers))
        if server_hello is None:
            # Failure must mean genuinely no overlap.
            overlap_versions = {v for v in server_versions if v <= client_max}
            overlap_ciphers = set(client_ciphers) & set(server_ciphers)
            assert not overlap_versions or not overlap_ciphers
        else:
            assert server_hello.version in server_versions
            assert server_hello.version <= client_max
            assert server_hello.cipher_code in set(client_ciphers) & set(server_ciphers)
            # Highest common version is chosen.
            assert server_hello.version == max(
                v for v in server_versions if v <= client_max
            )

    @given(
        ciphers=st.lists(st.sampled_from(_ALL_CODES), min_size=1, max_size=10, unique=True)
    )
    def test_negotiation_idempotent(self, ciphers):
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=tuple(ciphers)
        )
        first = negotiate(hello, frozenset({ProtocolVersion.TLS_1_2}), tuple(ciphers))
        second = negotiate(hello, frozenset({ProtocolVersion.TLS_1_2}), tuple(ciphers))
        assert first == second


class TestChainValidationProperties:
    @given(depth=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_any_depth_chain_validates(self, depth):
        """A well-formed chain of arbitrary intermediate depth validates."""
        root = CertificateAuthority(
            DistinguishedName(common_name=f"Prop Root {depth}"), seed=f"prop-root-{depth}".encode()
        )
        store = RootStore.from_certificates("prop", [root.certificate])
        issuer = root
        chain_tail = []
        for level in range(depth):
            issuer = issuer.issue_intermediate(
                DistinguishedName(common_name=f"Prop Int {depth}.{level}"),
                seed=f"prop-int-{depth}-{level}".encode(),
            )
            chain_tail.insert(0, issuer.certificate)
        leaf, _ = issuer.issue_leaf("prop.example.com")
        result = validate_chain(
            [leaf, *chain_tail], store, when=utc(2021, 3), hostname="prop.example.com"
        )
        assert result.ok

    @given(drop=st.integers(min_value=1, max_value=2))
    @settings(max_examples=10, deadline=None)
    def test_missing_intermediate_breaks_chain(self, drop):
        root = CertificateAuthority(
            DistinguishedName(common_name="Prop Root Gap"), seed=b"prop-root-gap"
        )
        store = RootStore.from_certificates("prop", [root.certificate])
        a = root.issue_intermediate(DistinguishedName(common_name="Gap A"), seed=b"gap-a")
        b = a.issue_intermediate(DistinguishedName(common_name="Gap B"), seed=b"gap-b")
        leaf, _ = b.issue_leaf("gap.example.com")
        full = [leaf, b.certificate, a.certificate]
        del full[drop]
        result = validate_chain(full, store, when=utc(2021, 3), hostname="gap.example.com")
        assert not result.ok


class TestHelloClassificationProperties:
    @given(
        ciphers=st.lists(
            st.sampled_from(sorted(REGISTRY)), min_size=1, max_size=15, unique=True
        )
    )
    def test_classification_consistent_with_suites(self, ciphers):
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=tuple(ciphers)
        )
        suites = hello.cipher_suites()
        assert hello.advertises_insecure_cipher == any(s.is_insecure for s in suites)
        assert hello.advertises_forward_secrecy == any(s.forward_secret for s in suites)


class TestStoreProperties:
    @given(count=st.integers(min_value=1, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_store_size_tracks_additions_and_removals(self, count):
        cas = [
            CertificateAuthority(
                DistinguishedName(common_name=f"Prop Store CA {i}"),
                seed=f"prop-store-{i}".encode(),
            )
            for i in range(count)
        ]
        store = RootStore.from_certificates("prop", [ca.certificate for ca in cas])
        assert len(store) == count
        for ca in cas:
            store.remove(ca.certificate)
        assert len(store) == 0
