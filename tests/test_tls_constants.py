"""Unit tests for TLS versions, ciphersuites, alerts and extensions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.tls import (
    Alert,
    AlertDescription,
    AlertLevel,
    BulkCipher,
    INSECURE_SUITES,
    KeyExchange,
    MODERN_TLS12_SUITES,
    ProtocolVersion,
    REGISTRY,
    TLS13_SUITES,
    VersionBand,
    by_code,
    by_name,
)


class TestVersions:
    def test_ordering_follows_wire_codes(self):
        ordered = sorted(ProtocolVersion)
        assert ordered[0] is ProtocolVersion.SSL_2_0
        assert ordered[-1] is ProtocolVersion.TLS_1_3
        assert ProtocolVersion.TLS_1_2 < ProtocolVersion.TLS_1_3
        assert ProtocolVersion.SSL_3_0 < ProtocolVersion.TLS_1_0

    def test_deprecation_boundary(self):
        assert ProtocolVersion.TLS_1_1.is_deprecated
        assert not ProtocolVersion.TLS_1_2.is_deprecated
        assert not ProtocolVersion.TLS_1_3.is_deprecated

    def test_bands(self):
        assert ProtocolVersion.TLS_1_3.band is VersionBand.TLS_1_3
        assert ProtocolVersion.TLS_1_2.band is VersionBand.TLS_1_2
        for old in (ProtocolVersion.SSL_3_0, ProtocolVersion.TLS_1_0, ProtocolVersion.TLS_1_1):
            assert old.band is VersionBand.OLDER

    def test_from_wire_roundtrip(self):
        for version in ProtocolVersion:
            assert ProtocolVersion.from_wire(version.wire) is version

    def test_from_wire_unknown_raises(self):
        with pytest.raises(ValueError):
            ProtocolVersion.from_wire((9, 9))


class TestCipherSuites:
    def test_known_codepoints(self):
        assert by_code(0x1301).name == "TLS_AES_128_GCM_SHA256"
        assert by_name("TLS_RSA_WITH_RC4_128_SHA").code == 0x0005
        assert by_code(0xC02F).key_exchange is KeyExchange.ECDHE

    def test_insecure_classification(self):
        assert by_name("TLS_RSA_WITH_RC4_128_SHA").is_insecure
        assert by_name("TLS_RSA_WITH_3DES_EDE_CBC_SHA").is_insecure
        assert by_name("TLS_RSA_WITH_DES_CBC_SHA").is_insecure
        assert by_name("TLS_RSA_EXPORT_WITH_DES40_CBC_SHA").is_insecure
        assert not by_name("TLS_RSA_WITH_AES_128_GCM_SHA256").is_insecure

    def test_null_anon_classification(self):
        assert by_name("TLS_RSA_WITH_NULL_SHA").is_null_or_anon
        assert by_name("TLS_DH_anon_WITH_AES_128_CBC_SHA").is_null_or_anon
        assert not by_name("TLS_RSA_WITH_AES_128_CBC_SHA").is_null_or_anon

    def test_forward_secrecy_classification(self):
        assert by_name("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256").forward_secret
        assert by_name("TLS_DHE_RSA_WITH_AES_128_CBC_SHA").forward_secret
        assert by_name("TLS_AES_128_GCM_SHA256").forward_secret  # TLS 1.3
        assert not by_name("TLS_RSA_WITH_AES_128_CBC_SHA").forward_secret
        # Anonymous DH is "forward secret" in math but offers no auth.
        assert not by_name("TLS_DH_anon_WITH_AES_128_CBC_SHA").forward_secret

    def test_strong_excludes_insecure_fs(self):
        ecdhe_3des = by_name("TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA")
        assert ecdhe_3des.forward_secret
        assert not ecdhe_3des.is_strong

    def test_group_consistency(self):
        assert all(s.tls13_only for s in TLS13_SUITES)
        assert all(s.is_strong for s in MODERN_TLS12_SUITES)
        assert all(s.is_insecure for s in INSECURE_SUITES)

    def test_registry_codes_are_keys(self):
        for code, suite in REGISTRY.items():
            assert suite.code == code

    @given(st.sampled_from(sorted(REGISTRY)))
    def test_property_classification_partitions(self, code):
        suite = REGISTRY[code]
        # A suite cannot be simultaneously strong and insecure.
        assert not (suite.is_strong and suite.is_insecure)
        # NULL/ANON suites are never strong.
        if suite.is_null_or_anon:
            assert not suite.is_strong


class TestAlerts:
    def test_rfc_codes(self):
        assert AlertDescription.UNKNOWN_CA.value == 48
        assert AlertDescription.DECRYPT_ERROR.value == 51
        assert AlertDescription.BAD_CERTIFICATE.value == 42
        assert AlertDescription.CERTIFICATE_UNKNOWN.value == 46

    def test_fatal_constructor(self):
        alert = Alert.fatal(AlertDescription.UNKNOWN_CA)
        assert alert.level is AlertLevel.FATAL
        assert str(alert) == "fatal:unknown_ca"

    def test_human_names_match_paper_style(self):
        assert AlertDescription.UNKNOWN_CA.human_name == "Unknown CA"
        assert AlertDescription.BAD_CERTIFICATE.human_name == "Bad Certificate"
        assert AlertDescription.DECRYPT_ERROR.human_name == "Decrypt Error"
