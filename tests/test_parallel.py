"""Parallel execution layer: sharding, merging, and serial equivalence.

The contract under test: for any worker count, a parallel run produces
*identical* artifacts to the serial one -- same capture JSON, same
campaign headline numbers, same merged telemetry counter totals.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.analysis.export import capture_to_document
from repro.core.audit import ActiveExperimentCampaign
from repro.longitudinal.generator import PassiveTraceGenerator
from repro.parallel import ShardedExecutor, WarmWorkerPool, active_pool, pool_session
from repro.parallel import executor as executor_module
from repro.parallel import pool as pool_module
from repro.telemetry.events import EventLog
from repro.telemetry.export import metrics_snapshot
from repro.telemetry.metrics import MetricsRegistry

SEED = "parallel-equivalence"
SCALE = 2


# ----------------------------------------------------------------------
# ShardedExecutor unit behaviour
# ----------------------------------------------------------------------
class TestShardedExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardedExecutor(0)

    def test_round_robin_sharding(self):
        shards = ShardedExecutor(3).shard(["a", "b", "c", "d", "e", "f", "g"])
        assert shards == [["a", "d", "g"], ["b", "e"], ["c", "f"]]

    def test_never_more_shards_than_items(self):
        shards = ShardedExecutor(8).shard(["a", "b"])
        assert shards == [["a"], ["b"]]

    def test_shards_cover_all_items_exactly_once(self):
        items = [f"item-{i}" for i in range(17)]
        shards = ShardedExecutor(4).shard(items)
        flattened = [item for shard in shards for item in shard]
        assert sorted(flattened) == sorted(items)

    def test_generator_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            PassiveTraceGenerator(scale=1).generate(workers=0)

    def test_campaign_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ActiveExperimentCampaign().run(workers=0)


class _RecordingContext:
    """A fake spawn context that records the requested pool size and runs
    the tasks inline, so process-count behaviour is testable without
    spawning anything."""

    def __init__(self):
        self.processes = None

    def Pool(self, processes):
        self.processes = processes
        outer = self

        class _InlinePool:
            def map(self, fn, tasks):
                return [fn(task) for task in tasks]

            def imap(self, fn, tasks, chunksize=1):
                return iter([fn(task) for task in tasks])

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

        return _InlinePool()


class TestDispatchProcessCap:
    """Regression: dispatch once spawned ``len(tasks)`` processes, ignoring
    the configured worker cap -- oversubscribing the host whenever there
    were more shards/tasks than workers."""

    def _patched_context(self, monkeypatch) -> _RecordingContext:
        context = _RecordingContext()
        monkeypatch.setattr(
            executor_module.multiprocessing, "get_context", lambda method: context
        )
        return context

    def test_map_tasks_caps_pool_at_workers(self, monkeypatch):
        context = self._patched_context(monkeypatch)
        results = ShardedExecutor(workers=2).map_tasks(str, [1, 2, 3, 4, 5])
        assert results == ["1", "2", "3", "4", "5"]
        assert context.processes == 2

    def test_map_tasks_never_spawns_more_than_tasks(self, monkeypatch):
        context = self._patched_context(monkeypatch)
        ShardedExecutor(workers=8).map_tasks(str, [1, 2])
        assert context.processes == 2

    def test_imap_tasks_caps_pool_at_workers(self, monkeypatch):
        context = self._patched_context(monkeypatch)
        results = list(ShardedExecutor(workers=3).imap_tasks(str, list(range(10))))
        assert results == [str(n) for n in range(10)]
        assert context.processes == 3

    def test_single_task_runs_in_process(self, monkeypatch):
        context = self._patched_context(monkeypatch)
        assert ShardedExecutor(workers=4).map_tasks(str, [7]) == ["7"]
        assert context.processes is None


# ----------------------------------------------------------------------
# Warm worker pool
# ----------------------------------------------------------------------
class _FakeWarmPool:
    def __init__(self):
        self.mapped = []

    def map(self, fn, tasks):
        self.mapped.append(len(tasks))
        return [fn(task) for task in tasks]

    def imap(self, fn, tasks):
        self.mapped.append(len(tasks))
        return iter([fn(task) for task in tasks])


class TestWarmPoolSession:
    def test_pool_requires_two_workers(self):
        with pytest.raises(ValueError):
            WarmWorkerPool(1)

    def test_session_is_noop_for_single_worker(self):
        with pool_session(1) as pool:
            assert pool is None
            assert active_pool() is None

    def test_session_is_noop_when_disabled(self):
        with pool_session(4, enabled=False) as pool:
            assert pool is None
            assert active_pool() is None

    def test_nested_session_reuses_outer_pool(self, monkeypatch):
        sentinel = _FakeWarmPool()
        monkeypatch.setattr(pool_module, "_ACTIVE_POOL", sentinel)
        assert active_pool() is sentinel
        with pool_session(4) as pool:
            assert pool is sentinel

    def test_executor_routes_through_active_pool(self, monkeypatch):
        fake = _FakeWarmPool()
        monkeypatch.setattr(pool_module, "_ACTIVE_POOL", fake)
        assert ShardedExecutor(workers=2).map_tasks(str, [1, 2, 3]) == ["1", "2", "3"]
        assert list(ShardedExecutor(workers=2).imap_tasks(str, [4, 5])) == ["4", "5"]
        assert fake.mapped == [3, 2]

    def test_warm_pool_reuse_accounting(self):
        with pool_session(2) as pool:
            assert active_pool() is pool
            assert pool.map(abs, [-1, -2, -3]) == [1, 2, 3]
            assert list(pool.imap(abs, [-4])) == [4]
            stats = pool.stats()
            # dispatch_seconds is wall time spent inside pool dispatch;
            # its value is timing noise, but it must be present and sane.
            assert stats.pop("dispatch_seconds") >= 0
            assert stats == {
                "workers": 2,
                "batches": 2,
                "tasks_dispatched": 4,
                "dispatches": 4,
                "reused_dispatches": 2,
            }
        assert active_pool() is None
        pool.close()  # idempotent after session teardown


# ----------------------------------------------------------------------
# Telemetry merging primitives
# ----------------------------------------------------------------------
class TestMergeSnapshot:
    def _snapshot_of(self, build) -> dict:
        registry = MetricsRegistry(enabled=True)
        build(registry)
        return metrics_snapshot(registry)

    def test_counters_add(self):
        parent = MetricsRegistry(enabled=True)
        parent.counter("requests_total").inc(3, route="a")
        snapshot = self._snapshot_of(
            lambda r: (r.counter("requests_total").inc(2, route="a"),
                       r.counter("requests_total").inc(5, route="b"))
        )
        parent.merge_snapshot(snapshot)
        series = parent.get("requests_total").series()
        assert series[(("route", "a"),)] == 5
        assert series[(("route", "b"),)] == 5

    def test_gauges_adopt_last_value(self):
        parent = MetricsRegistry(enabled=True)
        parent.gauge("wall_seconds").set(1.0)
        snapshot = self._snapshot_of(lambda r: r.gauge("wall_seconds").set(9.0))
        parent.merge_snapshot(snapshot)
        assert parent.get("wall_seconds").series()[()] == 9.0

    def test_histograms_add_buckets_sum_count(self):
        buckets = (0.1, 1.0)

        def build(registry):
            h = registry.histogram("latency_seconds", buckets=buckets)
            h.observe(0.05)
            h.observe(0.5)
            h.observe(5.0)

        parent = MetricsRegistry(enabled=True)
        parent.histogram("latency_seconds", buckets=buckets).observe(0.5)
        parent.merge_snapshot(self._snapshot_of(build))
        state = parent.get("latency_seconds").series()[()]
        assert state.count == 4
        assert state.sum == pytest.approx(6.05)
        assert state.cumulative() == [1, 3, 4]

    def test_histogram_bucket_mismatch_rejected(self):
        parent = MetricsRegistry(enabled=True)
        parent.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.5)
        snapshot = self._snapshot_of(
            lambda r: r.histogram("latency_seconds", buckets=(0.5,)).observe(0.2)
        )
        with pytest.raises(ValueError):
            parent.merge_snapshot(snapshot)

    def test_merge_applies_to_disabled_registry(self):
        parent = MetricsRegistry(enabled=False)
        snapshot = self._snapshot_of(lambda r: r.counter("requests_total").inc(7))
        parent.merge_snapshot(snapshot)
        assert parent.get("requests_total").total() == 7


class TestEventLogMerge:
    def test_entries_tagged_with_worker_and_resequenced(self):
        worker_log = EventLog(enabled=True, level="debug")
        worker_log.debug("first", device="A")
        worker_log.info("second", device="B")

        parent = EventLog(enabled=True, level="debug")
        parent.info("before")
        parent.merge(worker_log.tail(), worker=3)
        entries = parent.tail()
        assert [entry["event"] for entry in entries] == ["before", "first", "second"]
        assert entries[1]["worker"] == 3
        assert entries[2]["worker"] == 3
        assert [entry["seq"] for entry in entries] == [1, 2, 3]

    def test_merge_respects_parent_level(self):
        worker_log = EventLog(enabled=True, level="debug")
        worker_log.debug("noise")
        worker_log.warning("signal")
        parent = EventLog(enabled=True, level="info")
        parent.merge(worker_log.tail(), worker=0)
        assert [entry["event"] for entry in parent.tail()] == ["signal"]


# ----------------------------------------------------------------------
# Serial-vs-parallel equivalence (the tentpole guarantee)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_capture_json() -> str:
    capture = PassiveTraceGenerator(scale=SCALE, seed=SEED).generate()
    return json.dumps(capture_to_document(capture), indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def serial_campaign():
    return ActiveExperimentCampaign().run()


def _headline(results) -> tuple:
    return (
        results.vulnerable_device_count,
        results.sensitive_leak_count,
        results.downgrading_device_count,
        results.old_version_device_count,
        tuple(results.probe_eligible),
        len(results.probes),
        len(results.passthrough),
    )


def _counter_totals() -> dict[str, object]:
    snapshot = metrics_snapshot(telemetry.get_registry())
    return {
        name: sorted(
            (json.dumps(series["labels"], sort_keys=True), series["value"])
            for series in payload["series"]
        )
        for name, payload in snapshot["counters"].items()
    }


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_trace_capture_json_identical(workers, serial_capture_json):
    capture = PassiveTraceGenerator(scale=SCALE, seed=SEED).generate(workers=workers)
    exported = json.dumps(capture_to_document(capture), indent=2, sort_keys=True)
    assert exported == serial_capture_json


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_campaign_headline_counts_identical(workers, serial_campaign):
    results = ActiveExperimentCampaign().run(workers=workers)
    assert _headline(results) == _headline(serial_campaign)


class TestWarmPoolManifestParity:
    """The warm pool must be invisible in every artifact: a streaming
    trace run produces the same manifest digest at any worker count,
    warm pool on or off."""

    def _digest(self, *, workers: int, warm_pool: bool) -> str:
        from repro.api import RunConfig, run_trace

        try:
            result = run_trace(
                RunConfig(
                    scale=1,
                    seed="warm-parity",
                    workers=workers,
                    warm_pool=warm_pool,
                    telemetry=True,
                    stream=True,
                )
            )
        finally:
            telemetry.disable()
        return result.manifest_digest

    def test_manifests_identical_warm_on_and_off(self):
        serial = self._digest(workers=1, warm_pool=True)
        warm = self._digest(workers=2, warm_pool=True)
        cold = self._digest(workers=2, warm_pool=False)
        assert warm == serial
        assert cold == serial


@pytest.mark.parametrize("workers", [2, 4])
def test_merged_telemetry_counters_identical(workers):
    try:
        telemetry.configure(enabled=True, level="debug")
        PassiveTraceGenerator(scale=SCALE, seed=SEED).generate()
        serial_totals = _counter_totals()

        telemetry.configure(enabled=True, level="debug")
        PassiveTraceGenerator(scale=SCALE, seed=SEED).generate(workers=workers)
        parallel_totals = _counter_totals()
    finally:
        telemetry.disable()
    assert parallel_totals == serial_totals
    assert parallel_totals["iotls_trace_devices_total"] == [("{}", 40)]
