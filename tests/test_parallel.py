"""Parallel execution layer: sharding, merging, and serial equivalence.

The contract under test: for any worker count, a parallel run produces
*identical* artifacts to the serial one -- same capture JSON, same
campaign headline numbers, same merged telemetry counter totals.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.analysis.export import capture_to_document
from repro.core.audit import ActiveExperimentCampaign
from repro.longitudinal.generator import PassiveTraceGenerator
from repro.parallel import ShardedExecutor
from repro.telemetry.events import EventLog
from repro.telemetry.export import metrics_snapshot
from repro.telemetry.metrics import MetricsRegistry

SEED = "parallel-equivalence"
SCALE = 2


# ----------------------------------------------------------------------
# ShardedExecutor unit behaviour
# ----------------------------------------------------------------------
class TestShardedExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardedExecutor(0)

    def test_round_robin_sharding(self):
        shards = ShardedExecutor(3).shard(["a", "b", "c", "d", "e", "f", "g"])
        assert shards == [["a", "d", "g"], ["b", "e"], ["c", "f"]]

    def test_never_more_shards_than_items(self):
        shards = ShardedExecutor(8).shard(["a", "b"])
        assert shards == [["a"], ["b"]]

    def test_shards_cover_all_items_exactly_once(self):
        items = [f"item-{i}" for i in range(17)]
        shards = ShardedExecutor(4).shard(items)
        flattened = [item for shard in shards for item in shard]
        assert sorted(flattened) == sorted(items)

    def test_generator_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            PassiveTraceGenerator(scale=1).generate(workers=0)

    def test_campaign_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ActiveExperimentCampaign().run(workers=0)


# ----------------------------------------------------------------------
# Telemetry merging primitives
# ----------------------------------------------------------------------
class TestMergeSnapshot:
    def _snapshot_of(self, build) -> dict:
        registry = MetricsRegistry(enabled=True)
        build(registry)
        return metrics_snapshot(registry)

    def test_counters_add(self):
        parent = MetricsRegistry(enabled=True)
        parent.counter("requests_total").inc(3, route="a")
        snapshot = self._snapshot_of(
            lambda r: (r.counter("requests_total").inc(2, route="a"),
                       r.counter("requests_total").inc(5, route="b"))
        )
        parent.merge_snapshot(snapshot)
        series = parent.get("requests_total").series()
        assert series[(("route", "a"),)] == 5
        assert series[(("route", "b"),)] == 5

    def test_gauges_adopt_last_value(self):
        parent = MetricsRegistry(enabled=True)
        parent.gauge("wall_seconds").set(1.0)
        snapshot = self._snapshot_of(lambda r: r.gauge("wall_seconds").set(9.0))
        parent.merge_snapshot(snapshot)
        assert parent.get("wall_seconds").series()[()] == 9.0

    def test_histograms_add_buckets_sum_count(self):
        buckets = (0.1, 1.0)

        def build(registry):
            h = registry.histogram("latency_seconds", buckets=buckets)
            h.observe(0.05)
            h.observe(0.5)
            h.observe(5.0)

        parent = MetricsRegistry(enabled=True)
        parent.histogram("latency_seconds", buckets=buckets).observe(0.5)
        parent.merge_snapshot(self._snapshot_of(build))
        state = parent.get("latency_seconds").series()[()]
        assert state.count == 4
        assert state.sum == pytest.approx(6.05)
        assert state.cumulative() == [1, 3, 4]

    def test_histogram_bucket_mismatch_rejected(self):
        parent = MetricsRegistry(enabled=True)
        parent.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.5)
        snapshot = self._snapshot_of(
            lambda r: r.histogram("latency_seconds", buckets=(0.5,)).observe(0.2)
        )
        with pytest.raises(ValueError):
            parent.merge_snapshot(snapshot)

    def test_merge_applies_to_disabled_registry(self):
        parent = MetricsRegistry(enabled=False)
        snapshot = self._snapshot_of(lambda r: r.counter("requests_total").inc(7))
        parent.merge_snapshot(snapshot)
        assert parent.get("requests_total").total() == 7


class TestEventLogMerge:
    def test_entries_tagged_with_worker_and_resequenced(self):
        worker_log = EventLog(enabled=True, level="debug")
        worker_log.debug("first", device="A")
        worker_log.info("second", device="B")

        parent = EventLog(enabled=True, level="debug")
        parent.info("before")
        parent.merge(worker_log.tail(), worker=3)
        entries = parent.tail()
        assert [entry["event"] for entry in entries] == ["before", "first", "second"]
        assert entries[1]["worker"] == 3
        assert entries[2]["worker"] == 3
        assert [entry["seq"] for entry in entries] == [1, 2, 3]

    def test_merge_respects_parent_level(self):
        worker_log = EventLog(enabled=True, level="debug")
        worker_log.debug("noise")
        worker_log.warning("signal")
        parent = EventLog(enabled=True, level="info")
        parent.merge(worker_log.tail(), worker=0)
        assert [entry["event"] for entry in parent.tail()] == ["signal"]


# ----------------------------------------------------------------------
# Serial-vs-parallel equivalence (the tentpole guarantee)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_capture_json() -> str:
    capture = PassiveTraceGenerator(scale=SCALE, seed=SEED).generate()
    return json.dumps(capture_to_document(capture), indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def serial_campaign():
    return ActiveExperimentCampaign().run()


def _headline(results) -> tuple:
    return (
        results.vulnerable_device_count,
        results.sensitive_leak_count,
        results.downgrading_device_count,
        results.old_version_device_count,
        tuple(results.probe_eligible),
        len(results.probes),
        len(results.passthrough),
    )


def _counter_totals() -> dict[str, object]:
    snapshot = metrics_snapshot(telemetry.get_registry())
    return {
        name: sorted(
            (json.dumps(series["labels"], sort_keys=True), series["value"])
            for series in payload["series"]
        )
        for name, payload in snapshot["counters"].items()
    }


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_trace_capture_json_identical(workers, serial_capture_json):
    capture = PassiveTraceGenerator(scale=SCALE, seed=SEED).generate(workers=workers)
    exported = json.dumps(capture_to_document(capture), indent=2, sort_keys=True)
    assert exported == serial_capture_json


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_campaign_headline_counts_identical(workers, serial_campaign):
    results = ActiveExperimentCampaign().run(workers=workers)
    assert _headline(results) == _headline(serial_campaign)


@pytest.mark.parametrize("workers", [2, 4])
def test_merged_telemetry_counters_identical(workers):
    try:
        telemetry.configure(enabled=True, level="debug")
        PassiveTraceGenerator(scale=SCALE, seed=SEED).generate()
        serial_totals = _counter_totals()

        telemetry.configure(enabled=True, level="debug")
        PassiveTraceGenerator(scale=SCALE, seed=SEED).generate(workers=workers)
        parallel_totals = _counter_totals()
    finally:
        telemetry.disable()
    assert parallel_totals == serial_totals
    assert parallel_totals["iotls_trace_devices_total"] == [("{}", 40)]
