"""Tests for the full campaign orchestration, probing results (Table 9)
and the TrafficPassthrough verification pass."""

from __future__ import annotations

import statistics

from repro.analysis import distrusted_trusted_by, staleness_by_device


class TestProbeCampaign:
    def test_eight_amenable_devices(self, campaign_results):
        amenable = {r.device for r in campaign_results.amenable_probe_reports}
        assert amenable == {
            "Google Home Mini",
            "Amazon Echo Plus",
            "Amazon Echo Dot",
            "Amazon Echo Dot 3",
            "Wink Hub 2",
            "Roku TV",
            "LG TV",
            "Harman Invoke",
        }

    def test_eligibility_excludes_reboot_unsafe_and_unvalidated(self, campaign_results):
        eligible = set(campaign_results.probe_eligible)
        for excluded in (
            "Nest Thermostat",
            "Samsung Dryer",
            "Samsung Fridge",  # reboot-unsafe
            "Zmodo Doorbell",
            "Amcrest Camera",
            "Smarter iKettle",
            "Yi Camera",  # never validated under attack
        ):
            assert excluded not in eligible

    def test_table9_shape(self, campaign_results):
        """Fractions follow the paper's ordering: GHM cleanest store,
        LG TV / Invoke the most stale."""
        by_device = {
            r.device: r for r in campaign_results.amenable_probe_reports
        }

        def deprecated_fraction(name):
            present, conclusive = by_device[name].deprecated_tally
            return present / conclusive

        def common_fraction(name):
            present, conclusive = by_device[name].common_tally
            return present / conclusive

        assert common_fraction("Google Home Mini") == 1.0
        assert deprecated_fraction("Google Home Mini") < 0.10
        assert deprecated_fraction("LG TV") > 0.5
        assert deprecated_fraction("Harman Invoke") > 0.5
        assert deprecated_fraction("Wink Hub 2") > deprecated_fraction("Amazon Echo Dot")
        # Every probed device retains most of the common set.
        for name in by_device:
            assert common_fraction(name) > 0.8, name

    def test_every_probed_device_has_deprecated_roots(self, campaign_results):
        for report in campaign_results.amenable_probe_reports:
            present, _ = report.deprecated_tally
            assert present >= 1, report.device

    def test_every_probed_device_trusts_a_distrusted_ca(
        self, campaign_results, universe
    ):
        trusted = distrusted_trusted_by(campaign_results.probes, universe)
        assert len(trusted) == 8
        for device, names in trusted.items():
            assert names, f"{device} should trust >=1 explicitly distrusted CA"

    def test_lg_tv_staleness_reaches_2013(self, campaign_results, universe):
        staleness = {
            s.device: s for s in staleness_by_device(campaign_results.probes, universe)
        }
        assert staleness["LG TV"].oldest_removal_year == 2013

    def test_staleness_mass_in_2018_2019(self, campaign_results, universe):
        """Figure 4: most retained stale roots were deprecated 2018/2019."""
        total = 0
        recent = 0
        for s in staleness_by_device(campaign_results.probes, universe):
            for year, count in s.removal_years.items():
                total += count
                if year in (2018, 2019):
                    recent += count
        assert recent > total / 2


class TestPassthrough:
    def test_no_new_validation_failures(self, campaign_results):
        assert sum(o.new_validation_failures for o in campaign_results.passthrough) == 0

    def test_extra_destinations_surface(self, campaign_results):
        fractions = [o.extra_fraction for o in campaign_results.passthrough]
        mean = statistics.mean(fractions)
        # The paper reports ~20.4% more destinations on average.
        assert 0.10 < mean < 0.35

    def test_new_hostnames_are_followups(self, campaign_results):
        for outcome in campaign_results.passthrough:
            for hostname in outcome.new_hostnames:
                assert hostname.startswith("session.")


class TestHeadlineNumbers:
    def test_research_findings_summary(self, campaign_results):
        assert campaign_results.vulnerable_device_count == 11
        assert campaign_results.downgrading_device_count == 7
        assert campaign_results.sensitive_leak_count == 7
        assert campaign_results.old_version_device_count == 18
        assert len(campaign_results.amenable_probe_reports) == 8
