"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.analysis.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text(testbed, campaign_results, passive_capture):
    return generate_report(testbed, campaign_results, passive_capture)


class TestReport:
    def test_headline_table_present(self, report_text):
        assert "# IoTLS reproduction report" in report_text
        assert "| Devices vulnerable to interception | 11 | 11 |" in report_text
        assert "| Probe-amenable devices | 8 | 8 |" in report_text

    def test_all_vulnerable_devices_listed(self, report_text):
        for device in (
            "Zmodo Doorbell",
            "Amcrest Camera",
            "Smarter iKettle",
            "Yi Camera",
            "Wink Hub 2",
            "LG TV",
            "Smartthings Hub",
            "Amazon Echo Plus",
            "Amazon Echo Dot",
            "Amazon Echo Spot",
            "Fire TV",
        ):
            assert device in report_text

    def test_sections_present(self, report_text):
        for heading in (
            "## Interception (Table 7)",
            "## Downgrades (Table 5) and POODLE exposure",
            "## Root stores (Table 9)",
            "## Longitudinal study (Figures 1-3)",
            "## Revocation (Table 8)",
            "## Fingerprints (Figure 5)",
            "## TrafficPassthrough verification (§4.2)",
        ):
            assert heading in report_text, heading

    def test_oldest_staleness_year_reported(self, report_text):
        assert "removed in **2013**" in report_text

    def test_adoption_events_listed(self, report_text):
        assert "Ring Doorbell: establishes forward-secret connections from 4/2018" in report_text
        assert "Apple TV: advertises TLS 1.3 from 5/2019" in report_text

    def test_write_report_creates_file(self, testbed, campaign_results, passive_capture, tmp_path):
        path = write_report(testbed, campaign_results, passive_capture, tmp_path / "out" / "R.md")
        assert path.exists()
        assert path.read_text().startswith("# IoTLS reproduction report")
