"""Unit tests for certificates, builders, and certificate authorities."""

from __future__ import annotations

import pytest

from repro.pki import (
    BasicConstraints,
    CertificateAuthority,
    CertificateBuilder,
    DistinguishedName,
    generate_keypair,
    utc,
)


class TestCertificateAuthority:
    def test_root_is_self_signed_ca(self, simple_ca):
        root = simple_ca.certificate
        assert root.is_self_signed
        assert root.basic_constraints.ca
        assert root.verify_signature(simple_ca.keypair.public)

    def test_issue_leaf_carries_hostname_san(self, simple_ca):
        leaf, keypair = simple_ca.issue_leaf("api.example.com")
        assert "api.example.com" in leaf.subject_alt_names
        assert leaf.issuer.matches(simple_ca.name)
        assert not leaf.basic_constraints.ca
        assert leaf.verify_signature(simple_ca.keypair.public)
        assert leaf.public_key == keypair.public

    def test_issue_leaf_extra_names(self, simple_ca):
        leaf, _ = simple_ca.issue_leaf("a.example.com", extra_names=("b.example.com",))
        assert set(leaf.subject_alt_names) == {"a.example.com", "b.example.com"}

    def test_intermediate_chains_to_parent(self, simple_ca):
        intermediate = simple_ca.issue_intermediate(
            DistinguishedName(common_name="Intermediate CA")
        )
        assert intermediate.certificate.basic_constraints.ca
        assert intermediate.certificate.verify_signature(simple_ca.keypair.public)
        assert not intermediate.certificate.is_self_signed

    def test_self_signed_leaf_is_not_ca(self):
        cert, keypair = CertificateAuthority.self_signed_leaf("victim.example.com")
        assert cert.is_self_signed
        assert not cert.basic_constraints.ca
        assert cert.verify_signature(keypair.public)


class TestCertificateBuilder:
    def test_requires_subject_and_key(self):
        key = generate_keypair(seed=b"builder")
        with pytest.raises(ValueError):
            CertificateBuilder(public_key=key.public).sign(key.private)
        with pytest.raises(ValueError):
            CertificateBuilder(subject=DistinguishedName(common_name="X")).sign(key.private)

    def test_serials_are_unique(self):
        key = generate_keypair(seed=b"serial")
        certs = [
            CertificateBuilder(
                subject=DistinguishedName(common_name=f"c{i}"), public_key=key.public
            ).sign(key.private)
            for i in range(5)
        ]
        assert len({c.serial for c in certs}) == 5

    def test_spoof_copies_identity_not_key(self, simple_ca):
        attacker = generate_keypair(seed=b"spoofer")
        spoofed = CertificateBuilder.spoof_from(simple_ca.certificate, attacker.public).sign(
            attacker.private
        )
        original = simple_ca.certificate
        assert spoofed.subject.matches(original.subject)
        assert spoofed.serial == original.serial
        assert spoofed.not_after == original.not_after
        # Key differs, so the trusted root's key does NOT verify it...
        assert not spoofed.verify_signature(simple_ca.keypair.public)
        # ...but the attacker's key does (it is internally consistent).
        assert spoofed.verify_signature(attacker.public)

    def test_tampering_invalidates_signature(self, simple_ca):
        from dataclasses import replace

        leaf, _ = simple_ca.issue_leaf("api.example.com")
        tampered = replace(leaf, subject_alt_names=("evil.example.com",))
        assert not tampered.verify_signature(simple_ca.keypair.public)


class TestValidityWindow:
    def test_window_is_inclusive(self, simple_ca):
        leaf, _ = simple_ca.issue_leaf(
            "x.example.com", not_before=utc(2020), not_after=utc(2022)
        )
        assert leaf.is_valid_at(utc(2020))
        assert leaf.is_valid_at(utc(2022))
        assert leaf.is_valid_at(utc(2021, 6))
        assert not leaf.is_valid_at(utc(2019, 12, 31))
        assert not leaf.is_valid_at(utc(2022, 1, 2))

    def test_summary_mentions_kind(self, simple_ca):
        assert "CA cert" in simple_ca.certificate.summary()
        leaf, _ = simple_ca.issue_leaf("y.example.com")
        assert "leaf cert" in leaf.summary()


def test_basic_constraints_defaults():
    assert BasicConstraints(ca=True).path_len is None
