"""The run ledger: append boundary, run_* wiring, and `iotls runs`.

The ledger is observability, never provenance: the tests here pin both
halves of that contract -- every ``run_*`` invocation (success and
typed failure alike) appends exactly one valid ``iotls-run-ledger/1``
entry, and manifests stay byte-identical whether the ledger is on or
off and whatever the worker count.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import RunConfig, UnknownDeviceError, run_probe, run_trace
from repro.cli import main
from repro.telemetry import ledger


@pytest.fixture
def ledger_path(tmp_path):
    return tmp_path / "ledger.jsonl"


def trace_config(ledger_path, **kwargs):
    return RunConfig(scale=1, seed="ledger-test", ledger=ledger_path, **kwargs)


class TestAppendBoundary:
    def test_append_and_load_roundtrip(self, ledger_path):
        entry = ledger.build_entry("trace", params={"scale": 1}, seconds=1.23456)
        ledger.append_entry(entry, ledger_path)
        loaded = ledger.load_ledger(ledger_path)
        assert loaded == [entry]
        assert loaded[0]["schema"] == ledger.LEDGER_SCHEMA
        assert loaded[0]["seconds"] == 1.2346
        assert set(loaded[0]["host"]) == {"cpu_count", "platform", "machine"}

    def test_entries_are_single_lines(self, ledger_path):
        for index in range(3):
            ledger.append_entry(
                ledger.build_entry("trace", params={"run": index}), ledger_path
            )
        lines = [line for line in ledger_path.read_text().splitlines() if line]
        assert len(lines) == 3
        assert all(json.loads(line)["command"] == "trace" for line in lines)

    def test_corrupt_trailing_line_is_tolerated(self, ledger_path):
        ledger.append_entry(ledger.build_entry("trace"), ledger_path)
        with open(ledger_path, "a") as handle:
            handle.write('{"torn": ')  # simulated partial write / crash
        loaded = ledger.load_ledger(ledger_path)
        assert len(loaded) == 1
        # And the boundary keeps appending cleanly after the torn line.
        ledger.append_entry(ledger.build_entry("audit"), ledger_path)
        assert [e["command"] for e in ledger.load_ledger(ledger_path)] == [
            "trace",
            "audit",
        ]

    def test_missing_ledger_loads_empty(self, tmp_path):
        assert ledger.load_ledger(tmp_path / "absent.jsonl") == []

    def test_error_entries_carry_typed_error(self, ledger_path):
        entry = ledger.build_entry(
            "probe",
            params={"device": "Toaster"},
            status="error",
            error=UnknownDeviceError("unknown device: Toaster"),
        )
        assert entry["status"] == "error"
        assert entry["error"]["type"] == "UnknownDeviceError"
        assert "Toaster" in entry["error"]["message"]

    def test_config_digest_is_stable_across_entries(self):
        one = ledger.build_entry("trace", params={"scale": 1})
        two = ledger.build_entry("trace", params={"scale": 1})
        other = ledger.build_entry("trace", params={"scale": 2})
        assert one["config_digest"] == two["config_digest"]
        assert one["config_digest"] != other["config_digest"]


class TestRunWiring:
    def test_each_run_appends_exactly_one_entry(self, ledger_path):
        run_trace(trace_config(ledger_path))
        run_trace(trace_config(ledger_path))
        entries = ledger.load_ledger(ledger_path)
        assert len(entries) == 2
        assert all(e["status"] == "ok" and e["kind"] == "run" for e in entries)
        assert entries[0]["config_digest"] == entries[1]["config_digest"]
        assert entries[0]["manifest_digest"] == entries[1]["manifest_digest"]

    def test_run_entry_matches_result_manifest(self, ledger_path):
        result = run_trace(trace_config(ledger_path))
        (entry,) = ledger.load_ledger(ledger_path)
        assert entry["manifest_digest"] == result.manifest_digest
        assert entry["command"] == "trace"
        assert entry["params"]["scale"] == 1
        assert entry["workers"] == 1
        assert isinstance(entry["seconds"], float)

    def test_failed_probe_appends_error_entry(self, ledger_path):
        with pytest.raises(UnknownDeviceError):
            run_probe("Nonexistent Toaster", RunConfig(ledger=ledger_path))
        (entry,) = ledger.load_ledger(ledger_path)
        assert entry["status"] == "error"
        assert entry["command"] == "probe"
        assert entry["error"]["type"] == "UnknownDeviceError"
        assert entry["params"]["device"] == "Nonexistent Toaster"

    def test_ledger_none_disables_recording(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_trace(RunConfig(scale=1, seed="ledger-test", ledger=None))
        assert not (tmp_path / ledger.DEFAULT_LEDGER_PATH).exists()

    def test_default_path_is_dot_iotls(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_trace(RunConfig(scale=1, seed="ledger-test"))
        entries = ledger.load_ledger(tmp_path / ledger.DEFAULT_LEDGER_PATH)
        assert len(entries) == 1

    def test_json_artifact_recorded_with_digest(self, ledger_path, tmp_path):
        json_path = tmp_path / "trace.json"
        run_trace(trace_config(ledger_path), json_path=json_path)
        (entry,) = ledger.load_ledger(ledger_path)
        artifact = entry["artifacts"]["records_json"]
        assert Path(artifact["path"]) == json_path.resolve()
        assert artifact["bytes"] == json_path.stat().st_size

    def test_manifest_parity_across_workers_and_ledger(self, ledger_path):
        """The acceptance bar: manifests are byte-identical across
        ``--workers 1/2/4`` x ledger on/off."""
        digests = set()
        for workers in (1, 2, 4):
            for path in (ledger_path, None):
                result = run_trace(trace_config(ledger_path=path, workers=workers))
                digests.add(result.manifest_digest)
        assert len(digests) == 1
        # Ledgered runs recorded that same digest, and nothing else.
        entries = ledger.load_ledger(ledger_path)
        assert {e["manifest_digest"] for e in entries} == digests
        assert len(entries) == 3


class TestQueries:
    def _seed_entries(self):
        ok = ledger.build_entry(
            "trace",
            params={"scale": 1, "device": "LG TV"},
            manifest_digest="aaaa1111bbbb2222",
        )
        err = ledger.build_entry(
            "probe",
            params={"device": "Yi Camera"},
            status="error",
            error=UnknownDeviceError("nope"),
        )
        bench = ledger.build_entry(
            "bench",
            kind="bench",
            seconds=2.0,
            extra={"benchmark": "stream_trace", "git_rev": "abc1234"},
        )
        return [ok, err, bench]

    def test_filter_by_status_kind_and_device(self):
        entries = self._seed_entries()
        assert len(ledger.filter_entries(entries, status="error")) == 1
        assert len(ledger.filter_entries(entries, kind="bench")) == 1
        assert len(ledger.filter_entries(entries, device="Yi Camera")) == 1
        assert len(ledger.filter_entries(entries, command="trace")) == 1
        assert len(ledger.filter_entries(entries)) == 3

    def test_find_entry_by_digest_prefix(self):
        entries = self._seed_entries()
        found = ledger.find_entry(entries, "aaaa")
        assert found is not None and found["command"] == "trace"
        assert ledger.find_entry(entries, "ffff") is None

    def test_lookup_config_wants_ok_runs_with_manifests(self):
        entries = self._seed_entries()
        digest = entries[0]["config_digest"]
        assert ledger.lookup_config(entries, digest) is entries[0]
        # The error entry's config digest never satisfies a cache probe.
        assert ledger.lookup_config(entries, entries[1]["config_digest"]) is None

    def test_diff_entries_identical_runs(self):
        a = ledger.build_entry("trace", params={"scale": 1}, manifest_digest="aa")
        b = ledger.build_entry("trace", params={"scale": 1}, manifest_digest="aa")
        diff = ledger.diff_entries(a, b)
        assert diff["manifest_match"] and diff["config_match"]
        assert not diff["drift"]
        assert diff["metrics_delta"] == {}

    def test_diff_entries_detects_drift(self):
        a = ledger.build_entry("trace", params={"scale": 1}, manifest_digest="aa")
        b = ledger.build_entry("trace", params={"scale": 2}, manifest_digest="bb")
        diff = ledger.diff_entries(a, b)
        assert diff["drift"]
        assert not diff["config_match"]
        assert diff["params_delta"] == {"scale": {"a": 1, "b": 2}}

    def test_gc_prunes_only_missing_artifacts(self, tmp_path):
        alive = tmp_path / "alive.json"
        alive.write_text("{}")
        gone = tmp_path / "gone.json"
        gone.write_text("{}")
        keep = ledger.build_entry("trace", artifacts={"json": alive})
        stale = ledger.build_entry("trace", artifacts={"json": gone})
        gone.unlink()
        bare = ledger.build_entry("audit")
        kept, pruned = ledger.gc_entries([keep, stale, bare])
        assert kept == [keep, bare]
        assert pruned == [stale]

    def test_trend_groups_bench_entries_by_host(self):
        entries = self._seed_entries()
        report = ledger.ledger_trend(entries)
        assert report["schema"] == "iotls-bench-trend/1"
        assert report["entries"] == 1  # only the bench entry counts
        assert "stream_trace" in report["benchmarks"]
        (host,) = report["hosts"].values()
        assert host["series"]["stream_trace"][-1]["seconds"] == 2.0
        assert host["benchmarks"]["stream_trace"]["runs"] == 1

    def test_from_history_row_tags_fingerprintless_rows(self):
        legacy = {"benchmark": "b", "seconds": 1.0, "host_cpu_count": 4}
        migrated = ledger.from_history_row(legacy)
        assert migrated["schema"] == ledger.LEDGER_SCHEMA
        assert migrated["legacy"] is True
        assert migrated["kind"] == "bench"
        # Rows already in ledger schema pass through untouched.
        modern = ledger.build_entry("bench", kind="bench", seconds=1.0)
        assert ledger.from_history_row(modern) == modern


class TestRunsCli:
    @pytest.fixture
    def traced_ledger(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for _ in range(2):
            assert (
                main(
                    [
                        "trace",
                        "--scale",
                        "1",
                        "--seed",
                        "runs-cli",
                        "--ledger",
                        str(path),
                    ]
                )
                == 0
            )
        return path

    def test_list_shows_every_entry(self, traced_ledger, capsys):
        assert main(["runs", "--ledger", str(traced_ledger), "list"]) == 0
        out = capsys.readouterr().out
        assert out.count("trace") >= 2
        assert "ok" in out

    def test_list_filters(self, traced_ledger, capsys):
        assert (
            main(
                ["runs", "--ledger", str(traced_ledger), "list", "--status", "error"]
            )
            == 0
        )
        assert "trace" not in capsys.readouterr().out

    def test_diff_identical_runs_exits_zero(self, traced_ledger, capsys):
        assert main(["runs", "--ledger", str(traced_ledger), "diff"]) == 0
        assert "zero manifest delta" in capsys.readouterr().out

    def test_diff_unknown_digest_exits_two(self, traced_ledger):
        assert (
            main(["runs", "--ledger", str(traced_ledger), "diff", "ffff", "eeee"])
            == 2
        )

    def test_diff_drifted_runs_exits_one(self, traced_ledger, capsys):
        assert (
            main(
                [
                    "trace",
                    "--scale",
                    "1",
                    "--seed",
                    "runs-cli-other",
                    "--ledger",
                    str(traced_ledger),
                ]
            )
            == 0
        )
        entries = ledger.load_ledger(traced_ledger)
        assert (
            main(
                [
                    "runs",
                    "--ledger",
                    str(traced_ledger),
                    "diff",
                    entries[0]["manifest_digest"],
                    entries[-1]["manifest_digest"],
                ]
            )
            == 1
        )

    def test_show_by_digest_prefix(self, traced_ledger, capsys):
        digest = ledger.load_ledger(traced_ledger)[0]["manifest_digest"]
        assert main(["runs", "--ledger", str(traced_ledger), "show", digest[:8]]) == 0
        assert digest in capsys.readouterr().out
        assert main(["runs", "--ledger", str(traced_ledger), "show", "ffff"]) == 1

    def test_lookup_hit_and_miss(self, traced_ledger, capsys):
        entry = ledger.load_ledger(traced_ledger)[0]
        assert (
            main(
                [
                    "runs",
                    "--ledger",
                    str(traced_ledger),
                    "lookup",
                    entry["config_digest"],
                ]
            )
            == 0
        )
        assert entry["manifest_digest"] in capsys.readouterr().out
        assert main(["runs", "--ledger", str(traced_ledger), "lookup", "ffff"]) == 1

    def test_gc_dry_run_leaves_file_alone(self, traced_ledger):
        before = traced_ledger.read_text()
        assert main(["runs", "--ledger", str(traced_ledger), "gc", "--dry-run"]) == 0
        assert traced_ledger.read_text() == before

    def test_trend_runs_on_bench_free_ledger(self, traced_ledger):
        assert main(["runs", "--ledger", str(traced_ledger), "trend"]) == 0

    def test_missing_ledger_is_usage_error_for_show(self, tmp_path):
        absent = str(tmp_path / "absent.jsonl")
        assert main(["runs", "--ledger", absent, "show", "aaaa"]) == 2
        assert main(["runs", "--ledger", absent, "list"]) == 0

    def test_no_ledger_flag_suppresses_recording(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "--scale", "1", "--no-ledger"]) == 0
        assert not (tmp_path / ledger.DEFAULT_LEDGER_PATH).exists()

    def test_check_records_drift_outcome(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        assert main(["check", "--scale", "1", "--ledger", str(path)]) == 0
        (entry,) = ledger.load_ledger(path)
        assert entry["kind"] == "check"
        assert entry["status"] == "ok"
        assert entry["drift"]["ok"] is True
        assert entry["drift"]["drifted"] == []


def _append_burst(args: tuple[str, int, int]) -> int:
    """Spawned-process worker: append `count` entries to one ledger."""
    path, worker_id, count = args
    from repro.telemetry import ledger as worker_ledger

    for index in range(count):
        entry = worker_ledger.build_entry(
            "trace",
            params={"scale": 1, "seed": f"concurrent-{worker_id}-{index}"},
            workers=1,
            seconds=0.01,
        )
        worker_ledger.append_entry(entry, path)
    return worker_id


class TestCacheLiveness:
    """lookup_config is a *servable* cache: dangling artifacts miss."""

    def _entry_with_artifact(self, path, seed="live"):
        return ledger.build_entry(
            "trace",
            params={"scale": 1, "seed": seed},
            manifest_digest="feed" + seed.ljust(12, "0")[:12],
            artifacts={"records_jsonl": path},
        )

    def test_lookup_skips_entries_with_deleted_artifacts(self, tmp_path):
        artifact = tmp_path / "run.jsonl"
        artifact.write_text('{"schema": "x"}\n')
        entry = self._entry_with_artifact(artifact)
        digest = entry["config_digest"]
        assert ledger.lookup_config([entry], digest) is entry
        artifact.unlink()
        # The regression: a hit whose bytes are gone must not be served.
        assert ledger.lookup_config([entry], digest) is None

    def test_lookup_falls_back_to_older_live_entry(self, tmp_path):
        old_artifact = tmp_path / "old.jsonl"
        old_artifact.write_text("{}\n")
        new_artifact = tmp_path / "new.jsonl"
        new_artifact.write_text("{}\n")
        older = self._entry_with_artifact(old_artifact)
        newer = self._entry_with_artifact(new_artifact)
        digest = older["config_digest"]
        assert ledger.lookup_config([older, newer], digest) is newer
        new_artifact.unlink()
        assert ledger.lookup_config([older, newer], digest) is older

    def test_artifactless_entries_stay_servable(self):
        entry = ledger.build_entry(
            "audit", params={"include_passthrough": True}, manifest_digest="abcd"
        )
        assert ledger.artifacts_live(entry)
        assert ledger.lookup_config([entry], entry["config_digest"]) is entry


class TestConcurrentAppends:
    """The serve path's steady state: many processes, one ledger file."""

    def test_parallel_processes_never_tear_lines(self, ledger_path):
        import multiprocessing

        workers, per_worker = 4, 8
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=workers) as pool:
            finished = pool.map(
                _append_burst,
                [(str(ledger_path), wid, per_worker) for wid in range(workers)],
            )
        assert sorted(finished) == list(range(workers))

        raw_lines = ledger_path.read_text().splitlines()
        # Exactly one line per run: nothing lost, nothing doubled.
        assert len(raw_lines) == workers * per_worker
        seeds = set()
        for line in raw_lines:
            entry = json.loads(line)  # no torn/interleaved lines
            assert entry["schema"] == ledger.LEDGER_SCHEMA
            seeds.add(entry["params"]["seed"])
        assert seeds == {
            f"concurrent-{wid}-{index}"
            for wid in range(workers)
            for index in range(per_worker)
        }
        # The tolerant loader agrees byte-for-byte.
        assert len(ledger.load_ledger(ledger_path)) == workers * per_worker
