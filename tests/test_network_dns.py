"""Tests for the DNS substrate and attacker-placement model."""

from __future__ import annotations

import pytest

from repro.mitm import AttackerToolbox, AttackMode, InterceptionProxy
from repro.testbed import (
    DnsResolver,
    GatewayAttacker,
    HomeNetwork,
    LanDeviceAttacker,
    identify_destinations,
)


class TestDnsResolver:
    def test_addresses_deterministic_and_in_cloud_prefix(self):
        resolver = DnsResolver()
        a = resolver.resolve("Device A", "api.example.com")
        b = resolver.resolve("Device B", "api.example.com")
        assert a == b
        assert a.startswith("203.0.113.")

    def test_zone_override(self):
        resolver = DnsResolver()
        resolver.add_record("pinned.example.com", "203.0.113.200")
        assert resolver.resolve("D", "pinned.example.com") == "203.0.113.200"

    def test_query_log_attribution(self):
        resolver = DnsResolver()
        resolver.resolve("Camera", "a.example.com", month=3)
        resolver.resolve("Camera", "b.example.com", month=4)
        resolver.resolve("Hub", "a.example.com", month=3)
        assert resolver.hostnames_queried_by("Camera") == {"a.example.com", "b.example.com"}
        assert resolver.queries[0].month == 3

    def test_identify_destinations_merges_sni_and_dns(self, testbed):
        """A destination reached without SNI is still identified via its
        DNS lookup -- the paper's 'SNI or DNS' rule."""
        from repro.testbed import GatewayCapture
        from repro.testbed.infrastructure import Testbed as TestbedClass

        resolver = DnsResolver()
        capture = GatewayCapture()
        device = testbed.device("D-Link Camera")
        # The device resolves every destination it will contact...
        for destination in device.profile.destinations:
            resolver.resolve(device.name, destination.hostname)
        # ...but only one connection shows up with SNI in the capture.
        first = device.profile.destinations[0]
        connection = device.connect_destination(first, testbed.server_for(first))
        capture.add(
            TestbedClass._record_for(connection, connection.attempt.final, downgraded=False)
        )
        identified = identify_destinations(resolver, capture, device.name)
        assert identified == {d.hostname for d in device.profile.destinations}


class TestHomeNetwork:
    def test_join_assigns_stable_addresses(self):
        network = HomeNetwork()
        ip1, mac1 = network.join("Camera")
        ip2, mac2 = network.join("Camera")
        assert (ip1, mac1) == (ip2, mac2)
        assert ip1.startswith("192.168.7.")

    def test_arp_poison_and_restore(self):
        network = HomeNetwork()
        network.join("Victim")
        network.join("Attacker")
        assert not network.is_poisoned("Victim")
        network.poison_arp("Victim", network.mac_of("Attacker"))
        assert network.is_poisoned("Victim")
        assert network.gateway_mac_for("Victim") == network.mac_of("Attacker")
        network.restore_arp("Victim")
        assert not network.is_poisoned("Victim")

    def test_poisoning_unknown_victim_raises(self):
        with pytest.raises(KeyError):
            HomeNetwork().poison_arp("Ghost", "02:00:00:00:00:99")


class TestAttackerPlacement:
    @pytest.fixture()
    def interceptor(self, testbed):
        return InterceptionProxy(
            toolbox=AttackerToolbox(issuing_ca=testbed.anchor(0)),
            mode=AttackMode.NO_VALIDATION,
        )

    def test_gateway_attacker_always_on_path(self, testbed, interceptor):
        network = HomeNetwork()
        attacker = GatewayAttacker(interceptor=interceptor, network=network)
        assert attacker.on_path_for("Zmodo Doorbell")

        device = testbed.device("Zmodo Doorbell")
        device.power_cycle()
        connection = device.connect_destination(device.first_destination(), attacker)
        assert connection.established  # the no-validation device falls

    def test_lan_attacker_needs_arp_spoofing_first(self, testbed, interceptor):
        network = HomeNetwork()
        victim = testbed.device("Zmodo Doorbell")
        network.join(victim.name)
        destination = victim.first_destination()
        attacker = LanDeviceAttacker(
            name="Malicious Plug",
            interceptor=interceptor,
            network=network,
            upstream=testbed.server_for(destination),
        )

        # Before spoofing: traffic takes the genuine path.
        victim.power_cycle()
        connection = victim.connect_destination(
            destination, attacker.responder_for(victim.name)
        )
        assert connection.established
        assert connection.attempt.final.response.certificate_chain[0].issuer.matches(
            testbed.intermediate(destination.server.anchor_index).name
        )

        # After spoofing: same attack capability as the gateway position.
        attacker.spoof(victim.name)
        assert attacker.on_path_for(victim.name)
        victim.power_cycle()
        connection = victim.connect_destination(
            destination, attacker.responder_for(victim.name)
        )
        assert connection.established
        assert connection.attempt.final.response.certificate_chain[0].is_self_signed

        attacker.stop_spoofing(victim.name)
        assert not attacker.on_path_for(victim.name)

    def test_secure_device_resists_both_positions(self, testbed, interceptor):
        network = HomeNetwork()
        victim = testbed.device("D-Link Camera")
        network.join(victim.name)
        destination = victim.first_destination()
        attacker = LanDeviceAttacker(
            name="Malicious Plug",
            interceptor=interceptor,
            network=network,
            upstream=testbed.server_for(destination),
        )
        attacker.spoof(victim.name)
        victim.power_cycle()
        connection = victim.connect_destination(
            destination, attacker.responder_for(victim.name)
        )
        assert not connection.established  # validation holds regardless of position
