"""Run-health observability: resource sampling, progress heartbeats,
cross-worker span stitching, and the SLO-aware bench trajectory.

The acceptance criteria pinned here:

* run manifests stay byte-identical across ``--workers 1/2/4`` whether
  progress/heartbeat/resource sampling is on or off;
* worker spans re-parent under the coordinator's ``parallel.dispatch``
  span, in any merge order;
* tracemalloc activation is reference-counted and released on error
  paths without stopping a trace the sampler did not start.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro import api, telemetry
from repro.cli import main
from repro.telemetry import (
    HEALTH_STREAM_SCHEMA,
    RESOURCE_SUMMARY_SCHEMA,
    SLO_SCHEMA,
    HeartbeatWriter,
    ProgressReporter,
    Profiler,
    ResourceSampler,
    SloPolicyError,
    Throttle,
    TraceContext,
    evaluate_slos,
    load_slo_policy,
    render_progress_line,
    tracemalloc_holds,
    trend_report,
)
from repro.telemetry import TelemetryRuntime
from repro.testbed import ProgressSink


@pytest.fixture(autouse=True)
def telemetry_disabled():
    telemetry.configure(enabled=False)
    yield
    telemetry.configure(enabled=False)


class FakeClock:
    """A manually-advanced clock so rate/ETA math is exact."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Throttle
# ----------------------------------------------------------------------
class TestThrottle:
    def test_first_call_always_passes(self):
        clock = FakeClock()
        throttle = Throttle(10.0, clock=clock)
        assert throttle.ready() is True

    def test_suppresses_within_interval(self):
        clock = FakeClock()
        throttle = Throttle(1.0, clock=clock)
        assert throttle.ready()
        clock.tick(0.5)
        assert not throttle.ready()
        clock.tick(0.6)
        assert throttle.ready()
        assert not throttle.ready()

    def test_reset_restores_first_call(self):
        clock = FakeClock()
        throttle = Throttle(1.0, clock=clock)
        assert throttle.ready()
        throttle.reset()
        assert throttle.ready()


# ----------------------------------------------------------------------
# HeartbeatWriter: the iotls-health-stream/1 contract
# ----------------------------------------------------------------------
class TestHeartbeatWriter:
    def _records(self, path):
        return [json.loads(line) for line in path.read_text().splitlines() if line]

    def test_stream_shape(self, tmp_path):
        path = tmp_path / "run.health.jsonl"
        writer = HeartbeatWriter(path, metadata={"label": "t"})
        writer.heartbeat({"done": 1})
        writer.heartbeat({"done": 2})
        writer.close(summary={"done": 2})
        records = self._records(path)
        assert [r["kind"] for r in records] == [
            "header",
            "heartbeat",
            "heartbeat",
            "summary",
        ]
        assert records[0]["schema"] == HEALTH_STREAM_SCHEMA
        assert records[0]["metadata"] == {"label": "t"}

    def test_seq_strictly_monotonic_from_one(self, tmp_path):
        path = tmp_path / "h.jsonl"
        writer = HeartbeatWriter(path)
        for done in range(5):
            writer.heartbeat({"done": done})
        writer.close(summary={"done": 4})
        seqs = [r["seq"] for r in self._records(path) if r["kind"] == "heartbeat"]
        assert seqs == [1, 2, 3, 4, 5]

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "h.jsonl"
        writer = HeartbeatWriter(path)
        writer.heartbeat({"done": 1})
        writer.close(summary={"done": 1})
        writer.close(summary={"done": 99})
        summaries = [r for r in self._records(path) if r["kind"] == "summary"]
        assert len(summaries) == 1
        assert summaries[0]["done"] == 1


# ----------------------------------------------------------------------
# ProgressReporter
# ----------------------------------------------------------------------
class TestProgressReporter:
    def test_rates_and_eta_with_fake_clock(self):
        clock = FakeClock()
        # A huge throttle interval: only the first advance emits, so the
        # explicit snapshot below owns the whole rate window after it.
        reporter = ProgressReporter(
            label="gen",
            total=100,
            interval=1000.0,
            throttle=Throttle(1000.0, clock=clock),
            clock=clock,
        )
        reporter.advance(10)  # first-call-passes heartbeat at t=0
        clock.tick(1.0)
        reporter.advance(10, stage="trace.device")
        entry = reporter.snapshot(reason="test")
        assert entry["done"] == 20
        # 10 units in the 1s window since the t=0 emission.
        assert entry["rate"] == pytest.approx(10.0, abs=0.5)
        assert entry["stages"] == {"trace.device": 1}
        assert entry["eta_seconds"] is not None

    def test_throttle_limits_emissions(self):
        clock = FakeClock()
        lines: list[str] = []
        reporter = ProgressReporter(
            label="gen",
            interval=1.0,
            throttle=Throttle(1.0, clock=clock),
            stream=lines.append,
            clock=clock,
        )
        for _ in range(100):
            reporter.advance(1)
        assert len(lines) == 1  # only the first call passed the throttle
        clock.tick(1.5)
        reporter.advance(1)
        assert len(lines) == 2

    def test_finish_emits_summary_and_is_idempotent(self, tmp_path):
        path = tmp_path / "h.jsonl"
        reporter = ProgressReporter(
            label="gen", interval=0.0, heartbeat=HeartbeatWriter(path)
        )
        reporter.advance(3, stage="s")
        reporter.finish()
        reporter.finish()
        assert reporter.summary["done"] == 3
        assert reporter.summary["stages"] == {"s": 1}
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert sum(1 for r in records if r["kind"] == "summary") == 1

    def test_render_progress_line(self):
        line = render_progress_line(
            {
                "label": "trace",
                "done": 1234,
                "rate": 100.0,
                "ewma_rate": 90.0,
                "eta_seconds": 12.0,
                "stages": {"trace.device": 7},
            }
        )
        assert "progress[trace]" in line
        assert "1,234 done" in line
        assert "trace.device=7" in line

    def test_short_run_still_produces_a_heartbeat(self, tmp_path):
        # The Throttle's first-call-passes rule: even a run far shorter
        # than the interval leaves evidence in the stream.
        path = tmp_path / "h.jsonl"
        reporter = ProgressReporter(
            label="gen", interval=3600.0, heartbeat=HeartbeatWriter(path)
        )
        reporter.advance(1)
        reporter.finish()
        kinds = [json.loads(line)["kind"] for line in path.read_text().splitlines()]
        assert kinds.count("heartbeat") >= 1


# ----------------------------------------------------------------------
# ResourceSampler: reference-counted tracemalloc
# ----------------------------------------------------------------------
class TestResourceSampler:
    def test_summary_shape(self):
        with ResourceSampler() as sampler:
            list(range(10_000))
        summary = sampler.summary()
        assert summary["schema"] == RESOURCE_SUMMARY_SCHEMA
        assert summary["peak_rss_kib"] > 0
        assert summary["peak_traced_bytes"] > 0
        assert summary["stages"][0]["stage"] == "start"
        assert summary["stages"][-1]["stage"] == "stop"

    def test_hold_released_after_stop(self):
        assert tracemalloc_holds() == 0
        sampler = ResourceSampler().start()
        assert tracemalloc_holds() == 1
        assert tracemalloc.is_tracing()
        sampler.stop()
        assert tracemalloc_holds() == 0
        assert not tracemalloc.is_tracing()

    def test_nested_samplers_share_one_activation(self):
        outer = ResourceSampler().start()
        inner = ResourceSampler().start()
        assert tracemalloc_holds() == 2
        inner.stop()
        assert tracemalloc.is_tracing()  # outer's hold keeps it alive
        outer.stop()
        assert not tracemalloc.is_tracing()

    def test_error_path_releases_hold(self):
        with pytest.raises(RuntimeError):
            with ResourceSampler():
                raise RuntimeError("boom")
        assert tracemalloc_holds() == 0
        assert not tracemalloc.is_tracing()

    def test_does_not_stop_tracing_it_did_not_start(self):
        tracemalloc.start()
        try:
            with ResourceSampler():
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler().start()
        sampler.stop()
        sampler.stop()
        assert tracemalloc_holds() == 0

    def test_gauges_folded_into_registry(self):
        runtime = telemetry.configure(enabled=True)
        with ResourceSampler(registry=runtime.registry):
            pass
        assert runtime.registry.get("iotls_resource_peak_rss_kib") is not None
        assert runtime.registry.get("iotls_resource_cpu_seconds") is not None


# ----------------------------------------------------------------------
# ProgressSink: record-level progress on streaming paths
# ----------------------------------------------------------------------
class TestProgressSink:
    def test_batches_advances(self):
        advances: list[int] = []

        class Spy:
            def advance(self, n, **kwargs):
                advances.append(n)

        sink = ProgressSink(Spy(), batch=10)
        for _ in range(25):
            sink.add(object())  # the sink only counts; record content is opaque
        sink.flush()
        assert advances == [10, 10, 5]
        assert sink.records_seen == 25

    def test_revocation_events_not_counted(self):
        class Spy:
            def advance(self, n, **kwargs):
                raise AssertionError("revocation events must not advance progress")

        sink = ProgressSink(Spy(), batch=10)
        assert sink.add_revocation_event(object()) is None
        assert sink.records_seen == 0


# ----------------------------------------------------------------------
# Cross-worker span stitching
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_derive_is_deterministic(self):
        a = TraceContext.derive("trace", "seed", 2, parent_path="x;y")
        b = TraceContext.derive("trace", "seed", 2, parent_path="x;y")
        assert a == b
        assert a.parent_path == "x;y"
        assert len(a.run_id) == 16  # blake2s digest_size=8, hex

    def test_derive_varies_with_parts(self):
        assert (
            TraceContext.derive("trace", 1).run_id
            != TraceContext.derive("trace", 2).run_id
        )

    def test_propagation_context_snapshots_open_path(self):
        runtime = telemetry.configure(enabled=True)
        with runtime.tracer.span("outer"):
            with runtime.tracer.span("dispatch"):
                context = runtime.tracer.propagation_context("seed")
        assert context.parent_path == "outer;dispatch"

    def test_disabled_tracer_yields_none(self):
        runtime = telemetry.get()
        assert runtime.tracer.propagation_context("seed") is None


class TestSpanStitching:
    def _parallel_profile(self) -> Profiler:
        from repro.longitudinal import PassiveTraceGenerator

        telemetry.configure(enabled=True)
        PassiveTraceGenerator(scale=1, seed="stitch").generate(workers=2)
        return Profiler.from_runtime(telemetry.get())

    def test_worker_spans_reparent_under_dispatch(self):
        profiler = self._parallel_profile()
        paths = {stat.path for stat in profiler.paths()}
        assert "trace.generate;parallel.dispatch" in paths
        assert "trace.generate;parallel.dispatch;shard.run" in paths
        assert "trace.generate;parallel.dispatch;shard.run;trace.device" in paths

    def test_shard_skew_attributed(self):
        profiler = self._parallel_profile()
        skew = profiler.shard_skew()
        assert skew is not None
        assert skew["workers"] == 2
        assert skew["max_over_mean"] >= 1.0
        assert skew["slowest_worker"] in (0, 1)

    def test_merge_is_order_independent(self):
        """Satellite: out-of-order worker merges produce identical trees."""
        runtime = telemetry.configure(enabled=True)
        with runtime.tracer.span("run"):
            with runtime.tracer.span("parallel.dispatch"):
                context = runtime.tracer.propagation_context("seed")

        def worker_payload(worker: int) -> dict:
            worker_runtime = TelemetryRuntime(enabled=True)
            with worker_runtime.tracer.span("shard.run", worker=worker):
                with worker_runtime.tracer.span("trace.device", device=f"d{worker}"):
                    worker_runtime.registry.counter("test_units_total").inc(worker + 1)
            return worker_runtime.export_worker_state(worker, context=context)

        payloads = [worker_payload(0), worker_payload(1), worker_payload(2)]

        def stitched(order):
            runtime_n = TelemetryRuntime(enabled=True)
            runtime_n.merge_worker_states([payloads[i] for i in order])
            profiler = Profiler.from_runtime(runtime_n)
            tree = sorted((stat.path, stat.calls) for stat in profiler.paths())
            shards = sorted(profiler.shards.items())
            total = runtime_n.registry.get("test_units_total").total()
            return tree, shards, total

        forward = stitched([0, 1, 2])
        reversed_ = stitched([2, 1, 0])
        shuffled = stitched([1, 2, 0])
        assert forward == reversed_ == shuffled
        paths = [path for path, _ in forward[0]]
        assert "run;parallel.dispatch;shard.run;trace.device" in paths
        assert forward[2] == 6  # 1 + 2 + 3: counters add across workers


# ----------------------------------------------------------------------
# Manifest parity: the tentpole acceptance criterion
# ----------------------------------------------------------------------
class TestManifestParity:
    """Progress/heartbeat/resource sampling never perturbs manifests."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_with_and_without_progress(self, tmp_path, workers, capsys):
        # Baseline uses --telemetry because --progress implies telemetry;
        # the comparison isolates the health layer itself.
        base = tmp_path / f"base{workers}"
        status = main(
            [
                "trace", "--scale", "1", "--seed", "health-parity",
                "--workers", str(workers), "--telemetry",
                "--manifest", str(base / "manifest.json"),
            ]
        )
        assert status == 0
        withp = tmp_path / f"progress{workers}"
        status = main(
            [
                "trace", "--scale", "1", "--seed", "health-parity",
                "--workers", str(workers), "--progress",
                "--heartbeat-out", str(withp / "run.health.jsonl"),
                "--manifest", str(withp / "manifest.json"),
            ]
        )
        assert status == 0
        capsys.readouterr()
        assert (
            (base / "manifest.json").read_bytes()
            == (withp / "manifest.json").read_bytes()
        )

    def test_heartbeat_stream_written_and_valid(self, tmp_path, capsys):
        path = tmp_path / "run.health.jsonl"
        status = main(
            [
                "trace", "--scale", "1", "--workers", "2",
                "--heartbeat-out", str(path),
            ]
        )
        assert status == 0
        capsys.readouterr()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == HEALTH_STREAM_SCHEMA
        kinds = [r["kind"] for r in records]
        assert kinds.count("heartbeat") >= 1
        assert kinds[-1] == "summary"
        assert records[-1]["done"] > 0

    def test_api_returns_health_summary(self, tmp_path):
        result = api.run_trace(
            api.RunConfig(scale=1, progress=False),
            heartbeat_path=tmp_path / "h.jsonl",
        )
        assert result.health is not None
        assert result.health["done"] == len(result.capture.records)
        assert result.health["resources"]["peak_rss_kib"] > 0

    def test_health_none_without_progress(self):
        result = api.run_trace(api.RunConfig(scale=1))
        assert result.health is None


# ----------------------------------------------------------------------
# SLOs and the bench trajectory
# ----------------------------------------------------------------------
def _entry(benchmark: str, **metrics) -> dict:
    entry = {"benchmark": benchmark, "seconds": 1.0, "git_rev": "abc", "date": "d"}
    entry.update(metrics)
    return entry


class TestSloPolicy:
    def test_committed_policy_loads(self):
        slos = load_slo_policy("tools/slo.json")
        assert all(slo.level in ("advisory", "blocking") for slo in slos)
        assert any(slo.level == "blocking" for slo in slos)

    @pytest.mark.parametrize(
        "document",
        [
            {"schema": "wrong/1", "slos": []},
            {"schema": SLO_SCHEMA, "slos": []},
            {"schema": SLO_SCHEMA, "slos": [{"name": "x"}]},
            {
                "schema": SLO_SCHEMA,
                "slos": [
                    {
                        "name": "x", "benchmark": "b", "metric": "m",
                        "op": "~=", "threshold": 1,
                    }
                ],
            },
            {
                "schema": SLO_SCHEMA,
                "slos": [
                    {
                        "name": "x", "benchmark": "b", "metric": "m",
                        "op": "<=", "threshold": "fast",
                    }
                ],
            },
        ],
    )
    def test_bad_policies_rejected(self, tmp_path, document):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(document))
        with pytest.raises(SloPolicyError):
            load_slo_policy(path)

    def test_evaluation_pass_fail_skip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SLO_SCHEMA,
                    "slos": [
                        {
                            "name": "ceiling", "benchmark": "b", "metric": "m",
                            "op": "<=", "threshold": 10, "level": "blocking",
                        },
                        {
                            "name": "floor", "benchmark": "b", "metric": "m",
                            "op": ">=", "threshold": 100, "level": "advisory",
                        },
                        {
                            "name": "absent", "benchmark": "b", "metric": "nope",
                            "op": "<=", "threshold": 1,
                        },
                    ],
                }
            )
        )
        verdicts = evaluate_slos([_entry("b", m=5)], load_slo_policy(path))
        by_name = {v["slo"]: v for v in verdicts}
        assert by_name["ceiling"]["status"] == "pass"
        assert by_name["floor"]["status"] == "fail"
        assert by_name["floor"]["blocking"] is False
        assert by_name["absent"]["status"] == "skip"

    def test_latest_entry_wins(self):
        slos = load_slo_policy("tools/slo.json")
        entries = [
            _entry("stream_trace", peak_mib=1000.0),
            _entry("stream_trace", peak_mib=2.0),
        ]
        verdicts = evaluate_slos(entries, slos)
        heap = next(v for v in verdicts if v["slo"] == "stream-heap-ceiling")
        assert heap["status"] == "pass"
        assert heap["value"] == 2.0

    def test_trend_report_shape(self):
        entries = [
            _entry("b", seconds=2.0, records_per_second=50.0),
            _entry("b", seconds=1.0, records_per_second=99.0),
        ]
        for i, entry in enumerate(entries):
            entry["seconds"] = 2.0 - i
        report = trend_report(entries)
        assert report["benchmarks"]["b"]["runs"] == 2
        assert report["benchmarks"]["b"]["latest_metrics"]["records_per_second"] == 99.0


class TestBenchReportCli:
    def _history(self, tmp_path, entries) -> str:
        path = tmp_path / "history.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in entries) + "\n")
        return str(path)

    def test_ok_exit_zero(self, tmp_path, capsys):
        history = self._history(tmp_path, [_entry("stream_trace", peak_mib=2.0)])
        status = main(["bench-report", "--history", history, "--slo", "tools/slo.json"])
        assert status == 0
        assert "stream-heap-ceiling" in capsys.readouterr().out

    def test_blocking_failure_exit_one(self, tmp_path, capsys):
        history = self._history(tmp_path, [_entry("stream_trace", peak_mib=9000.0)])
        status = main(["bench-report", "--history", history, "--slo", "tools/slo.json"])
        capsys.readouterr()
        assert status == 1

    def test_advisory_failure_exit_zero(self, tmp_path, capsys):
        # peak_rss_kib above its ceiling fails only the advisory RSS SLO.
        history = self._history(
            tmp_path,
            [_entry("stream_trace", peak_mib=2.0, peak_rss_kib=3 * 1024 * 1024)],
        )
        status = main(["bench-report", "--history", history, "--slo", "tools/slo.json"])
        capsys.readouterr()
        assert status == 0

    def test_throughput_floor_is_blocking(self, tmp_path, capsys):
        # The streaming records/s floor gates for real now: a collapsed
        # throughput reading must fail the report, not just warn.
        history = self._history(
            tmp_path,
            [_entry("stream_trace", peak_mib=2.0, records_per_second=1.0)],
        )
        status = main(["bench-report", "--history", history, "--slo", "tools/slo.json"])
        capsys.readouterr()
        assert status == 1

    def test_bad_policy_exit_two(self, tmp_path, capsys):
        history = self._history(tmp_path, [_entry("b")])
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        status = main(["bench-report", "--history", history, "--slo", str(bad)])
        capsys.readouterr()
        assert status == 2

    def test_json_export(self, tmp_path, capsys):
        history = self._history(tmp_path, [_entry("b")])
        out = tmp_path / "report.json"
        status = main(["bench-report", "--history", history, "--json", str(out)])
        capsys.readouterr()
        assert status == 0
        document = json.loads(out.read_text())
        assert "trend" in document and "slo_verdicts" in document
