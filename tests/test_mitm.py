"""Tests for the attacker toolbox, interception proxy and passthrough."""

from __future__ import annotations

import pytest

from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.mitm import (
    ATTACKER_DOMAIN,
    AttackMode,
    AttackerToolbox,
    InterceptionProxy,
    PassthroughResponder,
    VersionProbeResponder,
)
from repro.pki import RootStore, ValidationErrorCode, utc, validate_chain
from repro.tls import ClientHello, ProtocolVersion, sni

WHEN = utc(2021, 3)
HOST = "victim.example.com"


@pytest.fixture()
def toolbox(simple_ca):
    return AttackerToolbox(issuing_ca=simple_ca)


@pytest.fixture()
def victim_store(simple_ca):
    return RootStore.from_certificates("victim", [simple_ca.certificate])


def _hello(hostname=HOST) -> ClientHello:
    return ClientHello(
        legacy_version=ProtocolVersion.TLS_1_2,
        cipher_codes=FS_MODERN + RSA_PLAIN,
        extensions=(sni(hostname),),
    )


class TestForgedCredentials:
    def test_self_signed_fails_as_unknown_ca(self, toolbox, victim_store):
        chain = toolbox.self_signed_for(HOST)
        result = validate_chain(list(chain), victim_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.UNKNOWN_CA

    def test_wrong_hostname_chain_is_otherwise_valid(self, toolbox, victim_store):
        chain = toolbox.wrong_hostname_chain()
        ok_for_attacker = validate_chain(
            list(chain), victim_store, when=WHEN, hostname=ATTACKER_DOMAIN
        )
        assert ok_for_attacker.ok
        wrong = validate_chain(list(chain), victim_store, when=WHEN, hostname=HOST)
        assert wrong.code is ValidationErrorCode.HOSTNAME_MISMATCH
        relaxed = validate_chain(
            list(chain), victim_store, when=WHEN, hostname=HOST, check_hostname=False
        )
        assert relaxed.ok

    def test_invalid_basic_constraints_chain(self, toolbox, victim_store):
        chain = toolbox.invalid_basic_constraints_chain(HOST)
        strict = validate_chain(list(chain), victim_store, when=WHEN, hostname=HOST)
        assert strict.code is ValidationErrorCode.INVALID_BASIC_CONSTRAINTS
        relaxed = validate_chain(
            list(chain),
            victim_store,
            when=WHEN,
            hostname=HOST,
            check_basic_constraints=False,
        )
        assert relaxed.ok  # hostname matches; only the CA bit is wrong

    def test_spoofed_ca_triggers_bad_signature(self, toolbox, victim_store, simple_ca):
        chain = toolbox.spoofed_ca_chain(simple_ca.certificate, HOST)
        result = validate_chain(list(chain), victim_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.BAD_SIGNATURE

    def test_unknown_ca_chain_triggers_unknown_ca(self, toolbox, victim_store):
        chain = toolbox.unknown_ca_chain(HOST)
        result = validate_chain(list(chain), victim_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.UNKNOWN_CA


class TestInterceptionProxy:
    def test_incomplete_mode_sends_nothing(self, toolbox):
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.INCOMPLETE_HANDSHAKE)
        response = proxy.respond(_hello(), when=WHEN)
        assert response.incomplete

    def test_proxy_negotiates_anything_offered(self, toolbox):
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.NO_VALIDATION)
        response = proxy.respond(_hello(), when=WHEN)
        assert response.server_hello is not None
        assert response.certificate_chain[0].subject.common_name == HOST

    def test_chain_targets_sni_hostname(self, toolbox):
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.NO_VALIDATION)
        response = proxy.respond(_hello("other.example.org"), when=WHEN)
        assert "other.example.org" in response.certificate_chain[0].subject_alt_names

    def test_observed_hellos_logged(self, toolbox):
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.WRONG_HOSTNAME)
        proxy.respond(_hello(), when=WHEN)
        proxy.respond(_hello(), when=WHEN)
        assert len(proxy.observed_hellos) == 2

    def test_spoofed_ca_requires_target(self, toolbox):
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.SPOOFED_CA)
        with pytest.raises(ValueError):
            proxy.respond(_hello(), when=WHEN)


class TestVersionProbe:
    def test_negotiates_exactly_the_probe_version(self, testbed):
        device = testbed.device("Wemo Plug")
        destination = device.profile.destinations[0]
        genuine = testbed.server_for(destination)
        responder = VersionProbeResponder(
            version=ProtocolVersion.TLS_1_0, chain=genuine.chain
        )
        connection = device.connect_destination(destination, responder)
        assert connection.established
        assert connection.attempt.final.established_version is ProtocolVersion.TLS_1_0

    def test_unacceptable_version_yields_no_hello(self, testbed):
        device = testbed.device("Switchbot Hub")  # TLS 1.2 only
        destination = device.profile.destinations[0]
        genuine = testbed.server_for(destination)
        responder = VersionProbeResponder(
            version=ProtocolVersion.TLS_1_0, chain=genuine.chain
        )
        connection = device.connect_destination(destination, responder)
        assert not connection.established


class TestPassthroughResponder:
    def test_routes_by_sni(self, toolbox, testbed):
        device = testbed.device("D-Link Camera")
        destination = device.profile.destinations[0]
        genuine = testbed.server_for(destination)
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.NO_VALIDATION)
        responder = PassthroughResponder(
            attack_proxy=proxy,
            genuine=genuine,
            passthrough_hostnames=frozenset({destination.hostname}),
        )
        passed = responder.respond(_hello(destination.hostname), when=WHEN)
        assert passed.certificate_chain == genuine.chain
        intercepted = responder.respond(_hello("somewhere.else"), when=WHEN)
        assert intercepted.certificate_chain[0].is_self_signed
        assert responder.passed_through == [destination.hostname]
        assert responder.intercepted == ["somewhere.else"]
