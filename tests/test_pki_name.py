"""Unit tests for distinguished-name semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.pki import DistinguishedName


class TestConstruction:
    def test_requires_common_name(self):
        with pytest.raises(ValueError):
            DistinguishedName(common_name="")

    def test_rfc4514_rendering_order(self):
        name = DistinguishedName(
            common_name="Root CA", organizational_unit="PKI", organization="Acme", country="US"
        )
        assert name.rfc4514() == "CN=Root CA,OU=PKI,O=Acme,C=US"

    def test_rfc4514_omits_empty_attributes(self):
        assert DistinguishedName(common_name="X").rfc4514() == "CN=X"


class TestMatching:
    def test_exact_match(self):
        a = DistinguishedName(common_name="CA", organization="Org")
        b = DistinguishedName(common_name="CA", organization="Org")
        assert a.matches(b)

    def test_case_insensitive_match(self):
        a = DistinguishedName(common_name="Root CA", organization="ACME")
        b = DistinguishedName(common_name="root ca", organization="acme")
        assert a.matches(b)
        assert a.normalized_key() == b.normalized_key()

    def test_whitespace_normalisation(self):
        a = DistinguishedName(common_name="Root   CA")
        b = DistinguishedName(common_name="Root CA")
        assert a.matches(b)

    def test_mismatch_on_any_attribute(self):
        base = DistinguishedName(common_name="CA", organization="Org", country="US")
        assert not base.matches(DistinguishedName(common_name="CA", organization="Org", country="DE"))
        assert not base.matches(DistinguishedName(common_name="CB", organization="Org", country="US"))

    @given(
        st.text(min_size=1, max_size=30).filter(str.strip),
        st.text(max_size=20),
    )
    def test_matches_is_reflexive_and_symmetric(self, cn, org):
        a = DistinguishedName(common_name=cn, organization=org)
        b = DistinguishedName(common_name=cn, organization=org)
        assert a.matches(a)
        assert a.matches(b) == b.matches(a)


def test_hashable_and_usable_as_dict_key():
    a = DistinguishedName(common_name="CA")
    assert {a: 1}[DistinguishedName(common_name="CA")] == 1
