"""The ``repro.api`` run facade: typed configs, results, and errors.

These tests pin the facade's contract: the CLI is a thin wrapper, so
everything a subcommand can do must be reachable (and typed) here --
including the failure modes the CLI renders as exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.api import (
    DeviceNotProbeableError,
    RunConfig,
    RunError,
    UnknownDeviceError,
    run_audit,
    run_pcap,
    run_probe,
    run_trace,
)
from repro.analysis import export as analysis_export


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.configure(enabled=False)
    yield
    telemetry.configure(enabled=False)


class TestRunTrace:
    def test_streaming_and_materialised_agree(self):
        config = RunConfig(scale=1, seed="api-parity", telemetry=True)
        materialised = run_trace(config)
        streamed = run_trace(RunConfig(scale=1, seed="api-parity", telemetry=True, stream=True))
        assert materialised.manifest_digest == streamed.manifest_digest
        assert materialised.capture is not None
        assert streamed.capture is None
        assert streamed.analysis.flow_records == materialised.analysis.flow_records
        assert streamed.analysis.connections == materialised.analysis.connections
        assert (
            streamed.analysis.adoption_events == materialised.analysis.adoption_events
        )

    def test_rejects_streaming_json_document(self, tmp_path):
        with pytest.raises(ValueError):
            run_trace(RunConfig(stream=True), json_path=tmp_path / "trace.json")

    def test_stream_path_writes_jsonl_artifact(self, tmp_path):
        result = run_trace(
            RunConfig(scale=1), stream_path=tmp_path / "trace.jsonl"
        )
        path = result.artifacts["records_jsonl"]
        assert path.exists()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["metadata"]["generator"] == "iotls trace"
        assert result.analysis.dataset.device_count == 40

    def test_materialised_json_artifact(self, tmp_path):
        result = run_trace(RunConfig(scale=1), json_path=tmp_path / "trace.json")
        payload = json.loads(result.artifacts["records_json"].read_text())
        assert payload["metadata"]["flow_records"] == result.analysis.flow_records
        assert len(payload["records"]) == result.analysis.flow_records


class TestRunProbe:
    def test_unknown_device(self):
        with pytest.raises(UnknownDeviceError) as excinfo:
            run_probe("Nonexistent Toaster")
        assert excinfo.value.device == "Nonexistent Toaster"
        assert isinstance(excinfo.value, RunError)

    def test_non_rebootable_device(self):
        with pytest.raises(DeviceNotProbeableError) as excinfo:
            run_probe("Samsung Fridge")
        assert "reboot" in excinfo.value.reason

    def test_passive_only_device(self):
        with pytest.raises(DeviceNotProbeableError) as excinfo:
            run_probe("Samsung TV")
        assert "passive-only" in excinfo.value.reason

    def test_amenable_device_writes_json(self, tmp_path):
        json_path = tmp_path / "probe.json"
        result = run_probe("Wink Hub 2", json_path=json_path)
        assert result.amenable
        assert result.artifacts["probe_json"] == json_path
        assert json.loads(json_path.read_text())["device"] == "Wink Hub 2"

    def test_non_amenable_device_skips_json(self, tmp_path):
        json_path = tmp_path / "probe.json"
        result = run_probe("Apple TV", json_path=json_path)
        assert not result.amenable
        assert result.artifacts == {}
        assert not json_path.exists()


class TestRunAudit:
    def test_headline_counts_and_manifest(self, tmp_path):
        json_path = tmp_path / "audit.json"
        result = run_audit(
            RunConfig(include_passthrough=False), json_path=json_path
        )
        assert result.results.vulnerable_device_count == 11
        assert len(result.results.amenable_probe_reports) == 8
        assert result.manifest["config"]["params"] == {"include_passthrough": False}
        assert len(result.manifest_digest) == 32
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["vulnerable_devices"] == 11


class TestRunPcap:
    def test_pcap_export(self, tmp_path):
        result = run_pcap(RunConfig(scale=1), out=tmp_path / "trace.pcap", limit=10)
        assert result.packets_written == 10
        assert result.path.exists()
        assert result.size_bytes == result.path.stat().st_size


class TestRemovedExportAliases:
    """The PR-4 deprecation cycle is complete: the aliases are gone."""

    @pytest.mark.parametrize("name", ["campaign_to_dict", "probe_report_to_dict"])
    def test_to_dict_aliases_removed(self, name):
        import repro.analysis

        assert not hasattr(analysis_export, name)
        assert name not in analysis_export.__all__
        assert name not in repro.analysis.__all__
        with pytest.raises(AttributeError):
            getattr(repro.analysis, name)

    def test_document_names_remain(self, campaign_results):
        document = analysis_export.campaign_to_document(campaign_results)
        assert document["summary"]["vulnerable_devices"] == 11
        probe = analysis_export.probe_report_to_document(campaign_results.probes[0])
        assert probe["device"] == campaign_results.probes[0].device


class TestCommandRegistry:
    """The dispatchable surface: execute() and the CommandSpec table."""

    def test_registry_names_every_run_command(self):
        from repro import api

        assert api.command_names() == (
            "audit",
            "check",
            "pcap",
            "probe",
            "report",
            "trace",
        )

    def test_unknown_command_is_a_typed_run_error(self):
        from repro import api

        with pytest.raises(api.UnknownCommandError) as excinfo:
            api.execute("frobnicate")
        assert isinstance(excinfo.value, RunError)
        assert excinfo.value.command == "frobnicate"

    def test_execute_matches_wrapper(self, tmp_path):
        from repro import api

        config = RunConfig(scale=1, seed="registry-parity", ledger=None)
        via_registry = api.execute("trace", config)
        via_wrapper = run_trace(config)
        assert via_registry.manifest_digest == via_wrapper.manifest_digest

    def test_execute_rejects_unknown_extras(self):
        from repro import api

        with pytest.raises(TypeError, match="unexpected keyword"):
            api.execute("trace", RunConfig(ledger=None), bogus_path="x")

    def test_probe_wrapper_fills_request_device(self):
        from repro import api

        result = api.execute(
            "probe", RunConfig(device="Google Home Mini", ledger=None)
        )
        wrapped = run_probe("Google Home Mini", RunConfig(ledger=None))
        assert result.device == wrapped.device
        assert result.amenable == wrapped.amenable

    def test_stream_role_marks_trace_only(self):
        from repro import api

        assert api.command_spec("trace").stream_role == "records_jsonl"
        for name in ("audit", "probe", "report", "pcap", "check"):
            assert api.command_spec(name).stream_role is None

    def test_probe_and_check_are_not_cacheable(self):
        from repro import api

        assert not api.command_spec("probe").cacheable
        assert not api.command_spec("check").cacheable
        assert api.command_spec("trace").cacheable


class TestRunRequestSplit:
    """RunRequest (serializable) + ExecutionOptions (host-local)."""

    def test_document_round_trip(self):
        from repro.api import RunRequest

        request = RunRequest(
            scale=3, seed="wire", flow_cap=7, device="LG TV", limit=5
        )
        assert RunRequest.from_document(request.to_document()) == request
        assert RunRequest.from_document(RunRequest().to_document()) == RunRequest()

    def test_document_omits_unset_optionals(self):
        from repro.api import RunRequest

        document = RunRequest(scale=2, seed="wire").to_document()
        assert document == {
            "scale": 2,
            "seed": "wire",
            "include_passthrough": True,
        }

    def test_from_document_rejects_unknown_fields(self):
        from repro.api import RunRequest

        with pytest.raises(ValueError, match="unknown run-request field"):
            RunRequest.from_document({"scale": 1, "workers": 4})

    def test_from_document_rejects_mistyped_fields(self):
        from repro.api import RunRequest

        with pytest.raises(ValueError, match="'scale' must be"):
            RunRequest.from_document({"scale": "big"})
        with pytest.raises(ValueError, match="must be an integer"):
            RunRequest.from_document({"scale": True})
        with pytest.raises(ValueError, match="must be a JSON object"):
            RunRequest.from_document(["scale", 1])

    def test_config_splits_and_merges_losslessly(self):
        from repro.api import ExecutionOptions, RunConfig

        config = RunConfig(
            scale=5,
            seed="split",
            workers=3,
            warm_pool=False,
            flow_cap=9,
            ledger=None,
            device="LG TV",
            limit=2,
        )
        assert RunConfig.merge(config.request, config.options) == config
        assert config.options == ExecutionOptions(
            workers=3, warm_pool=False, ledger=None
        )

    def test_request_digest_matches_recorded_config_digest(self, tmp_path):
        """The wire request hashes to exactly what a real run records."""
        from repro import api, telemetry

        ledger = tmp_path / "ledger.jsonl"
        config = RunConfig(scale=1, seed="digest-parity", ledger=ledger)
        run_trace(config)
        (entry,) = telemetry.load_ledger(ledger)
        assert entry["config_digest"] == api.request_digest(
            "trace", config.request
        )
        # A request rebuilt from its own wire document hashes the same.
        rebuilt = api.RunRequest.from_document(config.request.to_document())
        assert api.request_digest("trace", rebuilt) == entry["config_digest"]
