"""The resident fleet service: HTTP contract, cache, queue, coalescing.

Each test boots a real :class:`~repro.serve.FleetService` on an
ephemeral port inside its own event loop and speaks actual HTTP/1.1 at
it (including chunked-transfer decoding), so the wire contract the
README's curl example relies on is what gets pinned -- not an internal
shortcut around it.
"""

from __future__ import annotations

import asyncio
import json
import threading
from types import SimpleNamespace

import pytest

from repro import api, telemetry
from repro.serve import FleetService, ServeConfig
from repro.serve.http import HttpError, HttpRequest
from repro.telemetry import AccessLog, ledger


def serve_config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(
        port=0,
        ledger=tmp_path / "ledger.jsonl",
        artifact_dir=tmp_path / "artifacts",
        access_log=tmp_path / "access.jsonl",
        heartbeat_interval=0.05,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def request(
    port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, dict[str, str], bytes]:
    """A real HTTP/1.1 exchange, chunked transfer decoding included."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    if payload:
        head += f"Content-Length: {len(payload)}\r\n"
    writer.write(head.encode() + b"\r\n" + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding") == "chunked":
        chunks = []
        while True:
            size = int((await reader.readline()).strip(), 16)
            if size == 0:
                await reader.readline()
                break
            chunks.append(await reader.readexactly(size))
            await reader.readexactly(2)  # the chunk's trailing CRLF
        content = b"".join(chunks)
    elif "content-length" in headers:
        content = await reader.readexactly(int(headers["content-length"]))
    else:
        content = await reader.read()
    writer.close()
    await writer.wait_closed()
    return status, headers, content


async def with_service(config: ServeConfig, scenario):
    service = FleetService(config)
    await service.start()
    try:
        return await scenario(service)
    finally:
        await service.stop()


TRACE_BODY = {"command": "trace", "scale": 1, "seed": "serve-test"}


class TestHttpFraming:
    def test_request_json_rejects_garbage(self):
        bad = HttpRequest(method="POST", path="/runs", body=b"{nope")
        with pytest.raises(HttpError) as excinfo:
            bad.json()
        assert excinfo.value.status == 400

    def test_endpoints_and_methods(self, tmp_path):
        async def scenario(service):
            port = service.port
            status, _, body = await request(port, "GET", "/healthz")
            assert (status, json.loads(body)) == (200, {"status": "ok"})
            status, _, _ = await request(port, "POST", "/healthz", {})
            assert status == 405
            status, _, _ = await request(port, "GET", "/runs")
            assert status == 405
            status, _, _ = await request(port, "GET", "/nowhere")
            assert status == 404
            status, _, body = await request(port, "GET", "/status")
            document = json.loads(body)
            assert document["schema"] == "iotls-serve-status/1"
            assert document["resident"]["devices"] == 40
            assert document["queue"]["capacity"] == service.config.queue_size
            return True

        assert asyncio.run(with_service(serve_config(tmp_path), scenario))

    def test_run_request_validation(self, tmp_path):
        async def scenario(service):
            port = service.port
            cases = [
                ({"scale": 1}, 400),  # no command
                ({"command": "frobnicate"}, 400),
                ({"command": "trace", "workers": 4}, 400),  # host-local field
                ({"command": "trace", "scale": "big"}, 400),
                ({"command": "probe"}, 400),  # no device
                ({"command": "probe", "device": "No Such Device"}, 404),
            ]
            for body, expected in cases:
                status, _, content = await request(port, "POST", "/runs", body)
                assert status == expected, (body, content)
                assert "error" in json.loads(content)
            return True

        assert asyncio.run(with_service(serve_config(tmp_path), scenario))


class TestCacheContract:
    def test_miss_then_hit_identical_bytes_one_ledger_entry(self, tmp_path):
        async def scenario(service):
            port = service.port
            status1, headers1, body1 = await request(port, "POST", "/runs", TRACE_BODY)
            status2, headers2, body2 = await request(port, "POST", "/runs", TRACE_BODY)
            assert (status1, status2) == (200, 200)
            assert headers1["x-iotls-cache"] == "miss"
            assert headers2["x-iotls-cache"] == "hit"
            assert (
                headers1["x-iotls-manifest-digest"]
                == headers2["x-iotls-manifest-digest"]
            )
            assert body1 == body2
            return headers1

        headers = asyncio.run(with_service(serve_config(tmp_path), scenario))
        entries = telemetry.load_ledger(tmp_path / "ledger.jsonl")
        # The hit computed nothing: one run, one entry.
        assert [entry["command"] for entry in entries] == ["trace"]
        assert entries[0]["manifest_digest"] == headers["x-iotls-manifest-digest"]

    def test_served_stream_matches_direct_single_worker_run(self, tmp_path):
        async def scenario(service):
            _, headers, body = await request(service.port, "POST", "/runs", TRACE_BODY)
            return headers, body

        headers, body = asyncio.run(with_service(serve_config(tmp_path), scenario))
        # Manifests fold in the artifact *basename* (path-free
        # provenance), so the byte-identical direct equivalent uses the
        # service's content-addressed name -- in a different directory.
        config = api.RunConfig(scale=1, seed="serve-test", workers=1, ledger=None)
        digest = api.request_digest("trace", config.request)
        stream_path = tmp_path / "direct" / f"{digest}.records.jsonl"
        stream_path.parent.mkdir()
        direct = api.run_trace(config, stream_path=stream_path)
        assert headers["x-iotls-config-digest"] == digest
        assert headers["x-iotls-manifest-digest"] == direct.manifest_digest
        assert body == stream_path.read_bytes()

    def test_concurrent_distinct_requests_match_direct_runs(self, tmp_path):
        seeds = ["fleet-a", "fleet-b", "fleet-c", "fleet-d"]

        async def scenario(service):
            responses = await asyncio.gather(
                *(
                    request(
                        service.port,
                        "POST",
                        "/runs",
                        {"command": "trace", "scale": 1, "seed": seed},
                    )
                    for seed in seeds
                )
            )
            return responses

        responses = asyncio.run(
            with_service(serve_config(tmp_path, executors=4), scenario)
        )
        for seed, (status, headers, body) in zip(seeds, responses):
            assert status == 200
            config = api.RunConfig(scale=1, seed=seed, workers=1, ledger=None)
            digest = api.request_digest("trace", config.request)
            stream_path = tmp_path / "direct" / f"{digest}.records.jsonl"
            stream_path.parent.mkdir(exist_ok=True)
            direct = api.run_trace(config, stream_path=stream_path)
            assert headers["x-iotls-manifest-digest"] == direct.manifest_digest, seed
            assert body == stream_path.read_bytes(), seed

    def test_dangling_artifact_recomputes_instead_of_serving_it(self, tmp_path):
        async def scenario(service):
            port = service.port
            _, first, _ = await request(port, "POST", "/runs", TRACE_BODY)
            assert first["x-iotls-cache"] == "miss"
            # Simulate `iotls runs gc`-eligible state: bytes deleted,
            # ledger entry still present.
            entries = telemetry.load_ledger(service.config.ledger)
            for info in entries[0]["artifacts"].values():
                (tmp_path / info["path"]).unlink()
            _, again, body = await request(port, "POST", "/runs", TRACE_BODY)
            assert again["x-iotls-cache"] == "miss"  # not a dangling hit
            return body

        body = asyncio.run(with_service(serve_config(tmp_path), scenario))
        assert body.splitlines()[-1].startswith(b'{"summary"')

    def test_probe_envelope_is_not_cached(self, tmp_path):
        body = {"command": "probe", "device": "Google Home Mini"}

        async def scenario(service):
            port = service.port
            _, headers1, content1 = await request(port, "POST", "/runs", body)
            _, headers2, _ = await request(port, "POST", "/runs", body)
            return headers1, headers2, json.loads(content1)

        headers1, headers2, envelope = asyncio.run(
            with_service(serve_config(tmp_path), scenario)
        )
        assert headers1["x-iotls-cache"] == "miss"
        assert headers2["x-iotls-cache"] == "miss"  # probes always execute
        assert envelope["command"] == "probe"
        assert envelope["amenable"] is True


class TestQueueAndCoalescing:
    """Backpressure and in-flight dedup, pinned deterministically by
    blocking the executor on an event instead of racing real runs."""

    def _blocking_execute(self, release: threading.Event, stream_file):
        calls: list[str] = []

        def fake_execute(command, config=api.RunConfig(), **extras):
            calls.append(command)
            assert release.wait(timeout=30), "test never released the executor"
            return SimpleNamespace(
                manifest_digest="feedfeedfeedfeed",
                artifacts={"records_jsonl": stream_file},
                health=None,
            )

        return fake_execute, calls

    def test_full_queue_gets_429_with_retry_after(self, tmp_path, monkeypatch):
        release = threading.Event()
        stream_file = tmp_path / "fake.jsonl"
        stream_file.write_text('{"summary": {}}\n')
        fake, calls = self._blocking_execute(release, stream_file)
        monkeypatch.setattr(api, "execute", fake)

        async def scenario(service):
            port = service.port

            def check_body(index):
                return {"command": "check", "scale": 1, "seed": f"q{index}"}

            # One request occupies the single executor, one fills the
            # queue (checks are uncacheable, so no coalescing applies).
            first = asyncio.create_task(request(port, "POST", "/runs", check_body(0)))
            await asyncio.sleep(0.3)
            second = asyncio.create_task(request(port, "POST", "/runs", check_body(1)))
            await asyncio.sleep(0.3)
            status, headers, content = await request(
                port, "POST", "/runs", check_body(2)
            )
            assert status == 429
            assert headers["retry-after"] == str(service.config.retry_after)
            assert "queue" in json.loads(content)["error"]
            release.set()
            results = await asyncio.gather(first, second)
            assert [status for status, _, _ in results] == [200, 200]
            return True

        assert asyncio.run(
            with_service(
                serve_config(tmp_path, queue_size=1, executors=1), scenario
            )
        )
        assert len(calls) == 2  # the 429'd request never executed

    def test_identical_inflight_requests_coalesce(self, tmp_path, monkeypatch):
        release = threading.Event()
        stream_file = tmp_path / "fake.jsonl"
        stream_file.write_text('{"summary": {}}\n')
        fake, calls = self._blocking_execute(release, stream_file)
        monkeypatch.setattr(api, "execute", fake)

        async def scenario(service):
            port = service.port
            first = asyncio.create_task(request(port, "POST", "/runs", TRACE_BODY))
            await asyncio.sleep(0.3)
            second = asyncio.create_task(request(port, "POST", "/runs", TRACE_BODY))
            await asyncio.sleep(0.3)
            release.set()
            (s1, h1, b1), (s2, h2, b2) = await asyncio.gather(first, second)
            assert (s1, s2) == (200, 200)
            assert h1["x-iotls-cache"] == "miss"
            assert h2["x-iotls-cache"] == "coalesced"
            assert b1 == b2 == stream_file.read_bytes()
            document = json.loads(
                (await request(port, "GET", "/status"))[2]
            )
            assert document["cache"]["coalesced"] == 1
            return True

        assert asyncio.run(with_service(serve_config(tmp_path), scenario))
        assert len(calls) == 1  # one computation served both tenants


class TestAccessLog:
    def test_thread_safe_sequencing(self, tmp_path):
        log = AccessLog(tmp_path / "log.jsonl", metadata={"service": "test"})
        threads = [
            threading.Thread(
                target=lambda wid=wid: [
                    log.record("request", worker=wid, index=i) for i in range(50)
                ]
            )
            for wid in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        lines = [
            json.loads(line)
            for line in (tmp_path / "log.jsonl").read_text().splitlines()
        ]
        assert lines[0]["kind"] == "header"
        assert lines[0]["schema"] == "iotls-serve-access/1"
        events = [line for line in lines if line["kind"] == "event"]
        assert len(events) == 400
        assert [event["seq"] for event in events] == list(range(1, 401))
        assert lines[-1]["kind"] == "summary"
        assert lines[-1]["counts"] == {"request": 400}
        assert log.record("late") == {}  # closed logs drop silently

    def test_service_writes_heartbeats_and_lifecycle(self, tmp_path):
        async def scenario(service):
            await request(service.port, "POST", "/runs", TRACE_BODY)
            return True

        assert asyncio.run(with_service(serve_config(tmp_path), scenario))
        lines = [
            json.loads(line)
            for line in (tmp_path / "access.jsonl").read_text().splitlines()
        ]
        events = {line.get("event") for line in lines if line["kind"] == "event"}
        assert {"server.start", "run.start", "run.ok", "request"} <= events
        # heartbeat_interval=0.05 against a ~second-long run: the
        # per-request liveness signal must actually fire.
        assert "request.heartbeat" in events


class TestLedgerIsTheCacheIndex:
    def test_serve_entries_satisfy_cli_lookup(self, tmp_path):
        """`iotls runs lookup` and the service read the same index."""

        async def scenario(service):
            await request(service.port, "POST", "/runs", TRACE_BODY)
            return True

        assert asyncio.run(with_service(serve_config(tmp_path), scenario))
        entries = telemetry.load_ledger(tmp_path / "ledger.jsonl")
        run_request = api.RunRequest.from_document(
            {k: v for k, v in TRACE_BODY.items() if k != "command"}
        )
        hit = ledger.lookup_config(
            entries, api.request_digest("trace", run_request)
        )
        assert hit is not None
        assert hit["manifest_digest"] == entries[0]["manifest_digest"]
