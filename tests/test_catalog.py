"""Tests pinning the device catalog to the paper's Table 1 facts."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.devices import (
    DeviceCategory,
    ValidationMode,
    active_devices,
    build_catalog,
    device_by_name,
    passive_devices,
)


class TestTable1:
    def test_forty_devices(self):
        assert len(build_catalog()) == 40

    def test_thirty_two_active(self):
        assert len(active_devices()) == 32

    def test_category_sizes(self):
        counts = Counter(device.category for device in build_catalog())
        assert counts[DeviceCategory.CAMERA] == 7
        assert counts[DeviceCategory.SMART_HUB] == 7
        assert counts[DeviceCategory.HOME_AUTOMATION] == 7
        assert counts[DeviceCategory.TV] == 5
        assert counts[DeviceCategory.AUDIO] == 7
        assert counts[DeviceCategory.APPLIANCE] == 7

    def test_passive_only_devices_match_table1_stars(self):
        passive_only = {device.name for device in build_catalog() if not device.active}
        assert passive_only == {
            "Blink Camera",
            "Amazon Cloudcam",
            "Ring Doorbell",
            "Sengled Hub",
            "Insteon Hub",
            "Samsung TV",
            "Samsung Washer",
            "LG Dishwasher",
        }

    def test_collective_units_exceed_200_million(self):
        assert sum(device.units_sold_millions for device in build_catalog()) >= 200

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            device_by_name("Nonexistent Toaster")


class TestStructuralInvariants:
    def test_every_destination_references_known_instance(self):
        for device in build_catalog():
            names = {spec.name for spec in device.instances}
            for destination in device.destinations:
                assert destination.instance in names

    def test_every_device_has_traffic_sources(self):
        for device in build_catalog():
            assert device.instances
            assert device.destinations

    def test_non_rebootable_devices(self):
        """Washer is passive; the active non-rebootables are the paper's
        reboot-excluded appliances."""
        non_rebootable = {
            device.name for device in active_devices() if not device.rebootable
        }
        assert non_rebootable == {"Nest Thermostat", "Samsung Dryer", "Samsung Fridge"}

    def test_hostnames_unique_across_catalog(self):
        hostnames = [
            destination.hostname
            for device in build_catalog()
            for destination in device.destinations
        ]
        assert len(hostnames) == len(set(hostnames))

    def test_longitudinal_windows_at_least_six_months(self):
        for device in passive_devices():
            assert device.longitudinal.months_active >= 6, device.name

    def test_most_devices_exceed_a_year(self):
        over_year = [
            device for device in passive_devices() if device.longitudinal.months_active > 12
        ]
        assert len(over_year) >= 32


class TestPaperSpecificDevices:
    def test_no_validation_devices(self):
        """The four devices validating on no destination at all."""
        fully_unvalidated = set()
        for device in active_devices():
            modes = {
                device.instance_spec(destination.instance).validation.mode
                for destination in device.destinations
            }
            if modes == {ValidationMode.NONE}:
                fully_unvalidated.add(device.name)
        assert fully_unvalidated == {
            "Zmodo Doorbell",
            "Amcrest Camera",
            "Smarter iKettle",
        }

    def test_yi_camera_disables_after_three_failures(self):
        device = device_by_name("Yi Camera")
        policy = device.instances[0].validation
        assert policy.disable_after_failures == 3

    def test_amazon_family_shares_instance_names(self):
        for name in ("Amazon Echo Plus", "Amazon Echo Dot", "Amazon Echo Spot", "Fire TV"):
            device = device_by_name(name)
            instance_names = {spec.name for spec in device.instances}
            assert {"amazon-tls", "amazon-auth"} <= instance_names

    def test_echo_spot_boots_through_wolfssl(self):
        device = device_by_name("Amazon Echo Spot")
        first = device.destinations[0]
        assert first.instance == "amazon-boot"
        assert device.instance_spec("amazon-boot").library.name == "WolfSSL"

    def test_firetv_boots_through_android(self):
        device = device_by_name("Fire TV")
        assert device.destinations[0].instance == "firetv-android"

    def test_wemo_only_tls10(self):
        from repro.tls import ProtocolVersion

        device = device_by_name("Wemo Plug")
        config = device.instances[0].config_at(38)
        assert config.versions == (ProtocolVersion.TLS_1_0,)

    def test_table5_destination_totals(self):
        expected = {
            "Amazon Echo Dot": (7, 9),
            "Amazon Echo Plus": (6, 7),
            "Amazon Echo Spot": (11, 15),
            "Fire TV": (13, 21),
            "Apple HomePod": (7, 9),
            "Google Home Mini": (5, 5),
            "Roku TV": (8, 15),
        }
        for name, (_downgraded, tested) in expected.items():
            device = device_by_name(name)
            actually_tested = sum(
                1 for destination in device.destinations if destination.tested_for_downgrade
            )
            assert actually_tested == tested, name

    def test_table7_destination_totals(self):
        expected = {
            "Zmodo Doorbell": 6,
            "Amcrest Camera": 2,
            "Smarter iKettle": 1,
            "Yi Camera": 1,
            "Wink Hub 2": 2,
            "LG TV": 2,
            "Smartthings Hub": 3,
            "Amazon Echo Plus": 8,
            "Amazon Echo Dot": 9,
            "Amazon Echo Spot": 17,
            "Fire TV": 21,
        }
        for name, total in expected.items():
            assert len(device_by_name(name).destinations) == total, name
