"""Tests for the Table 4 amenability harness."""

from __future__ import annotations

import pytest

from repro.core import survey_all_libraries
from repro.core import test_library_amenability as check_library_amenability
from repro.tlslib import ALL_LIBRARIES, OPENSSL

# Imported callable is a library API, not a pytest case.
check_library_amenability.__test__ = False


@pytest.fixture(scope="module")
def survey():
    return {row.library: row for row in survey_all_libraries()}


class TestTable4:
    def test_covers_all_six_libraries(self, survey):
        assert set(survey) == {library.name for library in ALL_LIBRARIES}

    def test_exactly_two_amenable(self, survey):
        amenable = {name for name, row in survey.items() if row.amenable}
        assert amenable == {"MbedTLS", "OpenSSL"}

    def test_mbedtls_alerts(self, survey):
        row = survey["MbedTLS"]
        assert row.alert_known_ca_bad_signature == "bad_certificate"
        assert row.alert_unknown_ca == "unknown_ca"

    def test_openssl_alerts(self, survey):
        row = survey["OpenSSL"]
        assert row.alert_known_ca_bad_signature == "decrypt_error"
        assert row.alert_unknown_ca == "unknown_ca"

    def test_java_same_alert_both_cases(self, survey):
        row = survey["Oracle Java"]
        assert row.alert_known_ca_bad_signature == row.alert_unknown_ca == "certificate_unknown"

    def test_wolfssl_same_alert_both_cases(self, survey):
        row = survey["WolfSSL"]
        assert row.alert_known_ca_bad_signature == row.alert_unknown_ca == "bad_certificate"

    def test_silent_libraries_send_no_alert(self, survey):
        for name in ("GNU TLS", "Secure Transport"):
            row = survey[name]
            assert row.alert_known_ca_bad_signature is None
            assert row.alert_unknown_ca is None
            assert not row.amenable

    def test_row_rendering_matches_paper_wording(self, survey):
        _, bad_sig, unknown = survey["MbedTLS"].row()
        assert bad_sig == "Bad Certificate"
        assert unknown == "Unknown CA"
        _, bad_sig, unknown = survey["GNU TLS"].row()
        assert bad_sig == unknown == "No Alert"

    def test_single_library_helper(self):
        row = check_library_amenability(OPENSSL)
        assert row.amenable
