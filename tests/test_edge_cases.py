"""Failure injection and edge cases across the stack."""

from __future__ import annotations

import pytest

from repro.devices import (
    DestinationSpec,
    DeviceCategory,
    DeviceProfile,
    LongitudinalSpec,
    ServerEpoch,
    ServerSpec,
    TLSInstanceSpec,
    month_to_date,
)
from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.devices.instance import InstanceConfigSpec
from repro.mitm import AttackerToolbox, AttackMode, InterceptionProxy
from repro.pki import utc
from repro.tls import (
    ClientHello,
    GREASE_CODEPOINTS,
    ProtocolVersion,
    handshake_failure_response,
    negotiate,
    sni,
)
from repro.tlslib import WOLFSSL


class TestGreaseAndMalformedHellos:
    def test_negotiation_ignores_grease_only_offer(self):
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=tuple(sorted(GREASE_CODEPOINTS)[:4]),
        )
        assert negotiate(hello, frozenset({ProtocolVersion.TLS_1_2}), RSA_PLAIN) is None

    def test_negotiation_skips_unknown_codepoints(self):
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=(0xFFFE, 0xABCD) + RSA_PLAIN[:1],
        )
        server_hello = negotiate(
            hello, frozenset({ProtocolVersion.TLS_1_2}), (0xFFFE,) + RSA_PLAIN
        )
        assert server_hello is not None
        assert server_hello.cipher_code == RSA_PLAIN[0]

    def test_proxy_survives_unintelligible_offer(self, testbed):
        proxy = InterceptionProxy(
            toolbox=AttackerToolbox(issuing_ca=testbed.anchor(0)),
            mode=AttackMode.NO_VALIDATION,
        )
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=(0xFFFE,),
            extensions=(sni("x.example"),),
        )
        response = proxy.respond(hello, when=utc(2021, 3))
        assert response.incomplete  # nothing to negotiate, no crash

    def test_hello_without_sni_gets_fallback_subject(self, testbed):
        proxy = InterceptionProxy(
            toolbox=AttackerToolbox(issuing_ca=testbed.anchor(0)),
            mode=AttackMode.NO_VALIDATION,
        )
        hello = ClientHello(legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=RSA_PLAIN)
        response = proxy.respond(hello, when=utc(2021, 3))
        assert response.server_hello is not None
        assert response.certificate_chain[0].subject.common_name == "unknown.host"

    def test_handshake_failure_helper(self):
        response = handshake_failure_response()
        assert response.alert is not None
        assert response.server_hello is None


class TestProfileValidation:
    def _instance(self) -> TLSInstanceSpec:
        return TLSInstanceSpec.static(
            "only",
            WOLFSSL,
            InstanceConfigSpec(versions=(ProtocolVersion.TLS_1_2,), cipher_codes=FS_MODERN),
        )

    def _dest(self, instance: str) -> DestinationSpec:
        return DestinationSpec(
            hostname="edge.example.com",
            instance=instance,
            server=ServerSpec.static(
                ServerEpoch(versions=(ProtocolVersion.TLS_1_2,), cipher_codes=FS_MODERN)
            ),
        )

    def test_destination_must_reference_instance(self):
        with pytest.raises(ValueError, match="unknown instance"):
            DeviceProfile(
                name="Broken Device",
                category=DeviceCategory.CAMERA,
                manufacturer="Test",
                active=True,
                instances=(self._instance(),),
                destinations=(self._dest("missing"),),
            )

    def test_duplicate_instance_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate instance names"):
            DeviceProfile(
                name="Broken Device",
                category=DeviceCategory.CAMERA,
                manufacturer="Test",
                active=True,
                instances=(self._instance(), self._instance()),
            )

    def test_instance_spec_lookup(self):
        profile = DeviceProfile(
            name="Edge Device",
            category=DeviceCategory.CAMERA,
            manufacturer="Test",
            active=True,
            instances=(self._instance(),),
            destinations=(self._dest("only"),),
        )
        assert profile.instance_spec("only").name == "only"
        with pytest.raises(KeyError):
            profile.instance_spec("nope")
        assert profile.destinations_via("only") == list(profile.destinations)


class TestTimeGrid:
    def test_month_to_date_mapping(self):
        assert month_to_date(0).year == 2018 and month_to_date(0).month == 1
        assert month_to_date(11).month == 12
        assert month_to_date(12).year == 2019
        assert month_to_date(26).year == 2020 and month_to_date(26).month == 3
        assert month_to_date(38).year == 2021 and month_to_date(38).month == 3

    def test_longitudinal_spec_gaps(self):
        spec = LongitudinalSpec(first_month=2, last_month=10, gap_months=frozenset({5, 6}))
        assert spec.active_in(2) and spec.active_in(10)
        assert not spec.active_in(1) and not spec.active_in(11)
        assert not spec.active_in(5)
        assert spec.months_active == 7


class TestCaptureUtilities:
    def test_extend_merges_captures(self, testbed):
        from repro.testbed import GatewayCapture
        from repro.longitudinal import PassiveTraceGenerator

        generator = PassiveTraceGenerator(testbed, scale=1)
        merged = GatewayCapture()
        part_a = GatewayCapture()
        part_b = GatewayCapture()
        from repro.devices import device_by_name

        generator.generate_device(device_by_name("Wemo Plug"), part_a)
        generator.generate_device(device_by_name("Sengled Hub"), part_b)
        merged.extend(part_a)
        merged.extend(part_b)
        assert len(merged) == len(part_a) + len(part_b)
        assert set(merged.devices()) == {"Wemo Plug", "Sengled Hub"}

    def test_months_sorted(self, passive_capture):
        months = passive_capture.months()
        assert months == sorted(months)
        assert months[0] == 0 and months[-1] == 26


class TestFingerprintCollectionWeights:
    def test_usage_counts_reflect_destination_weights(self, testbed):
        from repro.fingerprint import collect_device_fingerprints

        collected = {c.device: c for c in collect_device_fingerprints(testbed, reboots=1)}
        firetv = collected["Fire TV"]
        # android-sdk traffic dominates (7 destinations x weight 8).
        dominant_count = firetv.usage[firetv.dominant]
        assert dominant_count == max(firetv.usage.values())
        assert dominant_count >= 7 * 8
