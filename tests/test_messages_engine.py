"""Unit tests for handshake messages and the negotiation engine."""

from __future__ import annotations

import pytest

from repro.devices.configs import FS_MODERN, RSA_PLAIN, TLS13, WEAK_LEGACY
from repro.pki import utc
from repro.tls import (
    Alert,
    AlertDescription,
    ClientHello,
    HandshakeState,
    ProtocolVersion,
    ServerResponse,
    negotiate,
    perform_handshake,
    sni,
    status_request,
    supported_versions_ext,
)
from repro.tlslib import MBEDTLS, OPENSSL, ClientConfig

WHEN = utc(2021, 3)


def _hello(
    max_version=ProtocolVersion.TLS_1_2,
    ciphers=FS_MODERN + RSA_PLAIN,
    extensions=(),
) -> ClientHello:
    return ClientHello(legacy_version=max_version, cipher_codes=ciphers, extensions=extensions)


class TestClientHello:
    def test_sni_accessor(self):
        hello = _hello(extensions=(sni("api.example.com"),))
        assert hello.server_name == "api.example.com"
        assert _hello().server_name is None

    def test_staple_request_detection(self):
        assert _hello(extensions=(status_request(),)).requests_ocsp_staple
        assert not _hello().requests_ocsp_staple

    def test_advertised_versions_pre13(self):
        hello = _hello(max_version=ProtocolVersion.TLS_1_1)
        assert hello.advertised_versions() == (ProtocolVersion.TLS_1_1,)
        assert hello.max_version is ProtocolVersion.TLS_1_1

    def test_advertised_versions_with_supported_versions_ext(self):
        ext = supported_versions_ext(
            (ProtocolVersion.TLS_1_3.wire, ProtocolVersion.TLS_1_2.wire)
        )
        hello = _hello(extensions=(ext,))
        assert hello.max_version is ProtocolVersion.TLS_1_3
        assert ProtocolVersion.TLS_1_2 in hello.advertised_versions()

    def test_cipher_classification_helpers(self):
        assert _hello(ciphers=WEAK_LEGACY).advertises_insecure_cipher
        assert not _hello(ciphers=RSA_PLAIN).advertises_insecure_cipher
        assert _hello(ciphers=FS_MODERN).advertises_forward_secrecy
        assert not _hello(ciphers=RSA_PLAIN).advertises_forward_secrecy

    def test_grease_and_unknown_codes_skipped(self):
        hello = _hello(ciphers=(0x0A0A, 0xFFFF) + RSA_PLAIN)
        assert len(hello.cipher_suites()) == len(RSA_PLAIN)


class TestNegotiation:
    def test_picks_highest_common_version(self):
        hello = _hello(max_version=ProtocolVersion.TLS_1_2)
        server_hello = negotiate(
            hello,
            frozenset({ProtocolVersion.TLS_1_0, ProtocolVersion.TLS_1_1, ProtocolVersion.TLS_1_2}),
            RSA_PLAIN,
        )
        assert server_hello.version is ProtocolVersion.TLS_1_2

    def test_pre13_clients_accept_lower_versions(self):
        hello = _hello(max_version=ProtocolVersion.TLS_1_2)
        server_hello = negotiate(hello, frozenset({ProtocolVersion.TLS_1_0}), RSA_PLAIN)
        assert server_hello.version is ProtocolVersion.TLS_1_0

    def test_server_preference_order_wins(self):
        hello = _hello(ciphers=FS_MODERN + RSA_PLAIN)
        server_hello = negotiate(
            hello, frozenset({ProtocolVersion.TLS_1_2}), RSA_PLAIN + FS_MODERN
        )
        assert server_hello.cipher_code == RSA_PLAIN[0]

    def test_no_common_version_fails(self):
        hello = _hello(max_version=ProtocolVersion.TLS_1_1)
        assert negotiate(hello, frozenset({ProtocolVersion.TLS_1_3}), TLS13) is None

    def test_no_common_cipher_fails(self):
        hello = _hello(ciphers=RSA_PLAIN)
        assert negotiate(hello, frozenset({ProtocolVersion.TLS_1_2}), WEAK_LEGACY) is None

    def test_tls13_suites_only_at_tls13(self):
        ext = supported_versions_ext((ProtocolVersion.TLS_1_3.wire, ProtocolVersion.TLS_1_2.wire))
        hello = _hello(ciphers=TLS13 + RSA_PLAIN, extensions=(ext,))
        server_hello = negotiate(
            hello,
            frozenset({ProtocolVersion.TLS_1_2, ProtocolVersion.TLS_1_3}),
            TLS13 + RSA_PLAIN,
        )
        assert server_hello.version is ProtocolVersion.TLS_1_3
        assert server_hello.cipher_code in set(TLS13)
        # Same offer against a 1.2-only server: no TLS 1.3 suite chosen.
        server_hello_12 = negotiate(hello, frozenset({ProtocolVersion.TLS_1_2}), TLS13 + RSA_PLAIN)
        assert server_hello_12.version is ProtocolVersion.TLS_1_2
        assert server_hello_12.cipher_code in set(RSA_PLAIN)


class _StaticResponder:
    def __init__(self, response: ServerResponse) -> None:
        self.response = response

    def respond(self, client_hello, *, when):
        return self.response


class TestPerformHandshake:
    @pytest.fixture()
    def client(self, simple_store):
        config = ClientConfig(
            versions=(ProtocolVersion.TLS_1_2,),
            cipher_codes=FS_MODERN + RSA_PLAIN,
            root_store=simple_store,
        )
        return OPENSSL.client(config)

    def test_incomplete_handshake_state(self, client):
        result = perform_handshake(
            client, _StaticResponder(ServerResponse(incomplete=True)), hostname="h", when=WHEN
        )
        assert result.state is HandshakeState.NO_RESPONSE
        assert not result.established

    def test_server_alert_state(self, client):
        response = ServerResponse(alert=Alert.fatal(AlertDescription.HANDSHAKE_FAILURE))
        result = perform_handshake(client, _StaticResponder(response), hostname="h", when=WHEN)
        assert result.state is HandshakeState.SERVER_REJECTED

    def test_established_with_valid_chain(self, client, simple_ca):
        leaf, _ = simple_ca.issue_leaf("h.example.com")
        from repro.tls import ServerHello

        response = ServerResponse(
            server_hello=ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=FS_MODERN[0]),
            certificate_chain=(leaf,),
        )
        result = perform_handshake(
            client,
            _StaticResponder(response),
            hostname="h.example.com",
            when=WHEN,
            application_data=("secret",),
        )
        assert result.established
        assert result.application_data == ("secret",)
        assert result.established_version is ProtocolVersion.TLS_1_2
        assert result.established_cipher_code == FS_MODERN[0]

    def test_application_data_withheld_on_rejection(self, client):
        from repro.tls import ServerHello

        bad_cert, _ = __import__("repro.pki", fromlist=["CertificateAuthority"]).CertificateAuthority.self_signed_leaf("h.example.com")
        response = ServerResponse(
            server_hello=ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=FS_MODERN[0]),
            certificate_chain=(bad_cert,),
        )
        result = perform_handshake(
            client,
            _StaticResponder(response),
            hostname="h.example.com",
            when=WHEN,
            application_data=("secret",),
        )
        assert result.state is HandshakeState.CLIENT_REJECTED
        assert result.application_data == ()

    def test_client_refuses_unoffered_version(self, client, simple_ca):
        """A correct client rejects a ServerHello picking SSL 3.0 when it
        only offered TLS 1.2 (no unilateral downgrade)."""
        from repro.tls import ServerHello

        leaf, _ = simple_ca.issue_leaf("h.example.com")
        response = ServerResponse(
            server_hello=ServerHello(version=ProtocolVersion.SSL_3_0, cipher_code=RSA_PLAIN[2]),
            certificate_chain=(leaf,),
        )
        result = perform_handshake(client, _StaticResponder(response), hostname="h.example.com", when=WHEN)
        assert result.state is HandshakeState.CLIENT_REJECTED
        assert result.client_alert.description is AlertDescription.PROTOCOL_VERSION

    def test_client_refuses_unoffered_cipher(self, client, simple_ca):
        from repro.tls import ServerHello

        leaf, _ = simple_ca.issue_leaf("h.example.com")
        response = ServerResponse(
            server_hello=ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=WEAK_LEGACY[0]),
            certificate_chain=(leaf,),
        )
        result = perform_handshake(client, _StaticResponder(response), hostname="h.example.com", when=WHEN)
        assert result.state is HandshakeState.CLIENT_REJECTED
        assert result.client_alert.description is AlertDescription.ILLEGAL_PARAMETER
