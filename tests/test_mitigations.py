"""Tests for the §6 mitigations: pinning, audit service, guardian,
TLS-as-OS-service hardening."""

from __future__ import annotations

import pytest

from repro.core import InterceptionAuditor, TABLE2_ATTACKS
from repro.devices import Device, device_by_name
from repro.devices.configs import FS_MODERN, RSA_PLAIN, WEAK_LEGACY
from repro.fingerprint import fingerprint
from repro.mitigations import (
    Advisory,
    GuardianPolicy,
    InHomeGuardian,
    PinnedClient,
    Severity,
    TLSAuditService,
    harden_device,
    pin_leaf,
    pin_root,
)
from repro.mitm import AttackerToolbox, AttackMode, InterceptionProxy
from repro.pki import utc
from repro.tls import ProtocolVersion, perform_handshake
from repro.tlslib import ClientConfig, OPENSSL, WOLFSSL

WHEN = utc(2021, 3)


# ---------------------------------------------------------------------------
# Pinning
# ---------------------------------------------------------------------------


class TestPinning:
    @pytest.fixture()
    def setup(self, testbed):
        device = testbed.device("Zmodo Doorbell")  # performs NO validation
        destination = device.first_destination()
        server = testbed.server_for(destination)
        toolbox = AttackerToolbox(issuing_ca=testbed.anchor(0))
        return device, destination, server, toolbox

    def _client_for(self, device, destination):
        instance = device.instance(destination.instance)
        return instance.spec.library.client(instance.client_config(38))

    def test_leaf_pin_blocks_all_attacks_even_without_validation(self, setup):
        device, destination, server, toolbox = setup
        inner = self._client_for(device, destination)
        pinned = PinnedClient(inner, pin_leaf(server.chain[0]))

        for mode in (
            AttackMode.NO_VALIDATION,
            AttackMode.WRONG_HOSTNAME,
            AttackMode.INVALID_BASIC_CONSTRAINTS,
        ):
            proxy = InterceptionProxy(toolbox=toolbox, mode=mode)
            result = perform_handshake(
                pinned, proxy, hostname=destination.hostname, when=WHEN
            )
            assert not result.established, mode

    def test_leaf_pin_permits_genuine_server(self, setup):
        device, destination, server, _ = setup
        pinned = PinnedClient(self._client_for(device, destination), pin_leaf(server.chain[0]))
        result = perform_handshake(pinned, server, hostname=destination.hostname, when=WHEN)
        assert result.established

    def test_root_pin_blocks_self_signed(self, setup):
        device, destination, server, toolbox = setup
        pinned = PinnedClient(
            self._client_for(device, destination), pin_root(server.chain[-1])
        )
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.NO_VALIDATION)
        result = perform_handshake(pinned, proxy, hostname=destination.hostname, when=WHEN)
        assert not result.established

    def test_root_pin_without_validation_still_falls_to_same_ca_cert(
        self, setup, testbed
    ):
        """The paper's caveat: pinning the root is not enough, and
        validation is necessary even with pinning.  The attacker's
        WrongHostname chain terminates at the *pinned* anchor, so a
        root-pinned, non-validating client accepts it."""
        device, destination, _, toolbox = setup
        anchor = testbed.anchor(0)
        pinned = PinnedClient(
            self._client_for(device, destination), pin_root(anchor.certificate)
        )
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.WRONG_HOSTNAME)
        result = perform_handshake(pinned, proxy, hostname=destination.hostname, when=WHEN)
        assert result.established  # apparent security, still interceptable

    def test_leaf_pin_blocks_that_same_attack(self, setup):
        device, destination, server, toolbox = setup
        pinned = PinnedClient(
            self._client_for(device, destination), pin_leaf(server.chain[0])
        )
        proxy = InterceptionProxy(toolbox=toolbox, mode=AttackMode.WRONG_HOSTNAME)
        result = perform_handshake(pinned, proxy, hostname=destination.hostname, when=WHEN)
        assert not result.established

    def test_empty_chain_never_matches_pin(self, setup):
        _, _, server, _ = setup
        assert not pin_leaf(server.chain[0]).matches(())


# ---------------------------------------------------------------------------
# Audit service
# ---------------------------------------------------------------------------


class TestAuditService:
    @pytest.fixture()
    def service(self, testbed):
        return TLSAuditService(testbed.anchor(0))

    def _check_in(self, testbed, service, device_name):
        return service.check_in(testbed.device(device_name))

    def test_wemo_graded_critical(self, testbed, service):
        connection = self._check_in(testbed, service, "Wemo Plug")
        assert connection.established  # cooperating endpoint accepts TLS 1.0
        assert service.worst_severity("Wemo Plug") is Severity.CRITICAL
        advisories = {finding.advisory for finding in service.findings_for("Wemo Plug")}
        assert "deprecated-max-version" in advisories
        assert "insecure-ciphersuites" in advisories
        assert "no-forward-secrecy" in advisories

    def test_clean_device_gets_only_info(self, testbed, service):
        self._check_in(testbed, service, "D-Link Camera")
        assert service.worst_severity("D-Link Camera") is Severity.INFO
        advisories = {f.advisory for f in service.findings_for("D-Link Camera")}
        assert advisories == {"tls13-not-adopted"}

    def test_new_advisory_applies_to_later_checkins(self, testbed, service):
        from repro.tls.extensions import ExtensionType, SignatureScheme

        self._check_in(testbed, service, "Wemo Plug")

        def sha1_signatures(hello):
            ext = hello.extension(ExtensionType.SIGNATURE_ALGORITHMS)
            if ext and SignatureScheme.RSA_PKCS1_SHA1.value in ext.data:
                return "offers RSA-PKCS1-SHA1 signatures"
            return None

        service.publish_advisory(Advisory("sha1-signatures", Severity.WARNING, sha1_signatures))
        before = [f for f in service.findings_for("Wemo Plug") if f.advisory == "sha1-signatures"]
        assert before == []  # graded before publication
        self._check_in(testbed, service, "Wemo Plug")
        after = [f for f in service.findings_for("Wemo Plug") if f.advisory == "sha1-signatures"]
        assert len(after) == 1

    def test_vendor_report_groups_by_device(self, testbed, service):
        self._check_in(testbed, service, "Wemo Plug")
        self._check_in(testbed, service, "D-Link Camera")
        report = service.vendor_report()
        assert set(report) == {"Wemo Plug", "D-Link Camera"}


# ---------------------------------------------------------------------------
# In-home guardian
# ---------------------------------------------------------------------------


class TestGuardian:
    def test_forwards_secure_connections(self, testbed):
        device = testbed.device("D-Link Camera")
        destination = device.first_destination()
        guardian = InHomeGuardian(
            device=device.name, upstream=testbed.server_for(destination)
        )
        connection = device.connect_destination(destination, guardian)
        assert connection.established
        assert guardian.forwarded == 1
        assert guardian.paused == []

    def test_pauses_old_version_negotiation(self, testbed):
        device = testbed.device("Samsung Dryer")  # server negotiates TLS 1.1
        destination = device.first_destination()
        guardian = InHomeGuardian(
            device=device.name, upstream=testbed.server_for(destination)
        )
        connection = device.connect_destination(destination, guardian)
        assert not connection.established
        assert len(guardian.paused) >= 1
        assert "TLS 1.1" in guardian.paused[0].reason

    def test_user_allow_releases_connection(self, testbed):
        device = testbed.device("Samsung Dryer")
        destination = device.first_destination()
        guardian = InHomeGuardian(
            device=device.name, upstream=testbed.server_for(destination)
        )
        device.connect_destination(destination, guardian)  # paused
        guardian.allow(destination.hostname)
        connection = device.connect_destination(destination, guardian)
        assert connection.established

    def test_pauses_insecure_suite(self, testbed):
        device = testbed.device("Wink Hub 2")
        destination = device.profile.destinations[1]  # RC4-preferring endpoint
        guardian = InHomeGuardian(
            device=device.name, upstream=testbed.server_for(destination)
        )
        connection = device.connect_destination(destination, guardian)
        assert not connection.established
        assert "RC4" in guardian.paused[0].reason

    def test_forward_secrecy_policy(self, testbed):
        device = testbed.device("Amazon Echo Dot")
        destination = device.profile.destinations[0]  # RSA-preferring server
        guardian = InHomeGuardian(
            device=device.name,
            upstream=testbed.server_for(destination),
            policy=GuardianPolicy(require_forward_secrecy=True),
        )
        connection = device.connect_destination(destination, guardian)
        assert not connection.established
        assert "non-forward-secret" in guardian.paused[0].reason


# ---------------------------------------------------------------------------
# TLS as an OS service
# ---------------------------------------------------------------------------


class TestSecureService:
    def test_hardened_device_resists_all_attacks(self, testbed, universe):
        hardened = harden_device(device_by_name("Zmodo Doorbell"))
        device = Device(hardened, universe=universe)
        auditor = InterceptionAuditor(testbed)
        report = auditor.audit_device(device)
        assert not report.vulnerable

    def test_hardened_device_has_single_fingerprint(self, testbed, universe):
        hardened = harden_device(device_by_name("Fire TV"))
        device = Device(hardened, universe=universe)
        fingerprints = set()
        for connection in device.boot(lambda dest: testbed.server_for(dest)):
            fingerprints.add(fingerprint(connection.attempt.attempts[0].client_hello))
        assert len(fingerprints) == 1

    def test_hardened_device_never_downgrades(self, testbed, universe):
        from repro.core import DowngradeAuditor

        hardened = harden_device(device_by_name("Amazon Echo Dot"))
        device = Device(hardened, universe=universe)
        report = DowngradeAuditor(testbed).audit_device_downgrade(device)
        assert not report.downgrades

    def test_hardened_device_drops_old_versions(self, testbed, universe):
        from repro.core import DowngradeAuditor

        hardened = harden_device(device_by_name("Wemo Plug"))
        device = Device(hardened, universe=universe)
        support = DowngradeAuditor(testbed).audit_device_old_versions(device)
        assert not support.any_old

    def test_hardening_preserves_workload(self):
        original = device_by_name("Fire TV")
        hardened = harden_device(original)
        assert len(hardened.destinations) == len(original.destinations)
        assert {d.hostname for d in hardened.destinations} == {
            d.hostname for d in original.destinations
        }
        assert len(hardened.instances) == 1
