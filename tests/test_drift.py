"""Paper-drift audit tests: expectations loading, tolerance handling,
artifact-mode skipping, and the `iotls check` exit-code contract."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.drift import (
    EXPECTATIONS_PATH,
    DriftReport,
    Expectation,
    audit,
    audit_capture,
    load_expectations,
    measure_capture,
)
from repro.cli import main
from repro.longitudinal import PassiveTraceGenerator


@pytest.fixture(scope="module")
def scale1_capture():
    return PassiveTraceGenerator(scale=1).generate()


def _cell(id="x", expected=1, tolerance=0.0, kind="count"):
    return Expectation(
        id=id, section="s", description="d", kind=kind, expected=expected, tolerance=tolerance
    )


class TestExpectations:
    def test_packaged_file_loads(self):
        cells = load_expectations()
        assert EXPECTATIONS_PATH.exists()
        assert len(cells) >= 40  # Tables 1-9 + Figures 1-5 coverage
        ids = [cell.id for cell in cells]
        assert len(ids) == len(set(ids))
        # Every fraction cell needs slack; counts must be exact.
        for cell in cells:
            if cell.kind == "fraction":
                assert cell.tolerance > 0, cell.id
            else:
                assert cell.tolerance == 0, cell.id

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "cells": []}))
        with pytest.raises(ValueError, match="schema"):
            load_expectations(path)

    def test_rejects_duplicate_ids(self, tmp_path):
        cell = {"id": "a", "section": "s", "expected": 1}
        path = tmp_path / "dup.json"
        path.write_text(
            json.dumps({"schema": "iotls-paper-expectations/1", "cells": [cell, cell]})
        )
        with pytest.raises(ValueError, match="duplicate"):
            load_expectations(path)


class TestTolerance:
    def test_exact_match_required_without_tolerance(self):
        assert _cell(expected=5).matches(5)
        assert not _cell(expected=5).matches(6)

    def test_tolerance_brackets_fractions(self):
        cell = _cell(expected=0.165, tolerance=0.02, kind="fraction")
        assert cell.matches(0.165)
        assert cell.matches(0.184)
        assert cell.matches(0.146)
        assert not cell.matches(0.19)
        assert not cell.matches(0.14)


class TestAudit:
    def test_statuses_and_report_shape(self):
        cells = [_cell("hit", 1), _cell("miss", 1), _cell("absent", 1)]
        report = audit(cells, {"hit": 1, "miss": 2})
        by_id = {cell.expectation.id: cell for cell in report.cells}
        assert by_id["hit"].status == "match"
        assert by_id["miss"].status == "drift"
        assert by_id["miss"].delta == 1
        assert by_id["absent"].status == "skipped"
        assert by_id["absent"].actual is None
        assert not report.ok  # one drift fails the audit
        document = report.to_dict()
        assert document["summary"] == {
            "cells": 3,
            "matched": 1,
            "drifted": 1,
            "skipped": 1,
        }
        json.dumps(document)

    def test_skipped_cells_do_not_fail(self):
        report = audit([_cell("only", 1)], {})
        assert report.ok
        assert len(report.skipped) == 1

    def test_render_marks_drift(self):
        text = audit([_cell("bad", 1)], {"bad": 3}).render()
        assert "DRIFT" in text
        assert "1 drifted" in text


class TestCaptureAudit:
    def test_scale1_capture_measures_paper_counts(self, scale1_capture):
        measured = measure_capture(scale1_capture)
        assert measured["trace.devices"] == 40
        assert measured["figure1.shown_devices"] == 12
        assert measured["table8.never_checking_devices"] == 28

    def test_capture_audit_passes_and_skips_campaign_cells(self, scale1_capture):
        report = audit_capture(scale1_capture)
        assert report.ok
        assert len(report.matched) >= 13
        skipped = {cell.expectation.id for cell in report.skipped}
        assert "table7.vulnerable_devices" in skipped  # campaign-only cell


class TestCheckCommand:
    """The CLI exit-code contract on a freshly generated scale-1 run."""

    @pytest.fixture(scope="class")
    def trace_artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("check") / "trace.json"
        assert main(["trace", "--scale", "1", "--json", str(path)]) == 0
        return path

    def test_artifact_check_passes(self, trace_artifact, tmp_path, capsys):
        drift_json = tmp_path / "drift.json"
        status = main(
            ["check", "--artifact", str(trace_artifact), "--json", str(drift_json)]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "no drift detected" in out
        document = json.loads(drift_json.read_text())
        assert document["ok"] is True
        assert document["summary"]["drifted"] == 0

    def test_perturbed_artifact_exits_nonzero_with_cell_report(
        self, trace_artifact, tmp_path, capsys
    ):
        document = json.loads(trace_artifact.read_text())
        # Silence one device entirely: its records vanish, dragging the
        # device count and heatmap populations off the paper's values.
        victim = document["records"][0]["device"]
        document["records"] = [
            record for record in document["records"] if record["device"] != victim
        ]
        perturbed = tmp_path / "perturbed.json"
        perturbed.write_text(json.dumps(document))
        status = main(["check", "--artifact", str(perturbed)])
        captured = capsys.readouterr()
        assert status == 1
        assert "DRIFT" in captured.err
        assert "trace.devices" in captured.err
        assert "DRIFT" in captured.out  # per-cell table marks the rows

    def test_fresh_run_check_passes(self, capsys):
        status = main(["check", "--scale", "1"])
        out = capsys.readouterr().out
        assert status == 0
        assert "no drift detected" in out
        assert "0 drifted, 0 skipped" in out  # fresh runs measure every cell

    def test_unreadable_inputs_exit_2(self, trace_artifact, tmp_path, capsys):
        assert main(["check", "--artifact", str(tmp_path / "absent.json")]) == 2
        bad = tmp_path / "bad_expected.json"
        bad.write_text(json.dumps({"schema": "wrong", "cells": []}))
        assert (
            main(
                ["check", "--artifact", str(trace_artifact), "--expected", str(bad)]
            )
            == 2
        )
        capsys.readouterr()
