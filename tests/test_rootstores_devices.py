"""Tests for device root-store construction and the runtime Device."""

from __future__ import annotations

import pytest

from repro.devices import (
    ANCHOR_COUNT,
    Device,
    StoreProfile,
    anchor_records,
    build_device_store,
    device_by_name,
)


class TestStoreConstruction:
    def test_deterministic(self, universe):
        profile = StoreProfile(common_count=100, deprecated_count=20)
        a = build_device_store("determinism-test", profile, universe)
        b = build_device_store("determinism-test", profile, universe)
        assert {c.serial for c in a} == {c.serial for c in b}

    def test_counts_respected(self, universe):
        profile = StoreProfile(common_count=100, deprecated_count=20)
        store = build_device_store("count-test", profile, universe)
        assert len(store) == 120

    def test_anchors_always_present(self, universe):
        profile = StoreProfile(common_count=ANCHOR_COUNT, deprecated_count=0)
        store = build_device_store("anchor-test", profile, universe)
        for record in anchor_records(universe):
            assert record.certificate in store

    def test_forced_deprecated_included(self, universe):
        profile = StoreProfile(
            common_count=50,
            deprecated_count=3,
            force_deprecated=("CNNIC ROOT",),
        )
        store = build_device_store("force-test", profile, universe)
        cnnic = universe.records["CNNIC ROOT"]
        assert cnnic.certificate in store

    def test_unknown_forced_name_raises(self, universe):
        profile = StoreProfile(deprecated_count=1, force_deprecated=("No Such CA",))
        with pytest.raises(KeyError):
            build_device_store("bad-force", profile, universe)

    def test_recency_bias_shapes_selection(self, universe):
        recent = build_device_store(
            "bias-recent", StoreProfile(deprecated_count=20, recency_bias=6.0), universe
        )
        old = build_device_store(
            "bias-old", StoreProfile(deprecated_count=20, recency_bias=0.0), universe
        )
        def mean_removal_year(store):
            years = [
                universe.records[c.subject.common_name].removal_year
                for c in store
                if universe.records.get(c.subject.common_name)
                and universe.records[c.subject.common_name].removal_year
            ]
            return sum(years) / len(years)

        assert mean_removal_year(recent) > mean_removal_year(old)


class TestRuntimeDevice:
    def test_device_builds_instances(self, universe):
        device = Device(device_by_name("Google Home Mini"), universe=universe)
        assert set(device.instances) == {"ghm-main", "ghm-cast"}
        assert device.first_destination().hostname == "clients.google.com"

    def test_boot_contacts_every_destination(self, testbed):
        device = testbed.device("Zmodo Doorbell")
        connections = device.boot(lambda dest: testbed.server_for(dest))
        assert len(connections) == len(device.profile.destinations)
        assert all(connection.established for connection in connections)

    def test_power_cycle_resets_instance_state(self, universe):
        from repro.tls import ServerResponse

        class Silent:
            def respond(self, hello, *, when):
                return ServerResponse(incomplete=True)

        device = Device(device_by_name("Yi Camera"), universe=universe)
        instance = device.instance("yi-tls")
        for _ in range(3):
            device.connect_destination(device.profile.destinations[0], Silent())
        assert instance.validation_disabled
        device.power_cycle()
        assert not instance.validation_disabled

    def test_sensitive_payload_becomes_application_data(self, testbed):
        device = testbed.device("Zmodo Doorbell")
        destination = device.profile.destinations[0]
        connection = device.connect_destination(destination, testbed.server_for(destination))
        assert connection.established
        assert destination.sensitive_payload in connection.attempt.final.application_data
