"""Tests for the passive-trace generator and Figures 1-3 analyses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import STUDY_MONTHS, device_by_name
from repro.longitudinal import (
    PassiveTraceGenerator,
    build_insecure_advertised_heatmap,
    build_strong_established_heatmap,
    build_version_heatmap,
    detect_adoption_events,
    month_label,
)
from repro.longitudinal.adoption import AdoptionKind
from repro.tls.versions import VersionBand


class TestGenerator:
    def test_deterministic(self, testbed, passive_capture):
        again = PassiveTraceGenerator(testbed, scale=10).generate()
        assert len(again) == len(passive_capture)
        assert sum(r.count for r in again.records) == sum(
            r.count for r in passive_capture.records
        )

    def test_all_forty_devices_present(self, passive_capture):
        assert len(passive_capture.devices()) == 40

    def test_activity_windows_respected(self, passive_capture):
        months = {
            record.month for record in passive_capture.by_device("Blink Camera")
        }
        window = device_by_name("Blink Camera").longitudinal
        assert max(months) == window.last_month
        assert min(months) == window.first_month

    def test_gap_months_skipped(self, passive_capture):
        months = {record.month for record in passive_capture.by_device("LG Dishwasher")}
        gaps = device_by_name("LG Dishwasher").longitudinal.gap_months
        assert not (months & gaps)

    def test_destination_activity_override(self, passive_capture):
        months = {
            record.month
            for record in passive_capture.by_device("Insteon Hub")
            if record.hostname == "legacy.insteon.com"
        }
        assert months == set(range(6, 20))

    def test_scale_controls_volume(self, testbed):
        small = PassiveTraceGenerator(testbed, scale=5).generate()
        large = PassiveTraceGenerator(testbed, scale=50).generate()
        assert sum(r.count for r in large.records) > 5 * sum(r.count for r in small.records)

    def test_revocation_events_emitted(self, passive_capture):
        devices_with_events = {e.device for e in passive_capture.revocation_events}
        assert "Samsung TV" in devices_with_events
        assert "Apple TV" in devices_with_events


class TestFigure1:
    @pytest.fixture(scope="class")
    def heatmap(self, passive_capture):
        return build_version_heatmap(passive_capture)

    def test_twelve_devices_shown(self, heatmap):
        assert len(heatmap.shown_devices()) == 12

    def test_twenty_eight_hidden(self, heatmap):
        assert len(heatmap.hidden_devices()) == 28

    def test_wemo_always_older(self, heatmap):
        series = heatmap.advertised[VersionBand.OLDER]["Wemo Plug"]
        assert all(v == 1.0 for v in series.active_values())

    def test_samsung_advertises_12_establishes_older(self, heatmap):
        advertised = heatmap.advertised[VersionBand.TLS_1_2]["Samsung Dryer"]
        established_old = heatmap.established[VersionBand.OLDER]["Samsung Dryer"]
        assert advertised.max_fraction() == 1.0
        assert established_old.max_fraction() == 1.0

    def test_apple_advertises_13_establishes_12(self, heatmap):
        advertised = heatmap.advertised[VersionBand.TLS_1_3]["Apple HomePod"]
        assert advertised.max_fraction() > 0.5  # after 5/2019
        established_13 = heatmap.established[VersionBand.TLS_1_3]["Apple HomePod"]
        assert established_13.max_fraction() == 0.0

    def test_blink_hub_transition_month(self, heatmap):
        series = heatmap.advertised[VersionBand.TLS_1_2]["Blink Hub"]
        assert series.first_month_reaching(0.5) == 6  # 7/2018

    def test_matrix_shape_and_nan_for_gray_cells(self, heatmap):
        matrix = heatmap.matrix(VersionBand.TLS_1_2, established=False)
        assert matrix.shape == (40, STUDY_MONTHS)
        blink_row = heatmap.devices.index("Blink Camera")
        assert np.isnan(matrix[blink_row, 20])  # after Blink Camera died

    def test_exact_five_percent_non_tls12_is_shown(self):
        """Regression: a device with exactly 5% non-TLS-1.2 traffic sits
        on the figure's threshold and must be shown.  Comparing against
        the float residue ``1 - 0.95`` (0.05000000000000004) with a
        strict ``>`` wrongly hid it."""
        from datetime import datetime, timezone

        from repro.devices.profile import Party
        from repro.testbed.capture import GatewayCapture, TrafficRecord
        from repro.tls import ClientHello, ProtocolVersion

        def record(version: ProtocolVersion, count: int) -> TrafficRecord:
            return TrafficRecord(
                device="Boundary Device",
                hostname="boundary.example.com",
                party=Party.FIRST,
                month=0,
                when=datetime(2018, 1, 15, tzinfo=timezone.utc),
                client_hello=ClientHello(legacy_version=version, cipher_codes=(0x002F,)),
                established=True,
                established_version=ProtocolVersion.TLS_1_2,
                established_cipher_code=0x002F,
                client_alert=None,
                count=count,
            )

        capture = GatewayCapture()
        capture.add(record(ProtocolVersion.TLS_1_2, 19))
        capture.add(record(ProtocolVersion.TLS_1_3, 1))
        heatmap = build_version_heatmap(capture)
        advertised_13 = heatmap.advertised[VersionBand.TLS_1_3]["Boundary Device"]
        assert advertised_13.max_fraction() == 0.05
        assert heatmap.shown_devices() == ["Boundary Device"]


class TestFigure2:
    @pytest.fixture(scope="class")
    def heatmap(self, passive_capture):
        return build_insecure_advertised_heatmap(passive_capture)

    def test_thirty_four_advertisers(self, heatmap):
        assert len(heatmap.shown_devices()) == 34

    def test_six_clean_devices(self, heatmap):
        assert set(heatmap.hidden_devices()) == {
            "Nest Thermostat",
            "D-Link Camera",
            "GE Microwave",
            "Switchbot Hub",
            "Behmor Brewer",
            "Sengled Hub",
        }

    def test_blink_hub_drops_weak_ciphers(self, heatmap):
        series = heatmap.series["Blink Hub"]
        assert series.values[15] and series.values[15] > 0.5
        assert series.values[16] == 0.0  # 5/2019

    def test_established_insecure_only_two_devices(self, passive_capture):
        """Only Wink Hub 2 and LG TV ever *establish* insecure suites."""
        from repro.tls.ciphersuites import REGISTRY

        establishers = set()
        for record in passive_capture.records:
            code = record.established_cipher_code
            if code is not None and REGISTRY[code].is_insecure:
                establishers.add(record.device)
        assert establishers == {"Wink Hub 2", "LG TV"}


class TestFigure3:
    @pytest.fixture(scope="class")
    def heatmap(self, passive_capture):
        return build_strong_established_heatmap(passive_capture)

    def test_eighteen_always_strong_hidden(self, heatmap):
        assert len(heatmap.hidden_devices()) == 18

    def test_ring_adopts_forward_secrecy_early(self, heatmap):
        series = heatmap.series["Ring Doorbell"]
        assert series.values[2] is not None and series.values[2] < 0.5
        assert series.values[3] is not None and series.values[3] > 0.9

    def test_amazon_mostly_without_fs(self, heatmap):
        series = heatmap.series["Amazon Echo Dot"]
        assert series.max_fraction() < 0.5


class TestAdoptionEvents:
    @pytest.fixture(scope="class")
    def events(self, passive_capture):
        return detect_adoption_events(passive_capture)

    def _find(self, events, device, kind):
        return [e for e in events if e.device == device and e.kind is kind]

    def test_tls13_adopters(self, events):
        adopters = {
            e.device: e.month
            for e in events
            if e.kind is AdoptionKind.TLS13_ADOPTED
        }
        assert adopters == {"Apple TV": 16, "Apple HomePod": 16, "Google Home Mini": 16}

    def test_blink_hub_tls12_transition(self, events):
        [event] = self._find(events, "Blink Hub", AdoptionKind.TLS12_ADOPTED)
        assert event.month == 6

    def test_weak_cipher_deprecations(self, events):
        droppers = {
            e.device: e.month for e in events if e.kind is AdoptionKind.WEAK_CIPHERS_DROPPED
        }
        assert droppers == {"Blink Hub": 16, "Smartthings Hub": 26}

    def test_apple_tv_weak_cipher_increase(self, events):
        [event] = self._find(events, "Apple TV", AdoptionKind.WEAK_CIPHERS_ADDED)
        assert event.month == 9  # 10/2018

    def test_forward_secrecy_adopters(self, events):
        adopters = {
            e.device: e.month
            for e in events
            if e.kind is AdoptionKind.FORWARD_SECRECY_ADOPTED
        }
        assert adopters == {
            "Ring Doorbell": 3,  # 4/2018
            "Apple TV": 14,  # 3/2019
            "Blink Hub": 21,  # 10/2019
            "Wink Hub 2": 21,  # 10/2019
            "Apple HomePod": 24,  # 1/2020
        }

    def test_month_labels(self):
        assert month_label(0) == "1/2018"
        assert month_label(16) == "5/2019"
        assert month_label(26) == "3/2020"
