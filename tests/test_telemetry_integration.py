"""Integration tests: telemetry wired through the pipeline and the CLI."""

from __future__ import annotations

import json
import re

import pytest

from repro import telemetry
from repro.cli import main
from repro.longitudinal import PassiveTraceGenerator
from repro.telemetry import to_prometheus


@pytest.fixture()
def default_telemetry():
    """Enable the process-wide runtime for a test, then restore disabled."""
    runtime = telemetry.configure(enabled=True)
    yield runtime
    telemetry.configure(enabled=False)


#: One Prometheus sample line (non-comment).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$"
)


class TestGeneratorTelemetry:
    def test_handshake_counts_match_capture(self, default_telemetry, testbed):
        capture = PassiveTraceGenerator(testbed, scale=2).generate()
        registry = default_telemetry.registry

        handshakes = registry.get("iotls_handshakes_total")
        assert handshakes.total() == len(capture.records)
        connections = registry.get("iotls_capture_connections_total")
        assert connections.total() == sum(record.count for record in capture.records)
        assert registry.get("iotls_trace_devices_total").total() == len(capture.devices())

    def test_spans_and_events_emitted(self, default_telemetry, testbed):
        PassiveTraceGenerator(testbed, scale=1).generate()
        tracer = default_telemetry.tracer
        roots = tracer.roots()
        assert [span.name for span in roots] == ["trace.generate"]
        assert len(roots[0].children) == 40  # one child span per device
        complete = default_telemetry.events.find("trace.complete")
        assert len(complete) == 1
        assert complete[0]["devices"] == 40

    def test_disabled_runtime_records_nothing(self, testbed):
        telemetry.configure(enabled=False)
        PassiveTraceGenerator(testbed, scale=1).generate()
        handshakes = telemetry.get_registry().get("iotls_handshakes_total")
        # Registrations may linger from earlier enabled runs; values must not.
        assert handshakes is None or handshakes.total() == 0
        assert len(telemetry.get_tracer().finished) == 0


class TestCliTelemetry:
    def test_trace_telemetry_snapshot(self, capsys, tmp_path):
        metrics_path = tmp_path / "m.json"
        assert (
            main(
                [
                    "trace",
                    "--scale",
                    "2",
                    "--telemetry",
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "telemetry summary:" in out
        assert "iotls_handshakes_total" in out

        # The snapshot's per-state handshake counts must sum to the number
        # of handshake attempts actually performed -- which, for a trace
        # run, is exactly the flow-record count of an identical capture.
        snapshot = json.loads(metrics_path.read_text())
        handshakes = snapshot["counters"]["iotls_handshakes_total"]
        capture = PassiveTraceGenerator(scale=2).generate()
        assert sum(entry["value"] for entry in handshakes["series"]) == len(capture.records)
        assert handshakes["total"] == len(capture.records)
        weighted = snapshot["counters"]["iotls_capture_connections_total"]["total"]
        assert weighted == sum(record.count for record in capture.records)

        # And the same registry renders valid Prometheus line protocol.
        text = to_prometheus(telemetry.get_registry())
        assert "# TYPE iotls_handshakes_total counter" in text
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert _SAMPLE_RE.match(line), line
        telemetry.configure(enabled=False)

    def test_metrics_out_implies_telemetry(self, capsys, tmp_path):
        metrics_path = tmp_path / "m.json"
        assert main(["trace", "--scale", "1", "--metrics-out", str(metrics_path)]) == 0
        assert metrics_path.exists()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["meta"]["command"] == "trace"
        assert snapshot["counters"]["iotls_handshakes_total"]["total"] > 0
        telemetry.configure(enabled=False)

    def test_trace_seed_threaded_into_export(self, capsys, tmp_path):
        json_path = tmp_path / "trace.json"
        assert (
            main(["trace", "--scale", "1", "--seed", "custom-seed", "--json", str(json_path)])
            == 0
        )
        payload = json.loads(json_path.read_text())
        assert payload["metadata"]["seed"] == "custom-seed"
        assert payload["metadata"]["scale"] == 1
        assert payload["metadata"]["flow_records"] == len(payload["records"])

        from repro.analysis.export import capture_from_records

        capture = capture_from_records(payload)
        assert len(capture.records) == len(payload["records"])

    def test_trace_seed_changes_flow_counts(self, capsys, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for seed, path in zip(["seed-a", "seed-b"], paths):
            assert main(["trace", "--scale", "1", "--seed", seed, "--json", str(path)]) == 0
        first, second = (json.loads(path.read_text()) for path in paths)
        counts = lambda payload: [entry["count"] for entry in payload["records"]]
        assert counts(first) != counts(second)

    def test_telemetry_demo_smoke(self, capsys):
        assert main(["telemetry-demo"]) == 0
        out = capsys.readouterr().out
        assert "telemetry demo:" in out
        assert "prometheus sample" in out
        assert "# TYPE" in out
        telemetry.configure(enabled=False)

    def test_default_run_leaves_telemetry_disabled(self, capsys):
        assert main(["devices"]) == 0
        assert not telemetry.enabled()
        assert "telemetry summary:" not in capsys.readouterr().out


class TestProbeTelemetry:
    def test_probe_iterations_counted(self, default_telemetry, testbed):
        from repro.core import RootStoreProber

        device = testbed.device("Wink Hub 2")
        report = RootStoreProber(testbed).probe_device(device)
        registry = default_telemetry.registry
        iterations = registry.get("iotls_probe_iterations_total")
        total_probes = len(report.common_results) + len(report.deprecated_results)
        assert iterations.total() == total_probes
        conclusive = iterations.value(outcome="present") + iterations.value(outcome="absent")
        assert conclusive == report.common_tally[1] + report.deprecated_tally[1]
        assert [span.name for span in default_telemetry.tracer.roots()] == ["probe.device"]
