"""Run-manifest tests: digests, the deterministic metrics slice, and the
worker-invariance guarantee (manifests byte-identical across --workers)."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.telemetry import (
    MANIFEST_SCHEMA,
    MetricsRegistry,
    artifact_digest,
    build_manifest,
    deterministic_metrics,
    manifest_digest,
    write_manifest,
)
from repro.telemetry.provenance import canonical_json, config_digest


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.configure(enabled=False)
    yield
    telemetry.configure(enabled=False)


class TestArtifactDigest:
    def test_identifies_by_basename_only(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        (tmp_path / "a" / "out.json").write_text("{}")
        (tmp_path / "b" / "out.json").write_text("{}")
        first = artifact_digest(tmp_path / "a" / "out.json")
        second = artifact_digest(tmp_path / "b" / "out.json")
        assert first == second  # directory must not leak into provenance
        assert first["name"] == "out.json"
        assert first["bytes"] == 2

    def test_digest_tracks_content(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("one")
        before = artifact_digest(path)["blake2s"]
        path.write_text("two")
        assert artifact_digest(path)["blake2s"] != before


class TestDeterministicMetrics:
    def test_keeps_counters_and_histogram_counts_only(self):
        registry = MetricsRegistry()
        registry.counter("iotls_handshakes_total").inc(3, state="established")
        registry.gauge("iotls_trace_last_run_seconds").set(0.5)
        registry.histogram("iotls_handshake_seconds").observe(0.001)
        slice_ = deterministic_metrics(registry)
        assert slice_["counters"]["iotls_handshakes_total"]["total"] == 3
        assert "iotls_trace_last_run_seconds" not in str(slice_)  # gauges excluded
        series = slice_["histogram_counts"]["iotls_handshake_seconds"]["series"]
        assert series == [{"labels": {}, "count": 1}]
        assert "sum" not in str(series)  # latency-dependent fields excluded

    def test_span_duration_histogram_excluded(self):
        registry = MetricsRegistry()
        registry.histogram("iotls_span_duration_seconds").observe(0.5, span="x")
        slice_ = deterministic_metrics(registry)
        assert slice_["histogram_counts"] == {}


class TestManifest:
    def test_shape_and_digest_stability(self):
        manifest = build_manifest("trace", params={"scale": 1, "seed": "s"})
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["determinism"]["workers_invariant"] is True
        assert manifest["catalog"]["devices"] == 40
        assert manifest_digest(manifest) == manifest_digest(
            build_manifest("trace", params={"scale": 1, "seed": "s"})
        )

    def test_params_change_the_digest(self):
        one = build_manifest("trace", params={"scale": 1, "seed": "s"})
        two = build_manifest("trace", params={"scale": 2, "seed": "s"})
        assert manifest_digest(one) != manifest_digest(two)
        assert one["config"]["digest"] != two["config"]["digest"]

    def test_config_digest_covers_version(self):
        assert config_digest("trace", {}, "1.0.0") != config_digest("trace", {}, "1.0.1")

    def test_written_bytes_are_the_digested_bytes(self, tmp_path):
        manifest = build_manifest("pcap", params={"scale": 1, "limit": None})
        path = write_manifest(manifest, tmp_path / "deep" / "manifest.json")
        assert path.read_text() == canonical_json(manifest)
        loaded = json.loads(path.read_text())
        assert manifest_digest(loaded) == manifest_digest(manifest)


class TestWorkerInvariance:
    """The acceptance criterion: byte-identical manifests for workers 1/2/4."""

    @pytest.mark.parametrize("workers", ["2", "4"])
    def test_trace_manifest_byte_identical(self, tmp_path, workers, capsys):
        manifests = {}
        for n in ("1", workers):
            out = tmp_path / f"w{n}"
            status = main(
                [
                    "trace",
                    "--scale",
                    "1",
                    "--seed",
                    "manifest-invariance",
                    "--workers",
                    n,
                    "--telemetry",
                    "--manifest",
                    str(out / "manifest.json"),
                    "--json",
                    str(out / "trace.json"),
                ]
            )
            assert status == 0
            manifests[n] = (out / "manifest.json").read_bytes()
        capsys.readouterr()
        assert manifests["1"] == manifests[workers]

    def test_digest_always_printed_without_flag(self, capsys):
        status = main(["trace", "--scale", "1", "--seed", "manifest-print"])
        assert status == 0
        assert "run manifest digest: " in capsys.readouterr().out
