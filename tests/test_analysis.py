"""Tests for the analysis layer (Tables 1, 3, 8; Figure 4; comparison)."""

from __future__ import annotations

from repro.analysis import (
    analyze_revocation,
    compare_with_prior_work,
    distrusted_trusted_by,
    render_table,
    staleness_by_device,
    table1_rows,
    table3_rows,
)


class TestTable1:
    def test_forty_rows(self):
        assert len(table1_rows()) == 40

    def test_passive_only_marked(self):
        markers = {device: marker for _, device, marker in table1_rows()}
        assert markers["Blink Camera"] == "*"
        assert markers["Blink Hub"] == ""

    def test_category_counts_in_labels(self):
        labels = {category for category, _, _ in table1_rows()}
        assert "Cameras (n = 7)" in labels
        assert "TV (n = 5)" in labels


class TestTable3:
    def test_platform_rows(self, universe):
        rows = {row[0]: row for row in table3_rows(universe)}
        assert rows["Ubuntu"][1] == 9 and rows["Ubuntu"][2] == 2012
        assert rows["Android"][1] == 10 and rows["Android"][2] == 2010
        assert rows["Mozilla"][1] == 47 and rows["Mozilla"][2] == 2013
        assert rows["Microsoft"][1] == 15 and rows["Microsoft"][2] == 2017


class TestTable8:
    def test_paper_exact_device_sets(self, passive_capture):
        summary = analyze_revocation(passive_capture)
        assert summary.crl_devices == ["Samsung TV"]
        assert summary.ocsp_devices == ["Apple HomePod", "Apple TV", "Samsung TV"]
        assert set(summary.stapling_devices) == {
            "Fire TV",
            "Samsung TV",
            "Amazon Echo Spot",
            "Apple HomePod",
            "Apple TV",
            "Harman Invoke",
            "Amazon Echo Dot",
            "Wink Hub 2",
            "Google Home Mini",
            "LG TV",
            "Samsung Fridge",
            "Smartthings Hub",
        }

    def test_twenty_eight_devices_never_check(self, passive_capture):
        summary = analyze_revocation(passive_capture)
        assert len(summary.non_checking_devices) == 28

    def test_rows_render_counts(self, passive_capture):
        rows = analyze_revocation(passive_capture).table8_rows()
        assert rows[0][1].endswith("(1)")
        assert rows[1][1].endswith("(3)")
        assert rows[2][1].endswith("(12)")


class TestFigure4:
    def test_staleness_only_for_amenable(self, campaign_results, universe):
        staleness = staleness_by_device(campaign_results.probes, universe)
        assert len(staleness) == 8

    def test_histogram_rows_sorted(self, campaign_results, universe):
        for entry in staleness_by_device(campaign_results.probes, universe):
            years = [year for year, _ in entry.histogram_rows()]
            assert years == sorted(years)

    def test_ghm_fewest_stale_roots(self, campaign_results, universe):
        staleness = {
            s.device: s.total_stale
            for s in staleness_by_device(campaign_results.probes, universe)
        }
        assert staleness["Google Home Mini"] == min(staleness.values())

    def test_distrusted_mapping_names_real_cas(self, campaign_results, universe):
        trusted = distrusted_trusted_by(campaign_results.probes, universe)
        all_names = {name for names in trusted.values() for name in names}
        assert all_names <= {
            "TURKTRUST Elektronik Sertifika Hizmet Saglayicisi",
            "CNNIC ROOT",
            "Certification Authority of WoSign",
            "Certinomis - Root CA",
        }


class TestComparison:
    def test_shape_matches_paper(self, passive_capture):
        comparison = compare_with_prior_work(passive_capture)
        # IoT devices lag the web on TLS 1.3 ...
        assert comparison.tls13_fraction < comparison.web_tls13_fraction / 2
        # ... and vastly exceed it on RC4 advertisement.
        assert comparison.rc4_fraction > comparison.web_rc4_fraction * 4
        assert 0.05 < comparison.tls13_fraction < 0.30
        assert 0.5 < comparison.rc4_fraction < 0.85

    def test_summary_renders(self, passive_capture):
        text = compare_with_prior_work(passive_capture).summary()
        assert "TLS 1.3" in text and "RC4" in text

    def test_empty_window(self, passive_capture):
        comparison = compare_with_prior_work(passive_capture, from_month=999)
        assert comparison.tls13_fraction == 0.0


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["a", "long header"], [("x", 1), ("yy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", "+"}
        assert all(len(line) == len(lines[0]) for line in lines[1:])
