"""Unit tests for the telemetry subsystem: metrics, spans, events, exporters."""

from __future__ import annotations

import json
import re

import pytest

from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    metrics_snapshot,
    summary_table,
    to_prometheus,
    write_snapshot,
)


# ----------------------------------------------------------------------
# Counters / gauges / histograms
# ----------------------------------------------------------------------
class TestCounters:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.total() == 5

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("handshakes_total")
        counter.inc(state="established")
        counter.inc(2, state="client_rejected")
        counter.inc(state="established")
        assert counter.value(state="established") == 2
        assert counter.value(state="client_rejected") == 2
        assert counter.value(state="no_response") == 0
        assert counter.total() == 4

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2
        assert len(counter.series()) == 1

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_labelled(self):
        gauge = MetricsRegistry().gauge("phase_seconds")
        gauge.set(1.5, phase="audit")
        gauge.set(0.5, phase="probe")
        assert gauge.value(phase="audit") == 1.5
        assert gauge.value(phase="probe") == 0.5


class TestHistograms:
    def test_bucket_placement(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", buckets=(1.0, 2.0, 5.0))
        hist.observe(0.5)   # le=1
        hist.observe(1.0)   # le=1 (bounds are inclusive)
        hist.observe(3.0)   # le=5
        hist.observe(10.0)  # +Inf
        assert hist.bucket_counts() == [2, 0, 1, 1]
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(14.5)

    def test_cumulative_counts(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        state = hist.series()[()]
        assert state.cumulative() == [1, 2, 3]

    def test_labelled_series(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(0.1, span="a")
        hist.observe(0.2, span="b")
        assert hist.count(span="a") == 1
        assert hist.count(span="b") == 1
        assert hist.count(span="c") == 0

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestDisabledRegistry:
    def test_all_instruments_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        hist = registry.histogram("h", buckets=(1.0,))
        counter.inc(5, state="x")
        gauge.set(3)
        hist.observe(0.5)
        assert counter.total() == 0
        assert gauge.value() == 0
        assert hist.count() == 0
        assert counter.series() == {}

    def test_reenabling_records_again(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        counter.inc()
        registry.enabled = True
        counter.inc()
        assert counter.total() == 1

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.reset()
        assert "c_total" in registry
        assert registry.counter("c_total").total() == 0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_times_and_finishes(self):
        tracer = Tracer()
        with tracer.span("work", device="LG TV") as span:
            assert not span.finished
        assert span.finished
        assert span.duration >= 0
        assert span.attributes == {"device": "LG TV"}
        assert list(tracer.finished) == [span]

    def test_nesting_builds_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert inner.parent is outer
        assert outer.children == [inner]
        assert inner.depth() == 1
        # Children complete (and are buffered) before their parents.
        assert list(tracer.finished) == [inner, outer]
        assert tracer.roots() == [outer]

    def test_annotate_mid_span(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.annotate(flow_records=7)
        assert span.attributes["flow_records"] == 7

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("broken") as span:
                raise RuntimeError("boom")
        assert span.finished
        assert tracer.current() is None

    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work", x=1) as span:
            assert span is NULL_SPAN
            span.annotate(y=2)  # must not raise or record
        assert len(tracer.finished) == 0

    def test_registry_histogram_fed_by_spans(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("handshake"):
            pass
        hist = registry.get("iotls_span_duration_seconds")
        assert hist is not None
        assert hist.count(span="handshake") == 1

    def test_finished_buffer_is_bounded(self):
        tracer = Tracer(keep=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.finished] == ["s2", "s3", "s4"]


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
class TestEventLog:
    def test_log_and_tail(self):
        events = EventLog()
        events.info("trace.complete", flow_records=12)
        events.warning("probe.flaky", device="Wink Hub 2")
        tail = events.tail()
        assert [entry["event"] for entry in tail] == ["trace.complete", "probe.flaky"]
        assert tail[0]["flow_records"] == 12
        assert tail[0]["seq"] < tail[1]["seq"]

    def test_level_threshold_filters(self):
        events = EventLog(level="warning")
        events.debug("noise")
        events.info("still noise")
        events.error("signal")
        assert [entry["event"] for entry in events.tail()] == ["signal"]

    def test_ring_buffer_bounded(self):
        events = EventLog(tail=2)
        for index in range(5):
            events.info(f"e{index}")
        assert [entry["event"] for entry in events.tail()] == ["e3", "e4"]

    def test_disabled_is_noop(self):
        events = EventLog(enabled=False)
        events.error("dropped")
        assert len(events) == 0

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            EventLog(level="loud")
        with pytest.raises(ValueError):
            EventLog().log("loud", "x")

    def test_jsonl_file_output(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = EventLog(path=path)
        events.info("a", n=1)
        events.info("b", n=2)
        events.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["event"] for entry in lines] == ["a", "b"]
        assert lines[1]["n"] == 2

    def test_find(self):
        events = EventLog()
        events.info("x")
        events.info("y")
        events.info("x", k=1)
        assert len(events.find("x")) == 2


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("iotls_handshakes_total", "Handshakes by state.")
    counter.inc(3, state="established")
    counter.inc(1, state="client_rejected")
    registry.gauge("iotls_trace_records_per_second").set(1234.5)
    hist = registry.histogram("iotls_handshake_seconds", buckets=(0.001, 0.01))
    hist.observe(0.0005)
    hist.observe(0.5)
    return registry


#: One Prometheus sample line: name, optional {labels}, numeric value.
#: Label values may contain escaped quotes/backslashes/newlines (\" \\ \n).
_LABEL_VALUE = r"\"(?:\\.|[^\"\\])*\""
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE
    + r"(,[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE + r")*\})?"
    r" [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$"
)


class TestPrometheusExport:
    def test_every_line_is_valid_protocol(self):
        text = to_prometheus(_populated_registry())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$", line), line
            else:
                assert _SAMPLE_RE.match(line), line

    def test_type_headers_present(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE iotls_handshakes_total counter" in text
        assert "# TYPE iotls_trace_records_per_second gauge" in text
        assert "# TYPE iotls_handshake_seconds histogram" in text

    def test_counter_samples(self):
        text = to_prometheus(_populated_registry())
        assert 'iotls_handshakes_total{state="established"} 3' in text
        assert 'iotls_handshakes_total{state="client_rejected"} 1' in text

    def test_histogram_cumulative_buckets(self):
        text = to_prometheus(_populated_registry())
        assert 'iotls_handshake_seconds_bucket{le="0.001"} 1' in text
        assert 'iotls_handshake_seconds_bucket{le="0.01"} 1' in text
        assert 'iotls_handshake_seconds_bucket{le="+Inf"} 2' in text
        assert "iotls_handshake_seconds_count 2" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(device='Say "hi"\nnow')
        text = to_prometheus(registry)
        assert r'device="Say \"hi\"\nnow"' in text

    def test_backslash_escaped_before_quotes_and_newlines(self):
        # A literal backslash must become \\ and must not swallow the
        # escapes of " and \n that follow it.
        registry = MetricsRegistry()
        registry.counter("c_total").inc(path='C:\\dir\n"x"')
        text = to_prometheus(registry)
        assert r'path="C:\\dir\n\"x\""' in text
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert _SAMPLE_RE.match(line), line

    def test_explicit_inf_bucket_renders_single_overflow_line(self):
        # A bucket layout that names +Inf explicitly must not produce a
        # second le="+Inf" sample, and the bound must render as "+Inf"
        # (repr(inf) would give "inf", which scrapers reject).
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.1, float("inf")))
        hist.observe(0.05)
        hist.observe(5.0)
        text = to_prometheus(registry)
        assert text.count('le="+Inf"') == 1
        assert 'le="inf"' not in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert _SAMPLE_RE.match(line), line

    def test_snapshot_roundtrip_over_full_catalog(self):
        # Every metric the pipeline emits must survive
        # snapshot -> merge_snapshot -> to_prometheus byte-for-byte:
        # the shape workers use to ship telemetry home.
        registry = MetricsRegistry()
        registry.counter("iotls_handshakes_total").inc(3, state="established")
        registry.counter("iotls_handshakes_total").inc(1, state="client_rejected")
        registry.counter("iotls_capture_records_total").inc(40)
        registry.counter("iotls_capture_connections_total").inc(700)
        registry.counter("iotls_capture_revocation_events_total").inc(2, method="crl")
        registry.counter("iotls_negotiated_versions_total").inc(5, version="TLS 1.2")
        registry.counter("iotls_campaign_devices_total").inc(32)
        registry.counter("iotls_probe_certificates_total").inc(9, outcome="present")
        registry.gauge("iotls_trace_last_run_seconds").set(0.52)
        registry.gauge("iotls_trace_records_per_second").set(7432.1)
        registry.gauge("iotls_campaign_phase_seconds").set(0.2, phase="interception")
        registry.histogram("iotls_handshake_seconds").observe(0.0001)
        registry.histogram("iotls_span_duration_seconds").observe(0.5, span="trace.generate")
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(metrics_snapshot(registry))
        assert to_prometheus(rebuilt) == to_prometheus(registry)


class TestSnapshot:
    def test_shape_and_serialisable(self):
        snapshot = metrics_snapshot(_populated_registry(), extra={"command": "trace"})
        assert snapshot["schema"] == "iotls-telemetry/1"
        assert snapshot["meta"] == {"command": "trace"}
        handshakes = snapshot["counters"]["iotls_handshakes_total"]
        assert handshakes["total"] == 4
        assert {tuple(s["labels"].items()) for s in handshakes["series"]} == {
            (("state", "established"),),
            (("state", "client_rejected"),),
        }
        hist = snapshot["histograms"]["iotls_handshake_seconds"]
        assert hist["series"][0]["count"] == 2
        assert hist["series"][0]["cumulative_bucket_counts"] == [1, 1, 2]
        json.dumps(snapshot)  # must be serialisable

    def test_write_snapshot(self, tmp_path):
        path = write_snapshot(_populated_registry(), tmp_path / "deep" / "m.json")
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["iotls_handshakes_total"]["total"] == 4


class TestSummaryTable:
    def test_lists_every_series(self):
        table = summary_table(_populated_registry())
        assert "iotls_handshakes_total" in table
        assert "state=established" in table
        assert "count=2" in table  # histogram row

    def test_empty_registry(self):
        assert summary_table(MetricsRegistry()) == "(no telemetry recorded)"
