"""reprolint: the AST invariant checker (engine, rules, baseline, CLI).

Each rule gets a good/bad fixture pair, so the rule's boundary is
pinned from both sides: the bad snippet must fire and the good snippet
-- the idiom the codebase actually uses -- must stay silent.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as iotls_main
from repro.lint import (
    Baseline,
    BaselineEntry,
    LintReport,
    all_rules,
    render,
    run_lint,
    select_rules,
)
from repro.lint.baseline import TODO_JUSTIFICATION
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_source(tmp_path: Path, source: str, **kwargs) -> LintReport:
    """Lint one snippet as a standalone file rooted at ``tmp_path``."""
    target = tmp_path / "snippet.py"
    target.write_text(source)
    return run_lint([target], root=tmp_path, **kwargs)


def codes(report: LintReport) -> list[str]:
    return [violation.code for violation in report.violations]


# ----------------------------------------------------------------------
# Rule fixtures: determinism family
# ----------------------------------------------------------------------
class TestRL001UnseededRng:
    def test_bad_unseeded_random(self, tmp_path):
        report = lint_source(tmp_path, "import random\nrng = random.Random()\n")
        assert codes(report) == ["RL001"]

    def test_bad_global_rng_function(self, tmp_path):
        report = lint_source(tmp_path, "import random\nx = random.choice([1, 2])\n")
        assert codes(report) == ["RL001"]

    def test_bad_from_import(self, tmp_path):
        report = lint_source(tmp_path, "from random import Random\nrng = Random()\n")
        assert codes(report) == ["RL001"]

    def test_good_keyed_seed(self, tmp_path):
        source = (
            "import random\n"
            "def flow(seed, device, month):\n"
            '    return random.Random(f"{seed}:{device}:{month}").random()\n'
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_good_instance_methods_not_confused_with_module(self, tmp_path):
        source = (
            "import random\n"
            'rng = random.Random("seeded")\n'
            "x = rng.random()\n"
            "y = rng.choice([1, 2])\n"
        )
        assert codes(lint_source(tmp_path, source)) == []


class TestRL002WallClock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nnow = time.time()\n",
            "from time import time\nnow = time()\n",
            "from datetime import datetime\nnow = datetime.now()\n",
            "import datetime\nnow = datetime.datetime.utcnow()\n",
            "import os\nnoise = os.urandom(8)\n",
            "import uuid\nrun_id = uuid.uuid4()\n",
        ],
    )
    def test_bad_nondeterministic_sources(self, tmp_path, source):
        assert codes(lint_source(tmp_path, source)) == ["RL002"]

    def test_good_monotonic_and_simulated_time(self, tmp_path):
        source = (
            "from time import perf_counter\n"
            "from datetime import datetime\n"
            "started = perf_counter()\n"
            "when = datetime(2018, 1, 1)\n"
            "parsed = datetime.fromisoformat('2018-01-01')\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_clock_boundary_module_is_exempt(self, tmp_path):
        boundary = tmp_path / "src" / "repro" / "telemetry"
        boundary.mkdir(parents=True)
        target = boundary / "clock.py"
        target.write_text("import time\nnow = time.time()\n")
        report = run_lint([target], root=tmp_path)
        assert codes(report) == []


class TestRL003SetIteration:
    @pytest.mark.parametrize(
        "source",
        [
            "for item in {'b', 'a'}:\n    print(item)\n",
            "names = list({record for record in []})\n",
            "out = ','.join(set('abc'))\n",
            "rows = [x for x in set([1, 2])]\n",
        ],
    )
    def test_bad_hash_order_iteration(self, tmp_path, source):
        assert codes(lint_source(tmp_path, source)) == ["RL003"]

    def test_good_sorted_wrapping(self, tmp_path):
        source = (
            "devices = sorted({r for r in ['b', 'a']})\n"
            "for name in sorted(set('abc')):\n"
            "    print(name)\n"
            "n = len({1, 2})\n"
            "present = 'a' in {'a', 'b'}\n"
        )
        assert codes(lint_source(tmp_path, source)) == []


# ----------------------------------------------------------------------
# Rule fixtures: telemetry family
# ----------------------------------------------------------------------
class TestRL010CounterDiscipline:
    def test_bad_counter_in_stream_scope(self, tmp_path):
        source = (
            "def stream_into(registry):\n"
            "    registry.counter('iotls_x_total', 'help').inc()\n"
        )
        assert codes(lint_source(tmp_path, source)) == ["RL010"]

    def test_bad_direct_counter_construction(self, tmp_path):
        source = (
            "from repro.telemetry.metrics import Counter\n"
            "c = Counter('iotls_x_total', 'help', None)\n"
        )
        assert codes(lint_source(tmp_path, source)) == ["RL010"]

    def test_good_gauges_in_stream_scope(self, tmp_path):
        source = (
            "def stream_into(registry, throughput):\n"
            "    registry.gauge('iotls_stream_records_per_second', 'h').set(throughput)\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_good_counter_outside_stream_scope(self, tmp_path):
        source = (
            "def generate(registry):\n"
            "    registry.counter('iotls_handshakes_total', 'h').inc()\n"
        )
        assert codes(lint_source(tmp_path, source)) == []


class TestRL011SpanContextManager:
    def test_bad_span_assigned(self, tmp_path):
        source = "def run(tracer):\n    span = tracer.span('leaky')\n    return span\n"
        assert codes(lint_source(tmp_path, source)) == ["RL011"]

    def test_good_span_with_statement(self, tmp_path):
        source = (
            "def run(tracer):\n"
            "    with tracer.span('ok', device='d') as span:\n"
            "        span.annotate(n=1)\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_good_multiple_with_items(self, tmp_path):
        source = (
            "def run(a, b):\n"
            "    with a.span('one'), b.span('two'):\n"
            "        pass\n"
        )
        assert codes(lint_source(tmp_path, source)) == []


class TestRL012UnthrottledHeartbeat:
    def test_bad_emit_now_outside_boundary(self, tmp_path):
        source = "def run(reporter):\n    reporter.emit_now(reason='manual')\n"
        assert codes(lint_source(tmp_path, source)) == ["RL012"]

    def test_bad_progress_event_outside_boundary(self, tmp_path):
        source = "def run(events):\n    events.debug('progress.heartbeat', done=3)\n"
        assert codes(lint_source(tmp_path, source)) == ["RL012"]

    def test_bad_heartbeat_event_via_log_method(self, tmp_path):
        source = "def run(events):\n    events.log('info', 'heartbeat.tick')\n"
        assert codes(lint_source(tmp_path, source)) == ["RL012"]

    def test_good_advance_through_reporter(self, tmp_path):
        source = (
            "def run(reporter):\n"
            "    reporter.advance(1, stage='trace.device')\n"
            "    reporter.finish()\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_good_other_event_names(self, tmp_path):
        source = (
            "def run(events):\n"
            "    events.info('trace.complete', records=5)\n"
            "    events.debug('campaign.phase_complete', phase='audit')\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_progress_boundary_module_is_exempt(self, tmp_path):
        boundary = tmp_path / "src" / "repro" / "telemetry"
        boundary.mkdir(parents=True)
        target = boundary / "progress.py"
        target.write_text(
            "def beat(self):\n"
            "    self.emit_now(reason='interval')\n"
            "    self.events.debug('progress.heartbeat', done=1)\n"
        )
        report = run_lint([target], root=tmp_path)
        assert codes(report) == []


class TestRL013LedgerWriteBoundary:
    @pytest.mark.parametrize(
        "source",
        [
            "def save(entry, ledger_path):\n"
            "    with open(ledger_path, 'a') as fh:\n"
            "        fh.write(entry)\n",
            "from pathlib import Path\n"
            "Path('.iotls/ledger.jsonl').write_text('{}')\n",
            "def save(ledger_path):\n"
            "    ledger_path.open('w').write('entry')\n",
            "import os\n"
            "fd = os.open('ledger.jsonl', os.O_WRONLY | os.O_APPEND)\n",
        ],
    )
    def test_bad_ledger_write_outside_boundary(self, tmp_path, source):
        assert codes(lint_source(tmp_path, source)) == ["RL013"]

    def test_good_reads_and_unrelated_writes(self, tmp_path):
        source = (
            "from pathlib import Path\n"
            "def load(ledger_path):\n"
            "    return Path(ledger_path).read_text()\n"
            "def dump(manifest_path, payload):\n"
            "    with open(manifest_path, 'w') as fh:\n"
            "        fh.write(payload)\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_good_append_through_the_boundary_api(self, tmp_path):
        source = (
            "from repro.telemetry import ledger as run_ledger\n"
            "def record(entry, path):\n"
            "    run_ledger.append_entry(entry, path)\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_ledger_boundary_module_is_exempt(self, tmp_path):
        boundary = tmp_path / "src" / "repro" / "telemetry"
        boundary.mkdir(parents=True)
        target = boundary / "ledger.py"
        target.write_text(
            "import os\n"
            "def append(line, ledger_path):\n"
            "    fd = os.open(ledger_path, os.O_WRONLY | os.O_APPEND)\n"
        )
        report = run_lint([target], root=tmp_path)
        assert codes(report) == []


# ----------------------------------------------------------------------
# Rule fixtures: API hygiene family
# ----------------------------------------------------------------------
class TestRL020DeprecatedAliases:
    def test_bad_import_of_removed_alias(self, tmp_path):
        source = "from repro.analysis.export import campaign_to_dict\n"
        assert "RL020" in codes(lint_source(tmp_path, source))

    def test_bad_attribute_reference(self, tmp_path):
        source = (
            "from repro.analysis import export\n"
            "payload = export.probe_report_to_dict(None)\n"
        )
        assert "RL020" in codes(lint_source(tmp_path, source))

    def test_good_document_names(self, tmp_path):
        source = (
            "from repro.analysis.export import campaign_to_document\n"
            "payload = campaign_to_document(None)\n"
        )
        assert codes(lint_source(tmp_path, source)) == []


class TestRL021ApiSurface:
    def _project(self, tmp_path, exported, recorded) -> Path:
        (tmp_path / "tools").mkdir()
        (tmp_path / "tools" / "api_surface.json").write_text(
            json.dumps({"schema": "iotls-api-surface/1", "modules": {"mypkg": recorded}})
        )
        package = tmp_path / "src" / "mypkg"
        package.mkdir(parents=True)
        target = package / "__init__.py"
        names = ", ".join(repr(name) for name in exported)
        target.write_text(f"__all__ = [{names}]\n")
        return target

    def test_bad_symbol_missing_from_baseline(self, tmp_path):
        target = self._project(tmp_path, ["run_lint", "new_thing"], ["run_lint"])
        report = run_lint([target], root=tmp_path)
        assert codes(report) == ["RL021"]
        assert "new_thing" in report.violations[0].message

    def test_good_surface_in_sync(self, tmp_path):
        target = self._project(tmp_path, ["run_lint"], ["run_lint"])
        assert codes(run_lint([target], root=tmp_path)) == []

    def test_ungated_module_is_skipped(self, tmp_path):
        target = self._project(tmp_path, ["anything"], ["anything"])
        other = tmp_path / "src" / "otherpkg.py"
        other.write_text("__all__ = ['not_gated']\n")
        assert codes(run_lint([other], root=tmp_path)) == []


# ----------------------------------------------------------------------
# Rule fixtures: exception hygiene family
# ----------------------------------------------------------------------
class TestRL030ExceptionHygiene:
    def test_bad_bare_except(self, tmp_path):
        source = "try:\n    x = 1\nexcept:\n    x = 2\n"
        assert codes(lint_source(tmp_path, source)) == ["RL030"]

    def test_bad_swallowed_exception(self, tmp_path):
        source = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        assert codes(lint_source(tmp_path, source)) == ["RL030"]

    def test_good_typed_handler(self, tmp_path):
        source = (
            "try:\n    x = 1\n"
            "except (OSError, ValueError) as exc:\n"
            "    raise RuntimeError('context') from exc\n"
        )
        assert codes(lint_source(tmp_path, source)) == []

    def test_good_broad_handler_that_handles(self, tmp_path):
        source = (
            "def run(log):\n"
            "    try:\n        x = 1\n"
            "    except Exception as exc:\n"
            "        log.error('failed', error=str(exc))\n"
            "        raise\n"
        )
        assert codes(lint_source(tmp_path, source)) == []


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        report = lint_source(tmp_path, "def broken(:\n")
        assert codes(report) == ["RL000"]

    def test_select_and_ignore(self, tmp_path):
        source = "import random, time\nr = random.Random()\nt = time.time()\n"
        only_rng = lint_source(tmp_path, source, select=["RL001"])
        assert codes(only_rng) == ["RL001"]
        no_rng = lint_source(tmp_path, source, ignore=["RL001"])
        assert codes(no_rng) == ["RL002"]

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="RL999"):
            select_rules(select=["RL999"])

    def test_rule_catalog_covers_all_families(self):
        rules = all_rules()
        assert {rule.family for rule in rules} == {
            "determinism", "telemetry", "api", "exceptions", "concurrency"
        }
        assert len(rules) >= 8

    def test_project_rules_only_run_whole_program(self, tmp_path):
        """A project-scope rule stays silent without whole_program=True."""
        source = (
            "import threading\n"
            "_L = threading.Lock()\n"
            "G = 0\n"
            "def w():\n"
            "    global G\n"
            "    G += 1\n"
            "threading.Thread(target=w).start()\n"
        )
        plain = lint_source(tmp_path, source, select=["RL040"])
        assert codes(plain) == []
        whole = lint_source(tmp_path, source, select=["RL040"], whole_program=True)
        assert codes(whole) == ["RL040"]

    def test_repo_is_lint_clean_with_committed_baseline(self):
        """The acceptance gate: HEAD has no active violations."""
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tools"],
            root=REPO_ROOT,
            baseline=baseline,
        )
        assert report.ok, [v.to_dict() for v in report.violations]
        assert not report.stale_baseline, [e.to_dict() for e in report.stale_baseline]
        assert not report.unjustified_baseline

    def test_repo_is_whole_program_clean_at_head(self):
        """The RL04x/RL022 acceptance gate: the graph pass finds nothing
        new at HEAD (true findings were fixed in serve/parallel, not
        baselined)."""
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tools"],
            root=REPO_ROOT,
            baseline=baseline,
            whole_program=True,
        )
        assert report.ok, [v.to_dict() for v in report.violations]
        project_codes = {"RL022", "RL040", "RL041", "RL042", "RL043"}
        assert not [
            v for v in report.suppressed if v.code in project_codes
        ], "project-scope findings must be fixed, not baselined"

    def test_jobs_output_matches_serial(self, tmp_path):
        """--jobs N must not change findings or their order."""
        (tmp_path / "a.py").write_text("import time\nnow = time.time()\n")
        (tmp_path / "b.py").write_text("import random\nr = random.Random()\n")
        serial = run_lint([tmp_path], root=tmp_path)
        parallel = run_lint([tmp_path], root=tmp_path, jobs=2)
        assert [v.to_dict() for v in serial.violations] == [
            v.to_dict() for v in parallel.violations
        ]
        assert serial.files_checked == parallel.files_checked == 2


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
class TestBaseline:
    def test_suppression_round_trip(self, tmp_path):
        source = "import time\nnow = time.time()\n"
        first = lint_source(tmp_path, source)
        assert codes(first) == ["RL002"]

        baseline = Baseline(entries=[], path=tmp_path / "baseline.json")
        rebuilt = baseline.rebuilt_from(first.violations)
        saved = rebuilt.save()
        loaded = Baseline.load(saved)
        assert [e.justification for e in loaded.entries] == [TODO_JUSTIFICATION]

        second = lint_source(tmp_path, source, baseline=loaded)
        assert second.ok
        assert codes(second) == []
        assert [v.code for v in second.suppressed] == ["RL002"]

    def test_stale_entry_detected(self, tmp_path):
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    code="RL002",
                    path="snippet.py",
                    snippet="now = time.time()",
                    justification="was needed once",
                )
            ]
        )
        report = lint_source(tmp_path, "x = 1\n", baseline=baseline)
        assert report.ok
        assert [e.snippet for e in report.stale_baseline] == ["now = time.time()"]

    def test_line_shift_does_not_invalidate_suppression(self, tmp_path):
        source = "import time\nnow = time.time()\n"
        baseline = Baseline(entries=[], path=tmp_path / "b.json").rebuilt_from(
            lint_source(tmp_path, source).violations
        )
        shifted = "import time\n\n\n# comment\nnow = time.time()\n"
        report = lint_source(tmp_path, shifted, baseline=baseline)
        assert report.ok and [v.code for v in report.suppressed] == ["RL002"]

    def test_justification_preserved_on_rebuild(self, tmp_path):
        source = "import time\nnow = time.time()\n"
        violations = lint_source(tmp_path, source).violations
        first = Baseline(entries=[], path=tmp_path / "b.json").rebuilt_from(violations)
        entry = first.entries[0]
        first.entries = [
            BaselineEntry(entry.code, entry.path, entry.snippet, "a real reason")
        ]
        again = first.rebuilt_from(violations)
        assert [e.justification for e in again.entries] == ["a real reason"]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    @pytest.fixture()
    def failing_report(self, tmp_path):
        return lint_source(tmp_path, "import time\nnow = time.time()\n")

    def test_json_schema(self, failing_report):
        payload = json.loads(render(failing_report, "json"))
        assert payload["schema"] == "reprolint-report/1"
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        [violation] = payload["violations"]
        assert set(violation) == {
            "code", "path", "line", "col", "message", "snippet",
            "end_line", "end_col",
        }
        assert violation["code"] == "RL002"
        assert violation["line"] == 2
        assert payload["rules"]["RL002"]["family"] == "determinism"
        assert payload["suppressed"] == []
        assert payload["stale_baseline"] == []

    def test_github_annotations(self, failing_report):
        text = render(failing_report, "github")
        assert "::error file=snippet.py,line=2," in text
        assert "title=reprolint RL002::" in text
        assert "::notice title=reprolint::" in text

    def test_github_annotations_carry_expression_span(self, failing_report):
        """endLine/endColumn highlight the offending expression."""
        [violation] = failing_report.violations
        assert violation.end_line == 2
        assert violation.end_col > violation.col
        text = render(failing_report, "github")
        assert f",endLine={violation.end_line},endColumn={violation.end_col}," in text

    def test_human_summary(self, failing_report):
        text = render(failing_report, "human")
        assert "snippet.py:2:" in text
        assert "reprolint FAILED" in text

    def test_unknown_format_raises(self, failing_report):
        with pytest.raises(ValueError, match="unknown format"):
            render(failing_report, "xml")


# ----------------------------------------------------------------------
# CLI (module entry and iotls subcommand)
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        status = lint_main([str(target), "--root", str(tmp_path), "--no-baseline"])
        assert status == 0
        assert "reprolint ok" in capsys.readouterr().out

    def test_bad_file_exits_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import time\nnow = time.time()\n")
        status = lint_main([str(target), "--root", str(tmp_path), "--no-baseline"])
        assert status == 1
        assert "RL002" in capsys.readouterr().out

    def test_unknown_rule_code_exits_two(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        status = lint_main([str(target), "--select", "RL999", "--no-baseline"])
        assert status == 2
        assert "RL999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.py"), "--no-baseline"]) == 2

    def test_update_baseline_writes_and_suppresses(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import time\nnow = time.time()\n")
        baseline_path = tmp_path / "baseline.json"
        assert (
            lint_main(
                [
                    str(target),
                    "--root", str(tmp_path),
                    "--baseline", str(baseline_path),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert baseline_path.exists()
        capsys.readouterr()
        status = lint_main(
            [str(target), "--root", str(tmp_path), "--baseline", str(baseline_path)]
        )
        assert status == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_iotls_lint_smoke(self, tmp_path, capsys):
        """The subcommand wiring: `iotls lint <clean file>` exits 0."""
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        status = iotls_main(
            ["lint", str(target), "--root", str(tmp_path), "--no-baseline"]
        )
        assert status == 0
        assert "reprolint ok" in capsys.readouterr().out

    def test_iotls_lint_list_rules(self, capsys):
        assert iotls_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL010", "RL011", "RL020", "RL021", "RL030"):
            assert code in out


# ----------------------------------------------------------------------
# Regression tests for violations fixed in this PR
# ----------------------------------------------------------------------
class TestFixedViolations:
    def test_host_date_is_the_clock_boundary(self):
        """Bench date stamps go through repro.telemetry.host_date (RL002)."""
        from datetime import date

        from repro.telemetry import host_date

        assert host_date() == date.today().isoformat()

    def test_bench_history_stamps_via_host_date(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "bench_history_lint_check", REPO_ROOT / "tools" / "bench_history.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        from repro.telemetry import host_date

        entry = module.append_history("bench_lint", 0.5, path=tmp_path / "h.jsonl")
        assert entry["date"] == host_date()

    def test_bench_tools_have_no_wall_clock_reads(self):
        report = run_lint(
            [
                REPO_ROOT / "tools" / "bench_history.py",
                REPO_ROOT / "tools" / "bench_parallel.py",
            ],
            root=REPO_ROOT,
            select=["RL002"],
        )
        assert report.ok, [v.to_dict() for v in report.violations]


# ----------------------------------------------------------------------
# Whole-program pass 1: the project graph
# ----------------------------------------------------------------------
def write_mini_package(tmp_path: Path) -> Path:
    """A fixture package with known import/call/thread-entry edges."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("from .util import helper\n")
    (pkg / "util.py").write_text(
        "import threading\n"
        "\n"
        "GUARD = threading.Lock()\n"
        "\n"
        "\n"
        "def helper():\n"
        "    return leaf()\n"
        "\n"
        "\n"
        "def leaf():\n"
        "    return 1\n"
    )
    (pkg / "app.py").write_text(
        "import asyncio\n"
        "import threading\n"
        "\n"
        "from . import util\n"
        "from pkg import helper\n"
        "\n"
        "\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._run).start()\n"
        "\n"
        "    def _run(self):\n"
        "        return util.leaf()\n"
        "\n"
        "\n"
        "async def spawn():\n"
        "    return await asyncio.to_thread(helper)\n"
    )
    return pkg


class TestProjectGraph:
    @pytest.fixture()
    def graph(self, tmp_path):
        from repro.lint.project import build_graph
        from repro.lint.walker import iter_python_files, parse_module

        pkg = write_mini_package(tmp_path)
        contexts = [parse_module(p, tmp_path) for p in iter_python_files([pkg])]
        return build_graph(contexts)

    def test_symbol_table(self, graph):
        assert "pkg.util.helper" in graph.functions
        assert "pkg.util.leaf" in graph.functions
        assert "pkg.app.Service" in graph.classes
        assert "pkg.app.Service._run" in graph.functions
        assert graph.functions["pkg.app.spawn"].is_async

    def test_call_edges(self, graph):
        assert "pkg.util.leaf" in graph.calls["pkg.util.helper"]
        # `util.leaf()` resolves through the *relative* import in app.py.
        assert "pkg.util.leaf" in graph.calls["pkg.app.Service._run"]

    def test_reexport_alias_following(self, graph):
        # `from pkg import helper` lands on the definition re-exported
        # by pkg/__init__.py.
        assert graph.canonical("pkg.helper") == "pkg.util.helper"

    def test_thread_entries_and_reachability(self, graph):
        # asyncio.to_thread(helper) and Thread(target=self._run).
        assert "pkg.util.helper" in graph.thread_entries
        assert "pkg.app.Service._run" in graph.thread_entries
        # leaf() is not an entry itself but is reachable from both.
        assert "pkg.util.leaf" not in graph.thread_entries
        assert "pkg.util.leaf" in graph.thread_reachable

    def test_declared_locks(self, graph):
        assert graph.module_locks["pkg.util"] == {"GUARD"}
        assert graph.class_locks["pkg.app.Service"] == {"_lock"}


# ----------------------------------------------------------------------
# Whole-program pass 2: RL040-RL043 and RL022
# ----------------------------------------------------------------------
def wp(tmp_path: Path, source: str, code: str) -> list[str]:
    """Whole-program lint of one snippet, selecting a single rule."""
    return codes(lint_source(tmp_path, source, select=[code], whole_program=True))


class TestRL040SharedStateWithoutLock:
    BAD = (
        "import threading\n"
        "_LOCK = threading.Lock()\n"
        "COUNTER = 0\n"
        "CACHE = {}\n"
        "def bump(key):\n"
        "    global COUNTER\n"
        "    COUNTER += 1\n"
        "    CACHE[key] = COUNTER\n"
        "threading.Thread(target=bump).start()\n"
    )

    def test_bad_unguarded_module_global(self, tmp_path):
        assert wp(tmp_path, self.BAD, "RL040") == ["RL040", "RL040"]

    def test_good_write_under_module_lock(self, tmp_path):
        # The pool_session pattern: every write under `with _LOCK:`.
        source = (
            "import threading\n"
            "_LOCK = threading.Lock()\n"
            "ACTIVE = None\n"
            "def set_active(value):\n"
            "    global ACTIVE\n"
            "    with _LOCK:\n"
            "        ACTIVE = value\n"
            "threading.Thread(target=set_active).start()\n"
        )
        assert wp(tmp_path, source, "RL040") == []

    def test_good_module_without_declared_lock_is_silent(self, tmp_path):
        # No declared lock means no contract to enforce: the rule
        # requires positive evidence, so this stays a non-finding.
        source = (
            "import threading\n"
            "COUNTER = 0\n"
            "def bump():\n"
            "    global COUNTER\n"
            "    COUNTER += 1\n"
            "threading.Thread(target=bump).start()\n"
        )
        assert wp(tmp_path, source, "RL040") == []

    def test_good_unreachable_function_is_silent(self, tmp_path):
        # Same write, but nothing dispatches it onto a thread.
        source = (
            "import threading\n"
            "_LOCK = threading.Lock()\n"
            "COUNTER = 0\n"
            "def bump():\n"
            "    global COUNTER\n"
            "    COUNTER += 1\n"
        )
        assert wp(tmp_path, source, "RL040") == []

    def test_bad_unguarded_self_attribute(self, tmp_path):
        source = (
            "import threading\n"
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def start(self):\n"
            "        threading.Thread(target=self.record).start()\n"
            "    def record(self):\n"
            "        self.count += 1\n"
        )
        assert wp(tmp_path, source, "RL040") == ["RL040"]

    def test_good_self_attribute_under_class_lock(self, tmp_path):
        # The AccessLog pattern: mutation guarded by `with self._lock:`.
        source = (
            "import threading\n"
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def start(self):\n"
            "        threading.Thread(target=self.record).start()\n"
            "    def record(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
        )
        assert wp(tmp_path, source, "RL040") == []


class TestRL041BlockingInEventLoop:
    def test_bad_direct_file_io(self, tmp_path):
        source = (
            "from pathlib import Path\n"
            "async def handler(path: Path):\n"
            "    return path.read_text()\n"
        )
        assert wp(tmp_path, source, "RL041") == ["RL041"]

    def test_bad_time_sleep(self, tmp_path):
        source = "import time\nasync def handler():\n    time.sleep(1)\n"
        assert wp(tmp_path, source, "RL041") == ["RL041"]

    def test_bad_transitively_blocking_helper(self, tmp_path):
        source = (
            "import time\n"
            "def backoff():\n"
            "    time.sleep(0.5)\n"
            "async def handler():\n"
            "    backoff()\n"
        )
        assert wp(tmp_path, source, "RL041") == ["RL041"]

    def test_good_to_thread_offload(self, tmp_path):
        # The serve/service.py pattern: the reference passed to
        # asyncio.to_thread never executes on the loop.
        source = (
            "import asyncio\n"
            "from pathlib import Path\n"
            "async def handler(path: Path):\n"
            "    return await asyncio.to_thread(path.read_text)\n"
        )
        assert wp(tmp_path, source, "RL041") == []

    def test_good_nonblocking_sync_helper(self, tmp_path):
        source = (
            "def shape(record):\n"
            "    return {'n': record}\n"
            "async def handler(record):\n"
            "    return shape(record)\n"
        )
        assert wp(tmp_path, source, "RL041") == []

    def test_good_sync_context_not_flagged(self, tmp_path):
        source = (
            "from pathlib import Path\n"
            "def loader(path: Path):\n"
            "    return path.read_text()\n"
        )
        assert wp(tmp_path, source, "RL041") == []


class TestRL042BareAcquire:
    def test_bad_bare_acquire(self, tmp_path):
        source = (
            "def hold(lock):\n"
            "    lock.acquire()\n"
            "    return 1\n"
        )
        assert wp(tmp_path, source, "RL042") == ["RL042"]

    def test_good_acquire_then_try_finally(self, tmp_path):
        source = (
            "def hold(lock):\n"
            "    lock.acquire()\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert wp(tmp_path, source, "RL042") == []

    def test_good_acquire_inside_guarded_try(self, tmp_path):
        source = (
            "def hold(lock):\n"
            "    try:\n"
            "        lock.acquire()\n"
            "        return 1\n"
            "    finally:\n"
            "        lock.release()\n"
        )
        assert wp(tmp_path, source, "RL042") == []

    def test_bad_mismatched_release_receiver(self, tmp_path):
        source = (
            "def hold(a, b):\n"
            "    a.acquire()\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        b.release()\n"
        )
        assert wp(tmp_path, source, "RL042") == ["RL042"]


class TestRL043SpawnUnsafeCapture:
    def test_bad_lock_field_on_dispatched_task(self, tmp_path):
        source = (
            "import threading\n"
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Task:\n"
            "    name: str\n"
            "    lock: threading.Lock\n"
            "def worker(task: Task):\n"
            "    return task.name\n"
            "def run(pool, tasks):\n"
            "    return pool.map(worker, tasks)\n"
        )
        assert wp(tmp_path, source, "RL043") == ["RL043"]

    def test_bad_optional_stream_field(self, tmp_path):
        source = (
            "import asyncio\n"
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Task:\n"
            "    writer: asyncio.StreamWriter | None\n"
            "def worker(task: Task):\n"
            "    return task\n"
            "def run(pool, tasks):\n"
            "    return pool.imap(worker, tasks)\n"
        )
        assert wp(tmp_path, source, "RL043") == ["RL043"]

    def test_good_plain_data_task(self, tmp_path):
        # The TraceShardTask pattern: strings, ints, tuples only.
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Task:\n"
            "    seed: str\n"
            "    shard: int\n"
            "    devices: tuple\n"
            "def worker(task: Task):\n"
            "    return task.shard\n"
            "def run(pool, tasks):\n"
            "    return pool.map(worker, tasks)\n"
        )
        assert wp(tmp_path, source, "RL043") == []

    def test_good_undispatched_dataclass_ignored(self, tmp_path):
        # A Lock field is fine on a dataclass that never crosses the
        # spawn boundary.
        source = (
            "import threading\n"
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class LocalState:\n"
            "    lock: threading.Lock\n"
        )
        assert wp(tmp_path, source, "RL043") == []


class TestRL022StreamSchemaContract:
    def _project(
        self,
        tmp_path: Path,
        consumer: str,
        *,
        validators: str | None = "def validate_trace_stream(path):\n    return []\n",
    ) -> LintReport:
        """A mini repo: registry + tools/validate_streams.py + consumer."""
        telemetry = tmp_path / "src" / "repro" / "telemetry"
        telemetry.mkdir(parents=True)
        (telemetry / "schemas.py").write_text(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class StreamSchema:\n"
            "    name: str\n"
            "    version: int\n"
            "    validator: str | None = None\n"
            "REGISTRY = (\n"
            "    StreamSchema(name='trace-stream', version=1,\n"
            "                 validator='validate_trace_stream'),\n"
            ")\n"
        )
        tools = tmp_path / "tools"
        tools.mkdir()
        if validators is not None:
            (tools / "validate_streams.py").write_text(validators)
        consumer_path = tmp_path / "src" / "repro" / "consumer.py"
        consumer_path.write_text(consumer)
        return run_lint(
            [tmp_path / "src", tools],
            root=tmp_path,
            select=["RL022"],
            whole_program=True,
        )

    def test_bad_hardcoded_registered_id(self, tmp_path):
        report = self._project(tmp_path, "SCHEMA = 'iotls-trace-stream/1'\n")
        assert codes(report) == ["RL022"]
        assert "hard-coded" in report.violations[0].message

    def test_bad_unregistered_id(self, tmp_path):
        report = self._project(tmp_path, "SCHEMA = 'iotls-mystery/9'\n")
        assert codes(report) == ["RL022"]
        assert "not a registered" in report.violations[0].message

    def test_bad_missing_validator(self, tmp_path):
        report = self._project(
            tmp_path,
            "X = 1\n",
            validators="def validate_something_else(path):\n    return []\n",
        )
        assert codes(report) == ["RL022"]
        assert "validate_trace_stream" in report.violations[0].message

    def test_good_docstring_mention_is_exempt(self, tmp_path):
        consumer = '"""Writes iotls-trace-stream/1 bodies."""\nX = 1\n'
        assert codes(self._project(tmp_path, consumer)) == []

    def test_good_imported_constant(self, tmp_path):
        consumer = (
            "from repro.telemetry.schemas import REGISTRY\n"
            "SCHEMA = REGISTRY[0]\n"
        )
        assert codes(self._project(tmp_path, consumer)) == []
