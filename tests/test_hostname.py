"""Unit and property tests for RFC 2818/6125 hostname matching."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.pki import CertificateAuthority, hostname_matches_pattern, match_hostname


class TestExactMatching:
    @pytest.mark.parametrize(
        "hostname,pattern",
        [
            ("example.com", "example.com"),
            ("EXAMPLE.com", "example.COM"),
            ("example.com.", "example.com"),
            ("a.b.example.com", "a.b.example.com"),
        ],
    )
    def test_matches(self, hostname, pattern):
        assert hostname_matches_pattern(hostname, pattern)

    @pytest.mark.parametrize(
        "hostname,pattern",
        [
            ("example.com", "example.org"),
            ("sub.example.com", "example.com"),
            ("example.com", "sub.example.com"),
            ("", "example.com"),
            ("example.com", ""),
        ],
    )
    def test_rejects(self, hostname, pattern):
        assert not hostname_matches_pattern(hostname, pattern)


class TestWildcards:
    def test_single_label_wildcard(self):
        assert hostname_matches_pattern("api.example.com", "*.example.com")

    def test_wildcard_does_not_span_labels(self):
        assert not hostname_matches_pattern("a.b.example.com", "*.example.com")

    def test_wildcard_does_not_match_bare_domain(self):
        assert not hostname_matches_pattern("example.com", "*.example.com")

    def test_wildcard_must_be_leftmost_whole_label(self):
        assert not hostname_matches_pattern("api.example.com", "a*.example.com")
        assert not hostname_matches_pattern("api.example.com", "api.*.com")

    def test_overly_broad_wildcard_refused(self):
        assert not hostname_matches_pattern("example.com", "*.com")

    def test_case_insensitive_wildcard(self):
        assert hostname_matches_pattern("API.Example.COM", "*.example.com")


class TestIPAddresses:
    def test_exact_ip_match(self):
        assert hostname_matches_pattern("192.168.1.1", "192.168.1.1")

    def test_ip_never_matches_wildcard(self):
        assert not hostname_matches_pattern("192.168.1.1", "*.168.1.1")

    def test_ipv6_exact(self):
        assert hostname_matches_pattern("::1", "::1")


class TestCertificateMatching:
    def test_san_preferred_over_cn(self, simple_ca):
        leaf, _ = simple_ca.issue_leaf("real.example.com")
        assert match_hostname(leaf, "real.example.com")
        assert not match_hostname(leaf, simple_ca.certificate.subject.common_name)

    def test_falls_back_to_cn_without_sans(self):
        cert, _ = CertificateAuthority.self_signed_leaf("cn-only.example.com")
        from dataclasses import replace

        no_san = replace(cert, subject_alt_names=())
        assert match_hostname(no_san, "cn-only.example.com")

    def test_any_san_matches(self, simple_ca):
        leaf, _ = simple_ca.issue_leaf("a.example.com", extra_names=("b.example.com",))
        assert match_hostname(leaf, "b.example.com")


_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=10).filter(
    lambda s: not s.startswith("-") and not s.endswith("-")
)


@given(st.lists(_label, min_size=2, max_size=4))
def test_property_hostname_matches_itself(labels):
    hostname = ".".join(labels)
    assert hostname_matches_pattern(hostname, hostname)


@given(st.lists(_label, min_size=3, max_size=4))
def test_property_wildcard_matches_one_substituted_label(labels):
    # Ensure the name cannot parse as an IP address (e.g. "0.0.0.0"),
    # where wildcard matching is rightly refused.
    labels = [f"h{label}" for label in labels]
    hostname = ".".join(labels)
    pattern = ".".join(["*"] + labels[1:])
    assert hostname_matches_pattern(hostname, pattern)
