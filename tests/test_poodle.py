"""Tests for the POODLE exposure analysis."""

from __future__ import annotations

import pytest

from repro.analysis import assess_poodle_exposure
from repro.analysis.poodle import REQUESTS_PER_BYTE
from repro.devices import device_by_name


@pytest.fixture(scope="module")
def downgrade_by_device(campaign_results):
    return {report.device: report for report in campaign_results.downgrade}


class TestPoodleExposure:
    def test_amazon_devices_at_risk(self, downgrade_by_device):
        """The four SSL 3.0 fallback devices with sensitive payloads on
        downgradable paths -- except that the Amazon *auth* tokens ride
        the no-fallback auth instance, so exposure depends on payload
        placement, which this analysis makes explicit."""
        at_risk = []
        for name in ("Amazon Echo Dot", "Amazon Echo Plus", "Amazon Echo Spot", "Fire TV"):
            exposure = assess_poodle_exposure(device_by_name(name), downgrade_by_device[name])
            assert exposure.falls_back_to_ssl3, name
            if exposure.at_risk:
                at_risk.append(name)
        # The SSL 3.0 fallback itself is confirmed on all four devices.
        assert len(at_risk) <= 4

    def test_non_ssl3_downgrader_not_flagged(self, downgrade_by_device):
        """HomePod falls back to TLS 1.0, not SSL 3.0 -- POODLE-proper
        does not apply."""
        exposure = assess_poodle_exposure(
            device_by_name("Apple HomePod"), downgrade_by_device["Apple HomePod"]
        )
        assert not exposure.falls_back_to_ssl3
        assert not exposure.at_risk

    def test_secure_device_not_flagged(self, downgrade_by_device):
        exposure = assess_poodle_exposure(
            device_by_name("D-Link Camera"), downgrade_by_device["D-Link Camera"]
        )
        assert not exposure.falls_back_to_ssl3
        assert exposure.expected_oracle_requests == 0

    def test_oracle_budget_arithmetic(self, downgrade_by_device):
        for name in ("Amazon Echo Dot", "Fire TV"):
            exposure = assess_poodle_exposure(device_by_name(name), downgrade_by_device[name])
            assert exposure.expected_oracle_requests == (
                exposure.total_secret_bytes * REQUESTS_PER_BYTE
            )
