"""Tests for repository tooling (docs generation, bench trajectory/gate)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / "tools" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_generator():
    return _load_tool("generate_catalog_reference")


class TestCatalogReferenceGenerator:
    def test_renders_all_devices(self):
        text = _load_generator().render()
        from repro.devices import build_catalog

        for device in build_catalog():
            assert f"## {device.name}" in text

    def test_passive_only_marked(self):
        text = _load_generator().render()
        assert "## Samsung TV *(passive-only)*" in text
        assert "## LG TV\n" in text  # active, no marker

    def test_paper_facts_surface(self):
        text = _load_generator().render()
        assert "disabled after 3 failures" in text  # Yi Camera
        assert "not suitable for repeated reboots" in text  # appliances
        assert "TURKTRUST" in text  # LG TV's pinned root

    def test_checked_in_doc_is_current(self):
        """docs/catalog-reference.md must match the generator's output."""
        generated = _load_generator().render()
        checked_in = (REPO_ROOT / "docs" / "catalog-reference.md").read_text()
        assert checked_in == generated, (
            "docs/catalog-reference.md is stale; rerun "
            "tools/generate_catalog_reference.py"
        )


class TestBenchHistory:
    def test_append_and_load_roundtrip(self, tmp_path):
        history = _load_tool("bench_history")
        path = tmp_path / "BENCH_history.jsonl"
        entry = history.append_history("bench_x", 1.23456, path=path, extra={"scale": 5})
        assert entry["seconds"] == 1.2346
        assert entry["scale"] == 5
        assert isinstance(entry["host_cpu_count"], int)
        history.append_history("bench_x", 2.0, path=path)
        loaded = history.load_history(path)
        assert [e["seconds"] for e in loaded] == [1.2346, 2.0]

    def test_load_skips_torn_lines(self, tmp_path):
        history = _load_tool("bench_history")
        path = tmp_path / "h.jsonl"
        path.write_text('{"benchmark": "a", "seconds": 1.0}\n{"benchm\n\n')
        assert [e["benchmark"] for e in history.load_history(path)] == ["a"]

    def test_missing_file_is_empty(self, tmp_path):
        history = _load_tool("bench_history")
        assert history.load_history(tmp_path / "absent.jsonl") == []


class TestBenchGate:
    def _entries(self, *seconds, benchmark="b", cpus=4):
        return [
            {"benchmark": benchmark, "host_cpu_count": cpus, "seconds": s, "git_rev": f"r{i}"}
            for i, s in enumerate(seconds)
        ]

    def test_regression_flagged_above_threshold(self):
        gate = _load_tool("bench_gate").gate
        verdicts = gate(self._entries(1.0, 1.1, 1.5))
        assert len(verdicts) == 1
        assert verdicts[0]["regressed"] is True
        assert verdicts[0]["ratio"] == 1.5

    def test_within_threshold_passes(self):
        gate = _load_tool("bench_gate").gate
        verdicts = gate(self._entries(1.0, 1.2))
        assert verdicts[0]["regressed"] is False

    def test_compares_against_best_prior_not_latest(self):
        gate = _load_tool("bench_gate").gate
        # Best prior is 1.0 (first run), not the slow 2.0 in between.
        verdicts = gate(self._entries(1.0, 2.0, 1.4))
        assert verdicts[0]["best_prior_seconds"] == 1.0
        assert verdicts[0]["regressed"] is True

    def test_different_host_shape_not_compared(self):
        gate = _load_tool("bench_gate").gate
        entries = self._entries(1.0, cpus=8) + self._entries(9.0, cpus=1)
        assert gate(entries) == []

    def test_fingerprint_mismatch_not_compared(self):
        # Same core count but different platform/arch: the full host
        # fingerprint wins over the legacy cpu-count fallback.
        gate = _load_tool("bench_gate").gate
        entries = self._entries(1.0, 9.0)
        entries[0]["host"] = {"cpu_count": 4, "platform": "linux", "machine": "x86_64"}
        entries[1]["host"] = {"cpu_count": 4, "platform": "darwin", "machine": "arm64"}
        assert gate(entries) == []

    def test_matching_fingerprint_compared(self):
        gate = _load_tool("bench_gate").gate
        fingerprint = {"cpu_count": 4, "platform": "linux", "machine": "x86_64"}
        entries = self._entries(1.0, 1.1)
        for entry in entries:
            entry["host"] = dict(fingerprint)
        verdicts = gate(entries)
        assert len(verdicts) == 1
        assert verdicts[0]["regressed"] is False

    def test_legacy_entry_falls_back_to_cpu_count(self):
        # One fingerprinted and one legacy entry still compare when the
        # core counts agree, so old trajectory data keeps gating.
        gate = _load_tool("bench_gate").gate
        entries = self._entries(1.0, 1.1)
        entries[1]["host"] = {"cpu_count": 4, "platform": "linux", "machine": "x86_64"}
        assert len(gate(entries)) == 1

    def test_history_records_host_fingerprint(self, tmp_path):
        history = _load_tool("bench_history")
        entry = history.append_history("b", 1.0, path=tmp_path / "h.jsonl")
        assert set(entry["host"]) == {"cpu_count", "platform", "machine"}
        loaded = history.load_history(tmp_path / "h.jsonl")
        assert loaded[0]["host"] == entry["host"]

    def test_single_run_yields_no_verdict(self):
        gate = _load_tool("bench_gate").gate
        assert gate(self._entries(1.0)) == []

    def test_different_workload_shape_not_compared(self):
        # Regression guard: a scale-4000 run must not be gated against a
        # scale-400 run's time just because the host matches.
        gate = _load_tool("bench_gate").gate
        entries = self._entries(1.0, 9.0)
        entries[0]["scale"] = 400
        entries[1]["scale"] = 4000
        assert gate(entries) == []

    def test_workers_and_flow_cap_must_match_too(self):
        gate = _load_tool("bench_gate").gate
        for key, values in (("workers", (1, 2)), ("flow_cap", (50, None))):
            entries = self._entries(1.0, 9.0)
            entries[0][key] = values[0]
            entries[1][key] = values[1]
            assert gate(entries) == [], key

    def test_matching_shape_compared(self):
        gate = _load_tool("bench_gate").gate
        entries = self._entries(1.0, 1.1)
        for entry in entries:
            entry.update(scale=4000, workers=1, flow_cap=50)
        verdicts = gate(entries)
        assert len(verdicts) == 1
        assert verdicts[0]["regressed"] is False

    def test_legacy_entries_without_shape_still_compare(self):
        # Entries that predate the shape keys (no scale/workers/flow_cap)
        # compare as None == None, so old trajectory data keeps gating.
        gate = _load_tool("bench_gate").gate
        assert len(gate(self._entries(1.0, 1.1))) == 1

    def test_regressions_warn_only_flag(self, tmp_path, capsys):
        gate_mod = _load_tool("bench_gate")
        path = tmp_path / "h.jsonl"
        with path.open("w") as handle:
            for entry in self._entries(1.0, 1.6):
                handle.write(json.dumps(entry) + "\n")
        argv = sys.argv
        try:
            sys.argv = [
                "bench_gate.py", "--history", str(path), "--regressions-warn-only"
            ]
            assert gate_mod.main() == 0
        finally:
            sys.argv = argv
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_exit_codes(self, tmp_path, capsys):
        gate_mod = _load_tool("bench_gate")
        path = tmp_path / "h.jsonl"
        with path.open("w") as handle:
            for entry in self._entries(1.0, 1.6):
                handle.write(json.dumps(entry) + "\n")
        argv = sys.argv
        try:
            sys.argv = ["bench_gate.py", "--history", str(path)]
            assert gate_mod.main() == 1
            sys.argv = ["bench_gate.py", "--history", str(path), "--warn-only"]
            assert gate_mod.main() == 0
            sys.argv = ["bench_gate.py", "--history", str(tmp_path / "none.jsonl")]
            assert gate_mod.main() == 0
        finally:
            sys.argv = argv
        assert "REGRESSION" in capsys.readouterr().out


class TestBenchStreamSafeRate:
    def test_normal_rate(self):
        safe_rate = _load_tool("bench_stream").safe_rate
        assert safe_rate(1000, 2.0) == 500.0

    def test_zero_elapsed_clamps_finite(self):
        import math

        safe_rate = _load_tool("bench_stream").safe_rate
        rate = safe_rate(1000, 0.0)
        assert math.isfinite(rate) and rate > 0

    def test_negative_elapsed_clamps_finite(self):
        # A clock hiccup must not record a negative rate either.
        import math

        safe_rate = _load_tool("bench_stream").safe_rate
        rate = safe_rate(1000, -0.5)
        assert math.isfinite(rate) and rate > 0

    def test_zero_records_zero_rate(self):
        safe_rate = _load_tool("bench_stream").safe_rate
        assert safe_rate(0, 0.0) == 0.0


class TestBenchHistoryLedger:
    def test_entries_are_ledger_schema(self, tmp_path):
        history = _load_tool("bench_history")
        entry = history.append_history("b", 1.0, path=tmp_path / "h.jsonl")
        assert entry["schema"] == "iotls-run-ledger/1"
        assert entry["kind"] == "bench"
        assert entry["status"] == "ok"

    def test_auto_mirror_lands_next_to_history(self, tmp_path):
        history = _load_tool("bench_history")
        history.append_history("b", 1.0, path=tmp_path / "h.jsonl")
        mirror = tmp_path / ".iotls" / "ledger.jsonl"
        assert mirror.is_file()
        assert json.loads(mirror.read_text())["benchmark"] == "b"

    def test_explicit_ledger_path_and_none(self, tmp_path):
        history = _load_tool("bench_history")
        target = tmp_path / "custom.jsonl"
        history.append_history("b", 1.0, path=tmp_path / "h.jsonl", ledger=target)
        assert target.is_file()
        history.append_history("b", 1.0, path=tmp_path / "h2.jsonl", ledger=None)
        assert not (tmp_path / ".iotls").joinpath("extra").exists()
        assert len(history.load_history(tmp_path / "h2.jsonl")) == 1

    def _run_main(self, history_mod, *argv):
        original = sys.argv
        try:
            sys.argv = ["bench_history.py", *argv]
            return history_mod.main()
        finally:
            sys.argv = original

    def test_migrate_tags_legacy_rows(self, tmp_path, capsys):
        history = _load_tool("bench_history")
        path = tmp_path / "h.jsonl"
        rows = [
            {"benchmark": "b", "seconds": 1.0, "host_cpu_count": 4},
            {
                "benchmark": "b",
                "seconds": 1.1,
                "host_cpu_count": 4,
                "host": {"cpu_count": 4, "platform": "linux", "machine": "x86_64"},
            },
        ]
        path.write_text("".join(json.dumps(row) + "\n" for row in rows))
        assert self._run_main(history, "--migrate", "--history", str(path)) == 0
        migrated = history.load_history(path)
        assert migrated[0]["legacy"] is True
        assert "legacy" not in migrated[1]
        assert all(e["schema"] == "iotls-run-ledger/1" for e in migrated)
        # Idempotent: a second migration changes nothing.
        assert self._run_main(history, "--migrate", "--history", str(path)) == 0
        assert "0 migrated" in capsys.readouterr().out

    def test_migrate_dry_run_leaves_file(self, tmp_path):
        history = _load_tool("bench_history")
        path = tmp_path / "h.jsonl"
        path.write_text('{"benchmark": "b", "seconds": 1.0}\n')
        before = path.read_text()
        assert (
            self._run_main(history, "--migrate", "--history", str(path), "--dry-run")
            == 0
        )
        assert path.read_text() == before

    def test_main_without_migrate_is_usage_error(self, tmp_path, capsys):
        history = _load_tool("bench_history")
        assert self._run_main(history) == 2


class TestBenchGateLegacyTag:
    def test_legacy_tagged_entries_never_baseline(self):
        # A migrated `legacy: true` row has no shape keys, so it would
        # None == None match any modern run; the tag excludes it.
        gate = _load_tool("bench_gate").gate
        entries = [
            {"benchmark": "b", "seconds": 1.0, "host_cpu_count": 4, "legacy": True},
            {"benchmark": "b", "seconds": 9.0, "host_cpu_count": 4},
        ]
        assert gate(entries) == []

    def test_legacy_latest_still_gated_against_modern_prior(self):
        gate = _load_tool("bench_gate").gate
        entries = [
            {"benchmark": "b", "seconds": 1.0, "host_cpu_count": 4},
            {"benchmark": "b", "seconds": 1.1, "host_cpu_count": 4},
        ]
        assert len(gate(entries)) == 1


class TestValidateStreams:
    def _ledger_entry(self, **overrides):
        from repro.telemetry import ledger

        return ledger.build_entry(
            overrides.pop("command", "trace"), params={"scale": 1}, **overrides
        )

    def test_valid_ledger_passes(self, tmp_path):
        streams = _load_tool("validate_streams")
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps(self._ledger_entry()) + "\n")
        assert streams.validate_run_ledger(path) == []

    def test_ledger_violations_reported(self, tmp_path):
        streams = _load_tool("validate_streams")
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"schema": "wrong/1", "kind": "nope"}\nnot json\n')
        errors = streams.validate_run_ledger(path)
        assert any("schema" in error for error in errors)
        assert any("not valid JSON" in error for error in errors)

    def test_legacy_rows_need_no_host(self, tmp_path):
        streams = _load_tool("validate_streams")
        path = tmp_path / "ledger.jsonl"
        row = {
            "schema": "iotls-run-ledger/1",
            "kind": "bench",
            "status": "ok",
            "date": "2026-01-01",
            "benchmark": "b",
            "seconds": 1.0,
            "legacy": True,
        }
        path.write_text(json.dumps(row) + "\n")
        assert streams.validate_run_ledger(path) == []

    def test_error_entries_need_typed_error(self, tmp_path):
        streams = _load_tool("validate_streams")
        path = tmp_path / "ledger.jsonl"
        entry = self._ledger_entry(status="error")
        path.write_text(json.dumps(entry) + "\n")
        errors = streams.validate_run_ledger(path)
        assert any("'error' object" in error for error in errors)

    def test_trend_document_validates(self, tmp_path):
        from repro.telemetry import ledger

        streams = _load_tool("validate_streams")
        entry = ledger.build_entry(
            "bench", kind="bench", seconds=1.0, extra={"benchmark": "b"}
        )
        path = tmp_path / "trend.json"
        path.write_text(json.dumps(ledger.ledger_trend([entry])) + "\n")
        assert streams.validate_bench_trend(path) == []

    def test_schema_autodetection(self, tmp_path):
        streams = _load_tool("validate_streams")
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps(self._ledger_entry()) + "\n")
        assert streams.detect_schema(path) == streams.LEDGER_SCHEMA
        unknown = tmp_path / "other.txt"
        unknown.write_text("hello\n")
        assert streams.detect_schema(unknown) is None

    def test_health_shim_keeps_public_names(self):
        shim = _load_tool("validate_health_stream")
        assert shim.EXPECTED_SCHEMA == "iotls-health-stream/1"
        assert callable(shim.validate)
        assert "seq" in shim.HEARTBEAT_REQUIRED
        assert "heartbeats" in shim.SUMMARY_REQUIRED
