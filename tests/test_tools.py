"""Tests for repository tooling (docs generation)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_catalog_reference", REPO_ROOT / "tools" / "generate_catalog_reference.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCatalogReferenceGenerator:
    def test_renders_all_devices(self):
        text = _load_generator().render()
        from repro.devices import build_catalog

        for device in build_catalog():
            assert f"## {device.name}" in text

    def test_passive_only_marked(self):
        text = _load_generator().render()
        assert "## Samsung TV *(passive-only)*" in text
        assert "## LG TV\n" in text  # active, no marker

    def test_paper_facts_surface(self):
        text = _load_generator().render()
        assert "disabled after 3 failures" in text  # Yi Camera
        assert "not suitable for repeated reboots" in text  # appliances
        assert "TURKTRUST" in text  # LG TV's pinned root

    def test_checked_in_doc_is_current(self):
        """docs/catalog-reference.md must match the generator's output."""
        generated = _load_generator().render()
        checked_in = (REPO_ROOT / "docs" / "catalog-reference.md").read_text()
        assert checked_in == generated, (
            "docs/catalog-reference.md is stale; rerun "
            "tools/generate_catalog_reference.py"
        )
