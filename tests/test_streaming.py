"""Streaming execution core: sinks, accumulators, and stream/materialised
equivalence.

The contract under test is the one the run facade relies on: feeding the
record stream through the incremental accumulators yields *exactly* the
analyses, exports, and run manifests the materialised path produces --
for any worker count, with or without a flow cap -- while peak memory
stays independent of ``scale``.
"""

from __future__ import annotations

import json
import random
import tracemalloc
from dataclasses import replace

import numpy as np
import pytest

from repro import telemetry
from repro.analysis import analyze_capture, measure_analysis, measure_capture
from repro.analysis.export import JsonlStreamWriter, capture_from_stream, fold_stream
from repro.cli import main
from repro.longitudinal import (
    PassiveTraceGenerator,
    VersionHeatmapAccumulator,
    build_insecure_advertised_heatmap,
    build_strong_established_heatmap,
    build_version_heatmap,
    detect_adoption_events,
    insecure_advertised_accumulator,
    strong_established_accumulator,
)
from repro.testbed import (
    CaptureSink,
    CaptureTee,
    DiscardSink,
    FlowRecordChunker,
    GatewayCapture,
)
from repro.tls.versions import VersionBand


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.configure(enabled=False)
    yield
    telemetry.configure(enabled=False)


class TestSinks:
    def test_capture_satisfies_sink_protocol(self):
        assert isinstance(GatewayCapture(), CaptureSink)
        assert isinstance(DiscardSink(), CaptureSink)
        assert isinstance(CaptureTee(), CaptureSink)
        assert isinstance(FlowRecordChunker(DiscardSink(), 10), CaptureSink)

    def test_chunker_splits_batched_records(self, passive_capture):
        record = replace(passive_capture.records[0], count=7)
        capture = GatewayCapture()
        chunker = FlowRecordChunker(capture, 3)
        chunker.add(record)
        assert chunker.records_seen == 3
        assert [r.count for r in capture.records] == [3, 3, 1]
        assert sum(r.count for r in capture.records) == 7

    def test_chunker_passes_small_records_through(self, passive_capture):
        record = replace(passive_capture.records[0], count=3)
        sink = DiscardSink()
        chunker = FlowRecordChunker(sink, 3)
        chunker.add(record)
        assert sink.records_seen == 1
        assert sink.connections_seen == 3

    def test_chunker_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            FlowRecordChunker(DiscardSink(), 0)

    def test_tee_fans_out_and_counts_once(self, passive_capture):
        telemetry.configure(enabled=True)
        staging = GatewayCapture(counted=False)
        discard = DiscardSink()
        tee = CaptureTee(staging, discard)
        records = passive_capture.records[:3]
        for record in records:
            tee.add(record)
        tee.add_revocation_event(passive_capture.revocation_events[0])
        assert staging.records == list(records)
        assert discard.records_seen == 3
        assert tee.records_seen == 3
        registry = telemetry.get_registry()
        assert registry.counter("iotls_capture_records_total").total() == 3
        assert registry.counter("iotls_capture_connections_total").total() == sum(
            r.count for r in records
        )
        assert registry.counter("iotls_capture_revocation_events_total").total() == 1

    def test_staging_capture_does_not_count(self, passive_capture):
        telemetry.configure(enabled=True)
        staging = GatewayCapture(counted=False)
        staging.add(passive_capture.records[0])
        staging.add_revocation_event(passive_capture.revocation_events[0])
        registry = telemetry.get_registry()
        assert registry.counter("iotls_capture_records_total").total() == 0
        assert registry.counter("iotls_capture_revocation_events_total").total() == 0


class TestAccumulators:
    """Accumulators are order-independent count-weighted tallies."""

    def _matrices(self, versions):
        return [
            versions.matrix(band, established=established)
            for band in VersionBand
            for established in (False, True)
        ]

    def test_version_accumulator_order_invariant(self, passive_capture):
        records = list(passive_capture.records[:500])
        shuffled = list(records)
        random.Random("stream-order").shuffle(shuffled)

        forward, backward = VersionHeatmapAccumulator(), VersionHeatmapAccumulator()
        for record in records:
            forward.add(record)
        for record in shuffled:
            backward.add(record)
        left, right = forward.finalize(), backward.finalize()
        assert left.devices == right.devices
        for a, b in zip(self._matrices(left), self._matrices(right)):
            np.testing.assert_array_equal(a, b)

    def test_fraction_accumulators_order_invariant(self, passive_capture):
        records = list(passive_capture.records[:500])
        shuffled = list(records)
        random.Random("stream-order-2").shuffle(shuffled)
        for factory in (insecure_advertised_accumulator, strong_established_accumulator):
            forward, backward = factory(), factory()
            for record in records:
                forward.add(record)
            for record in shuffled:
                backward.add(record)
            left, right = forward.finalize(), backward.finalize()
            assert left.devices == right.devices
            assert left.shown_devices() == right.shown_devices()
            np.testing.assert_array_equal(left.matrix(), right.matrix())


class TestPipelineEquivalence:
    """The incremental pipeline reproduces every batch analysis exactly."""

    def test_pipeline_matches_batch_builders(self, passive_capture):
        analysis = analyze_capture(passive_capture)

        versions = build_version_heatmap(passive_capture)
        assert analysis.versions.devices == versions.devices
        for band in VersionBand:
            for established in (False, True):
                np.testing.assert_array_equal(
                    analysis.versions.matrix(band, established=established),
                    versions.matrix(band, established=established),
                )
        insecure = build_insecure_advertised_heatmap(passive_capture)
        np.testing.assert_array_equal(analysis.insecure.matrix(), insecure.matrix())
        assert analysis.insecure.shown_devices() == insecure.shown_devices()
        strong = build_strong_established_heatmap(passive_capture)
        np.testing.assert_array_equal(analysis.strong.matrix(), strong.matrix())
        assert analysis.strong.shown_devices() == strong.shown_devices()

        assert analysis.adoption_events == detect_adoption_events(passive_capture)
        assert analysis.flow_records == len(passive_capture)
        assert analysis.connections == sum(r.count for r in passive_capture.records)

    def test_measured_cells_identical(self, passive_capture):
        assert measure_capture(passive_capture) == measure_analysis(
            analyze_capture(passive_capture)
        )


class TestStreamEqualsMaterialised:
    def test_stream_into_matches_generate(self, testbed):
        generator = PassiveTraceGenerator(testbed, scale=2, seed="stream-eq")
        materialised = generator.generate()
        streamed = GatewayCapture()
        generator.stream_into(streamed)
        assert streamed.records == materialised.records
        assert streamed.revocation_events == materialised.revocation_events

    def test_flow_cap_preserves_analysis(self, testbed):
        plain = PassiveTraceGenerator(testbed, scale=2, seed="stream-eq").generate()
        capped = PassiveTraceGenerator(
            testbed, scale=2, seed="stream-eq", flow_cap=5
        ).generate()
        assert len(capped) > len(plain)
        assert max(r.count for r in capped.records) <= 5
        assert sum(r.count for r in capped.records) == sum(
            r.count for r in plain.records
        )
        assert measure_capture(capped) == measure_capture(plain)


class TestManifestParity:
    """Streaming and materialised CLI runs write byte-identical manifests."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_stream_manifest_matches_materialised(self, tmp_path, capsys, workers):
        materialised = tmp_path / "materialised.json"
        streamed = tmp_path / "streamed.json"
        base = ["trace", "--scale", "1", "--seed", "stream-manifest", "--telemetry"]
        assert main(base + ["--manifest", str(materialised)]) == 0
        assert (
            main(
                base
                + ["--stream", "--workers", str(workers), "--manifest", str(streamed)]
            )
            == 0
        )
        capsys.readouterr()
        assert materialised.read_bytes() == streamed.read_bytes()


class TestJsonlStream:
    def test_stream_out_roundtrips_and_passes_check(self, tmp_path, capsys, testbed):
        path = tmp_path / "trace.jsonl"
        assert main(["trace", "--scale", "1", "--stream-out", str(path)]) == 0

        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == "iotls-trace-stream/1"
        assert header["metadata"]["scale"] == 1

        restored = capture_from_stream(path)
        expected = PassiveTraceGenerator(testbed, scale=1).generate()
        assert restored.records == expected.records
        assert restored.revocation_events == expected.revocation_events

        assert main(["check", "--artifact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no drift detected" in out

    def test_writer_header_and_summary(self, tmp_path, passive_capture):
        path = tmp_path / "stream.jsonl"
        record = passive_capture.records[0]
        with JsonlStreamWriter(path, metadata={"origin": "test"}) as writer:
            writer.add(record)
            writer.add_revocation_event(passive_capture.revocation_events[0])
        writer.close()  # idempotent
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["metadata"] == {"origin": "test"}
        assert lines[-1]["summary"] == {
            "connections": record.count,
            "flow_records": 1,
            "revocation_events": 1,
        }

    def test_fold_stream_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text(json.dumps({"schema": "bogus/9", "metadata": {}}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            fold_stream(path, DiscardSink())


class TestBoundedMemory:
    def test_stream_peak_memory_scale_independent(self, testbed):
        """A 10x-scale streaming run peaks within ~2x of the 1x run.

        ``flow_cap=1`` makes the sink ingest one record per connection,
        so the 10x run pushes ~10x the record volume through the chain;
        staging buffers (the stream's high-water mark) hold pre-split
        records and must not grow with scale.
        """

        def peak_for(scale: int) -> int:
            generator = PassiveTraceGenerator(
                testbed, scale=scale, seed="stream-mem", flow_cap=1
            )
            tracemalloc.start()
            try:
                generator.stream_into(DiscardSink())
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return peak

        peak_for(1)  # warm caches so the measured runs allocate alike
        small = peak_for(1)
        large = peak_for(10)
        assert large < 2 * small, f"peak grew with scale: {small} -> {large}"
