"""Regression tests for pcap export addressing.

The original ``_device_ip``/``_mac`` derived addresses from
``sum(name.encode()) % N``, which collides for any two device names with
the same byte sum -- anagrams, and five pairs of the actual Table 1
catalog (e.g. "Blink Camera" / "GE Microwave") -- silently merging
distinct devices into one flow in exported pcaps.  The digest-based
scheme must keep every catalog device distinct while staying
deterministic.
"""

from __future__ import annotations

import pytest

from repro.devices.catalog import build_catalog
from repro.testbed.pcap import _device_ip, _mac


@pytest.fixture(scope="module")
def catalog_names() -> list[str]:
    names = [profile.name for profile in build_catalog()]
    assert len(names) == 40  # the full Table 1 catalog
    return names


class TestCatalogCollisions:
    def test_device_ips_distinct_across_catalog(self, catalog_names):
        ips = {name: _device_ip(name) for name in catalog_names}
        assert len(set(ips.values())) == len(catalog_names), (
            "device IP collision: "
            + repr(sorted(ips.items(), key=lambda item: item[1]))
        )

    def test_macs_distinct_across_catalog(self, catalog_names):
        macs = {name: _mac(name) for name in catalog_names}
        assert len(set(macs.values())) == len(catalog_names)

    def test_equal_byte_sum_names_no_longer_collide(self):
        # Anagrams have identical byte sums -- the failure mode of the
        # old sum()-based folding.
        first, second = "listen", "silent"
        assert sum(first.encode()) == sum(second.encode())
        assert _device_ip(first) != _device_ip(second)
        assert _mac(first) != _mac(second)

    def test_known_catalog_pair_no_longer_collides(self):
        first, second = "Blink Camera", "GE Microwave"
        assert sum(first.encode()) % 200 == sum(second.encode()) % 200
        assert _device_ip(first) != _device_ip(second)


class TestDeterminism:
    def test_addresses_stable_across_calls(self, catalog_names):
        for name in catalog_names:
            assert _device_ip(name) == _device_ip(name)
            assert _mac(name) == _mac(name)

    def test_device_ips_stay_in_private_lan_space(self, catalog_names):
        for name in catalog_names:
            first, second, third, fourth = _device_ip(name)
            assert (first, second) == (192, 168)
            assert 8 <= third < 40
            assert 2 <= fourth < 252

    def test_macs_are_locally_administered_unicast(self, catalog_names):
        for name in catalog_names:
            mac = _mac(name)
            assert len(mac) == 6
            assert mac[0] == 0x02  # locally administered, unicast
