"""Property-based validation of the core contribution.

For arbitrary synthetic devices -- random root-store subsets, random
amenable library, random candidate sets -- the prober's blackbox
inferences must equal ground truth exactly (with the noise channel
disabled).  This is the strongest statement the reproduction can make
about the technique: it reads the store correctly *whatever* the store
contains.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.prober import ProbeOutcome, RootStoreProber
from repro.devices import (
    DestinationSpec,
    Device,
    DeviceCategory,
    DeviceProfile,
    ServerEpoch,
    ServerSpec,
    TLSInstanceSpec,
)
from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.devices.instance import InstanceConfigSpec
from repro.pki import RootStore
from repro.roothistory import build_default_universe
from repro.testbed import SmartPlug, Testbed
from repro.tls import ProtocolVersion
from repro.tlslib import MBEDTLS, OPENSSL

_UNIVERSE = build_default_universe()
_TESTBED = Testbed(_UNIVERSE)
_DEPRECATED = _UNIVERSE.deprecated_records()
_ANCHORS = [_TESTBED.anchor(index).certificate for index in range(2)]


def _synthetic_device(name: str, library, store_members) -> Device:
    """A single-instance device trusting anchors + ``store_members``."""
    store = RootStore.from_certificates(
        f"{name} store", [*_ANCHORS, *(record.certificate for record in store_members)]
    )
    profile = DeviceProfile(
        name=name,
        category=DeviceCategory.HOME_AUTOMATION,
        manufacturer="Synthetic",
        active=True,
        instances=(
            TLSInstanceSpec.static(
                "main",
                library,
                InstanceConfigSpec(
                    versions=(ProtocolVersion.TLS_1_2,),
                    cipher_codes=FS_MODERN + RSA_PLAIN,
                ),
            ),
        ),
        destinations=(
            DestinationSpec(
                hostname=f"{name.lower().replace(' ', '-')}.example.com",
                instance="main",
                server=ServerSpec.static(
                    ServerEpoch(
                        versions=(ProtocolVersion.TLS_1_2,),
                        cipher_codes=FS_MODERN + RSA_PLAIN,
                    )
                ),
            ),
        ),
    )
    return Device(profile, universe=_UNIVERSE, root_store=store)


@given(
    member_indexes=st.sets(st.integers(min_value=0, max_value=len(_DEPRECATED) - 1), max_size=20),
    candidate_indexes=st.sets(
        st.integers(min_value=0, max_value=len(_DEPRECATED) - 1), min_size=1, max_size=12
    ),
    library=st.sampled_from([MBEDTLS, OPENSSL]),
    data=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_prober_reads_arbitrary_stores_exactly(member_indexes, candidate_indexes, library, data):
    members = [_DEPRECATED[index] for index in sorted(member_indexes)]
    device = _synthetic_device(f"Synthetic Device {data}", library, members)
    prober = RootStoreProber(_TESTBED)
    plug = SmartPlug(device)

    calibration = prober.calibrate(plug)
    assert calibration.amenable

    member_names = {record.name for record in members}
    for index in sorted(candidate_indexes):
        record = _DEPRECATED[index]
        result = prober.probe_certificate(
            plug, calibration, record.certificate, conclusive_rate=1.0
        )
        expected = (
            ProbeOutcome.PRESENT if record.name in member_names else ProbeOutcome.ABSENT
        )
        assert result.outcome is expected, record.name
