"""Profiler tests: path aggregation, self time, collapsed stacks, worker
merge, and the CLI --profile surface."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.telemetry import Profiler, Tracer, render_hot_table
from repro.telemetry.profiling import PROFILE_SCHEMA


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.configure(enabled=False)
    yield
    telemetry.configure(enabled=False)


def _traced(fn) -> Tracer:
    tracer = Tracer(enabled=True)
    fn(tracer)
    return tracer


class TestAggregation:
    def test_paths_join_parent_chain(self):
        def run(tracer):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass

        profiler = Profiler.from_tracer(_traced(run))
        assert {stat.path for stat in profiler.paths()} == {"outer", "outer;inner"}

    def test_self_time_subtracts_children(self):
        def run(tracer):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass

        profiler = Profiler.from_tracer(_traced(run))
        by_path = {stat.path: stat for stat in profiler.paths()}
        outer, inner = by_path["outer"], by_path["outer;inner"]
        assert outer.self_time == pytest.approx(
            outer.cumulative - inner.cumulative, abs=1e-9
        )
        assert inner.self_time == pytest.approx(inner.cumulative, abs=1e-9)

    def test_calls_accumulate_per_path(self):
        def run(tracer):
            for _ in range(3):
                with tracer.span("repeat"):
                    pass

        profiler = Profiler.from_tracer(_traced(run))
        (stat,) = profiler.paths()
        assert stat.calls == 3
        assert stat.min <= stat.mean <= stat.max

    def test_hot_spans_sorting(self):
        def run(tracer):
            with tracer.span("a"):
                with tracer.span("b"):
                    pass

        profiler = Profiler.from_tracer(_traced(run))
        hot = profiler.hot_spans(1)
        assert hot[0].path == "a"  # cumulative includes the child
        with pytest.raises(ValueError):
            profiler.hot_spans(1, by="wallclock")


class TestCollapsedStacks:
    def test_format_and_self_time_units(self):
        def run(tracer):
            with tracer.span("root"):
                with tracer.span("leaf"):
                    pass

        stacks = Profiler.from_tracer(_traced(run)).collapsed_stacks()
        lines = stacks.strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            path, _, value = line.rpartition(" ")
            assert path in ("root", "root;leaf")
            assert int(value) >= 0  # integer microseconds

    def test_empty_profiler(self):
        assert Profiler().collapsed_stacks() == ""


class TestWorkerMerge:
    def _payload(self, worker: int, seconds: float) -> dict:
        def run(tracer):
            with tracer.span("shard.run"):
                pass

        profiler = Profiler.from_tracer(_traced(run))
        payload = profiler.to_payload(worker=worker)
        payload["shard_seconds"] = seconds  # deterministic for assertions
        return payload

    def test_merge_accumulates_paths_and_shards(self):
        merged = Profiler()
        merged.merge_payload(self._payload(0, 0.5))
        merged.merge_payload(self._payload(1, 0.25))
        (stat,) = merged.paths()
        assert stat.path == "shard.run"
        assert stat.calls == 2
        assert merged.shards == {0: 0.5, 1: 0.25}

    def test_to_dict_shape(self):
        profiler = Profiler()
        profiler.merge_payload(self._payload(0, 0.5))
        document = profiler.to_dict()
        assert document["schema"] == PROFILE_SCHEMA
        assert document["shards"] == {"0": 0.5}
        assert document["phases"]["shard.run"] > 0
        json.dumps(document)

    def test_from_runtime_includes_worker_profiles(self):
        runtime = telemetry.configure(enabled=True)
        with runtime.tracer.span("parent.work"):
            pass
        runtime.worker_profiles.append(self._payload(3, 0.125))
        profiler = Profiler.from_runtime(runtime)
        paths = {stat.path for stat in profiler.paths()}
        assert {"parent.work", "shard.run"} <= paths
        assert profiler.shards == {3: 0.125}


class TestRenderHotTable:
    def test_empty_mentions_telemetry(self):
        assert "telemetry" in render_hot_table(Profiler())

    def test_table_lists_shard_walltimes(self):
        profiler = Profiler()
        tracer = Tracer(enabled=True)
        with tracer.span("shard.run"):
            pass
        payload = Profiler.from_tracer(tracer).to_payload(worker=0)
        profiler.merge_payload(payload)
        table = render_hot_table(profiler)
        assert "shard.run" in table
        assert "per-shard wall time:" in table


class TestCliProfile:
    def test_trace_profile_exports(self, tmp_path, capsys):
        status = main(
            [
                "trace",
                "--scale",
                "1",
                "--profile",
                "--profile-out",
                str(tmp_path / "profile.json"),
                "--profile-stacks",
                str(tmp_path / "profile.stacks"),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "hot spans:" in out
        assert "trace.generate" in out
        document = json.loads((tmp_path / "profile.json").read_text())
        assert document["schema"] == PROFILE_SCHEMA
        assert any(s["path"] == "trace.generate" for s in document["spans"])
        stacks = (tmp_path / "profile.stacks").read_text()
        assert "trace.generate;trace.device" in stacks

    def test_profile_disabled_costs_one_boolean_read(self):
        # The acceptance contract: without --profile, the hot path's only
        # profiling cost is the tracer's enabled check -- i.e. nothing is
        # recorded and the runtime stays disabled.
        runtime = telemetry.get()
        assert runtime.enabled is False
        status = main(["trace", "--scale", "1"])
        assert status == 0
        assert runtime.enabled is False
        assert len(runtime.tracer.finished) == 0
