"""Tests for revocation enforcement (does Table 8 checking protect?)."""

from __future__ import annotations

import pytest

from repro.core import RevocationAuditor
from repro.pki.revocation import RevocationMethod, RevocationStatus


@pytest.fixture(scope="module")
def enforcement(testbed):
    return {result.device: result for result in RevocationAuditor(testbed).audit_all()}


class TestEnforcement:
    def test_baselines_all_establish(self, enforcement):
        assert all(result.baseline_established for result in enforcement.values())

    def test_stapling_checkers_reject_revoked(self, enforcement):
        for name in ("Google Home Mini", "Wink Hub 2", "LG TV", "Apple TV", "Harman Invoke"):
            result = enforcement[name]
            assert result.method is RevocationMethod.OCSP_STAPLING, name
            assert result.protected, name

    def test_non_checkers_accept_revoked(self, enforcement):
        for name in ("Zmodo Doorbell", "D-Link Camera", "Wemo Plug", "Roku TV"):
            result = enforcement[name]
            assert result.method is RevocationMethod.NONE, name
            assert result.accepts_revoked_certificate, name

    def test_majority_unprotected(self, enforcement):
        """The paper's conclusion in enforcement terms: most devices are
        open to revoked certificates."""
        unprotected = [r for r in enforcement.values() if r.accepts_revoked_certificate]
        assert len(unprotected) >= 20

    def test_boot_instance_gaps(self, enforcement):
        """A stapling-capable device whose *boot* connection rides a
        non-stapling instance is unprotected on that path (Fire TV's
        android instance, Echo Spot's clock-sync instance)."""
        for name in ("Fire TV", "Amazon Echo Spot"):
            result = enforcement[name]
            assert result.method is RevocationMethod.NONE, name
            assert result.accepts_revoked_certificate, name

    def test_revocation_state_restored(self, testbed, enforcement):
        """The audit un-revokes after itself."""
        device = testbed.device("Google Home Mini")
        destination = device.first_destination()
        server = testbed.server_for(destination)
        assert not server.registry.is_revoked(server.chain[0].serial)
        device.power_cycle()
        assert device.connect_destination(destination, server).established


class TestTransport:
    def test_transport_resolves_registry_urls(self, testbed):
        registry = testbed.registry(0)
        assert testbed.revocation_transport(registry.ocsp_url, 12345) is RevocationStatus.GOOD
        registry.revoke_serial(12345)
        assert (
            testbed.revocation_transport(registry.ocsp_url, 12345) is RevocationStatus.REVOKED
        )
        assert (
            testbed.revocation_transport(registry.crl_url, 12345) is RevocationStatus.REVOKED
        )
        registry._revoked.discard(12345)
        registry.ocsp._revoked.discard(12345)

    def test_unknown_url_is_unknown(self, testbed):
        assert (
            testbed.revocation_transport("http://nowhere.example/crl", 1)
            is RevocationStatus.UNKNOWN
        )

    def test_ocsp_checker_via_transport(self, testbed, universe):
        """A device configured for out-of-band OCSP (no stapling) rejects
        a revoked certificate through the transport path."""
        from repro.devices import Device, device_by_name
        from repro.devices.policies import RevocationBehavior
        from dataclasses import replace as dc_replace

        profile = device_by_name("D-Link Camera")
        ocsp_profile = dc_replace(
            profile,
            name="D-Link Camera (OCSP variant)",
            revocation=RevocationBehavior.of(RevocationMethod.OCSP),
        )
        device = Device(
            ocsp_profile,
            universe=universe,
            revocation_transport=testbed.revocation_transport,
        )
        destination = device.first_destination()
        server = testbed.server_for(destination)
        assert device.connect_destination(destination, server).established
        server.registry.revoke(server.chain[0])
        try:
            device.power_cycle()
            connection = device.connect_destination(destination, server)
            assert not connection.established
            alert = connection.attempt.final.client_alert
            assert alert is not None and alert.description.name == "CERTIFICATE_REVOKED"
        finally:
            server.registry._revoked.discard(server.chain[0].serial)
            server.registry.ocsp._revoked.discard(server.chain[0].serial)
