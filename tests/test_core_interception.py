"""Tests for the interception audit (Tables 2 and 7)."""

from __future__ import annotations

import pytest

from repro.core import InterceptionAuditor, TABLE2_ATTACKS
from repro.mitm import AttackMode


@pytest.fixture(scope="module")
def auditor(testbed):
    return InterceptionAuditor(testbed)


class TestAttackSuite:
    def test_three_table2_attacks(self):
        assert set(TABLE2_ATTACKS) == {
            AttackMode.NO_VALIDATION,
            AttackMode.INVALID_BASIC_CONSTRAINTS,
            AttackMode.WRONG_HOSTNAME,
        }


class TestPerDeviceAudits:
    def test_secure_device_not_vulnerable(self, auditor, testbed):
        report = auditor.audit_device(testbed.device("D-Link Camera"))
        assert not report.vulnerable
        assert report.vulnerable_destinations == 0

    def test_no_validation_device_fully_vulnerable(self, auditor, testbed):
        report = auditor.audit_device(testbed.device("Zmodo Doorbell"))
        for attack in TABLE2_ATTACKS:
            assert report.vulnerable_to(attack)
        assert report.vulnerable_destinations == report.total_destinations == 6
        assert report.leaks_sensitive_data

    def test_amazon_device_hostname_only(self, auditor, testbed):
        report = auditor.audit_device(testbed.device("Amazon Echo Dot"))
        assert report.vulnerable_to(AttackMode.WRONG_HOSTNAME)
        assert not report.vulnerable_to(AttackMode.NO_VALIDATION)
        assert not report.vulnerable_to(AttackMode.INVALID_BASIC_CONSTRAINTS)
        assert report.vulnerable_destinations == 1
        assert report.total_destinations == 9

    def test_yi_camera_needs_consecutive_failures(self, auditor, testbed):
        """Yi succumbs only after its validation-disable threshold."""
        report = auditor.audit_device(testbed.device("Yi Camera"))
        result = report.destinations[0].results[AttackMode.NO_VALIDATION]
        assert result.intercepted
        assert result.attempts_needed == 4  # three failures, then success

    def test_mixed_device_partial_vulnerability(self, auditor, testbed):
        report = auditor.audit_device(testbed.device("Wink Hub 2"))
        assert report.vulnerable_destinations == 1
        assert report.total_destinations == 2
        vulnerable = [d for d in report.destinations if d.vulnerable]
        assert vulnerable[0].instance == "wink-legacy"

    def test_captured_plaintext_on_success(self, auditor, testbed):
        report = auditor.audit_device(testbed.device("LG TV"))
        leaky = [d for d in report.destinations if d.vulnerable][0]
        result = leaky.results[AttackMode.NO_VALIDATION]
        assert any("deviceSecret" in text for text in result.captured_plaintext)

    def test_table7_row_shape(self, auditor, testbed):
        report = auditor.audit_device(testbed.device("Amcrest Camera"))
        row = report.table7_row()
        assert row[0] == "Amcrest Camera"
        assert row[1:4] == ("yes", "yes", "yes")
        assert row[4] == "2 / 2"


class TestCampaignWide:
    def test_eleven_vulnerable_devices(self, campaign_results):
        assert campaign_results.vulnerable_device_count == 11

    def test_paper_table7_vulnerable_set(self, campaign_results):
        vulnerable = {
            report.device for report in campaign_results.interception if report.vulnerable
        }
        assert vulnerable == {
            "Zmodo Doorbell",
            "Amcrest Camera",
            "Smarter iKettle",  # "Smarter Brewer" in the paper's tables
            "Yi Camera",
            "Wink Hub 2",
            "LG TV",
            "Smartthings Hub",
            "Amazon Echo Plus",
            "Amazon Echo Dot",
            "Amazon Echo Spot",
            "Fire TV",
        }

    def test_seven_devices_leak_sensitive_data(self, campaign_results):
        assert campaign_results.sensitive_leak_count == 7

    def test_seven_fully_vulnerable_devices(self, campaign_results):
        """'Seven devices do not perform any certificate validation' --
        i.e. all three attacks succeed somewhere."""
        full = [
            report
            for report in campaign_results.interception
            if report.vulnerable_to(AttackMode.NO_VALIDATION)
        ]
        assert len(full) == 7

    def test_paper_destination_ratios(self, campaign_results):
        expected = {
            "Zmodo Doorbell": (6, 6),
            "Amcrest Camera": (2, 2),
            "Smarter iKettle": (1, 1),
            "Yi Camera": (1, 1),
            "Wink Hub 2": (1, 2),
            "LG TV": (1, 2),
            "Smartthings Hub": (1, 3),
            "Amazon Echo Plus": (1, 8),
            "Amazon Echo Dot": (1, 9),
            "Amazon Echo Spot": (1, 17),
            "Fire TV": (1, 21),
        }
        for report in campaign_results.interception:
            if report.device in expected:
                assert (
                    report.vulnerable_destinations,
                    report.total_destinations,
                ) == expected[report.device], report.device
