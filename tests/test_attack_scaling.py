"""Tests for fingerprint-driven attack scaling (§5.3)."""

from __future__ import annotations

import pytest

from repro.analysis.attack_scaling import (
    FingerprintTargetedAttacker,
    shared_risk_analysis,
)
from repro.fingerprint import collect_device_fingerprints
from repro.mitm import AttackMode


@pytest.fixture(scope="module")
def collected(testbed, campaign_results):
    return collect_device_fingerprints(testbed)


@pytest.fixture(scope="module")
def attacker(testbed, campaign_results, collected):
    return FingerprintTargetedAttacker.from_campaign(campaign_results, collected, testbed)


class TestSharedRisk:
    @pytest.fixture(scope="class")
    def findings(self, testbed, campaign_results, collected):
        return shared_risk_analysis(campaign_results, collected, testbed)

    def test_amazon_wronghostname_propagates(self, findings):
        """The auth-path flaw on one Echo predicts the same flaw on the
        rest of the cluster sharing that fingerprint."""
        amazon = [
            finding
            for finding in findings
            if finding.attack is AttackMode.WRONG_HOSTNAME
            and finding.source_device.startswith("Amazon Echo")
            and finding.predicted_devices
        ]
        assert amazon
        predicted = set().union(*(set(f.predicted_devices) for f in amazon))
        assert {"Fire TV", "Amazon Echo Plus"} & predicted

    def test_propagation_precision_is_high(self, findings):
        """Same fingerprint == same instance == same flaw: the paper's
        scaling premise should validate with high precision."""
        scored = [finding for finding in findings if finding.predicted_devices]
        assert scored
        mean_precision = sum(finding.precision for finding in scored) / len(scored)
        assert mean_precision > 0.8

    def test_no_propagation_from_unique_fingerprints(self, findings):
        for finding in findings:
            assert finding.source_device not in finding.predicted_devices


class TestTargetedAttacker:
    def test_knowledge_base_learned(self, attacker):
        assert attacker.vulnerable_fingerprints
        attacks = set().union(*attacker.vulnerable_fingerprints.values())
        assert AttackMode.WRONG_HOSTNAME in attacks
        assert AttackMode.NO_VALIDATION in attacks

    def test_targeting_economics(self, attacker, passive_capture):
        outcome = attacker.evaluate(passive_capture)
        assert outcome.total_connections > 0
        # Targeting touches a small share of all traffic...
        assert outcome.touch_fraction < 0.25
        # ...with a far better per-connection yield than blind attacking...
        assert outcome.targeted_yield > 4 * outcome.blind_yield
        # ...while keeping every interceptable connection in scope.
        assert outcome.recall == 1.0

    def test_would_target_respects_hostname_refinement(self, attacker, passive_capture):
        """Amazon-fingerprinted traffic to non-auth hosts is skipped."""
        skipped = [
            record
            for record in passive_capture.records
            if record.device == "Amazon Echo Dot"
            and record.hostname.startswith("svc")
            and not attacker.would_target(record)
        ]
        assert skipped

    def test_empty_capture(self, attacker):
        from repro.testbed import GatewayCapture

        outcome = attacker.evaluate(GatewayCapture())
        assert outcome.touch_fraction == 0.0
        assert outcome.recall == 1.0
