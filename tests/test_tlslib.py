"""Unit tests for the simulated TLS libraries (Table 4 behaviours)."""

from __future__ import annotations

import pytest

from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.pki import utc
from repro.pki.validation import ValidationErrorCode
from repro.tls import AlertDescription, ExtensionType, ProtocolVersion
from repro.tlslib import (
    ALL_LIBRARIES,
    GNUTLS,
    MBEDTLS,
    OPENSSL,
    ORACLE_JAVA,
    SECURE_TRANSPORT,
    WOLFSSL,
    ClientConfig,
    by_name,
)

WHEN = utc(2021, 3)


def _config(store, **kwargs) -> ClientConfig:
    defaults = dict(
        versions=(ProtocolVersion.TLS_1_2,),
        cipher_codes=FS_MODERN + RSA_PLAIN,
        root_store=store,
    )
    defaults.update(kwargs)
    return ClientConfig(**defaults)


class TestCatalog:
    def test_six_libraries(self):
        assert len(ALL_LIBRARIES) == 6

    def test_lookup_by_name(self):
        assert by_name("OpenSSL") is OPENSSL
        with pytest.raises(KeyError):
            by_name("BoringSSL")

    def test_exactly_two_amenable_policies(self):
        amenable = [lib for lib in ALL_LIBRARIES if lib.alert_policy.distinguishes_unknown_ca]
        assert {lib.name for lib in amenable} == {"MbedTLS", "OpenSSL"}

    @pytest.mark.parametrize(
        "library,unknown,bad_sig",
        [
            (MBEDTLS, AlertDescription.UNKNOWN_CA, AlertDescription.BAD_CERTIFICATE),
            (OPENSSL, AlertDescription.UNKNOWN_CA, AlertDescription.DECRYPT_ERROR),
            (ORACLE_JAVA, AlertDescription.CERTIFICATE_UNKNOWN, AlertDescription.CERTIFICATE_UNKNOWN),
            (WOLFSSL, AlertDescription.BAD_CERTIFICATE, AlertDescription.BAD_CERTIFICATE),
            (GNUTLS, None, None),
            (SECURE_TRANSPORT, None, None),
        ],
    )
    def test_table4_alert_policies(self, library, unknown, bad_sig):
        policy = library.alert_policy
        assert policy.alert_for(ValidationErrorCode.UNKNOWN_CA) is unknown
        assert policy.alert_for(ValidationErrorCode.BAD_SIGNATURE) is bad_sig

    def test_silent_libraries_flagged(self):
        assert not GNUTLS.sends_alerts
        assert not SECURE_TRANSPORT.sends_alerts
        assert OPENSSL.sends_alerts


class TestHelloShaping:
    def test_extension_dialects_differ(self, simple_store):
        config = _config(simple_store)
        hellos = {
            library.name: library.client(config).build_client_hello("h.example.com")
            for library in ALL_LIBRARIES
        }
        type_orders = {
            name: tuple(ext.extension_type for ext in hello.extensions)
            for name, hello in hellos.items()
        }
        assert len(set(type_orders.values())) == len(ALL_LIBRARIES)

    def test_sni_respects_config(self, simple_store):
        client = OPENSSL.client(_config(simple_store, send_sni=False))
        hello = client.build_client_hello("h.example.com")
        assert hello.server_name is None

    def test_staple_request_respects_config(self, simple_store):
        client = OPENSSL.client(_config(simple_store, request_ocsp_staple=True))
        hello = client.build_client_hello("h.example.com")
        assert hello.requests_ocsp_staple

    def test_tls13_offer_uses_supported_versions(self, simple_store):
        config = _config(
            simple_store,
            versions=(ProtocolVersion.TLS_1_2, ProtocolVersion.TLS_1_3),
        )
        hello = OPENSSL.client(config).build_client_hello("h.example.com")
        assert hello.legacy_version is ProtocolVersion.TLS_1_2  # RFC 8446
        assert hello.max_version is ProtocolVersion.TLS_1_3
        assert hello.extension(ExtensionType.SUPPORTED_VERSIONS) is not None

    def test_pre13_hello_hides_lower_versions(self, simple_store):
        """Offering 1.0-1.2 looks identical on the wire to offering only
        1.2 -- the fingerprint cannot tell them apart."""
        legacy = _config(
            simple_store,
            versions=(
                ProtocolVersion.TLS_1_0,
                ProtocolVersion.TLS_1_1,
                ProtocolVersion.TLS_1_2,
            ),
        )
        modern = _config(simple_store, versions=(ProtocolVersion.TLS_1_2,))
        hello_legacy = OPENSSL.client(legacy).build_client_hello("h.example.com")
        hello_modern = OPENSSL.client(modern).build_client_hello("h.example.com")
        assert hello_legacy == hello_modern

    def test_session_ticket_extension_conditional(self, simple_store):
        with_ticket = OPENSSL.client(
            _config(simple_store, session_tickets=True)
        ).build_client_hello("h")
        without = OPENSSL.client(_config(simple_store)).build_client_hello("h")
        has = lambda hello: hello.extension(ExtensionType.SESSION_TICKET) is not None
        assert has(with_ticket) and not has(without)


class TestValidationKnobs:
    def test_validate_false_accepts_anything(self, simple_store):
        from repro.pki import CertificateAuthority
        from repro.tls import ServerHello, ServerResponse

        config = _config(simple_store, validate=False)
        client = WOLFSSL.client(config)
        bad, _ = CertificateAuthority.self_signed_leaf("h.example.com")
        response = ServerResponse(
            server_hello=ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=FS_MODERN[0]),
            certificate_chain=(bad,),
        )
        verdict = client.evaluate_response(response, hostname="h.example.com", when=WHEN)
        assert verdict.accept

    def test_no_hostname_check_accepts_wrong_name(self, simple_store, simple_ca):
        from repro.tls import ServerHello, ServerResponse

        leaf, _ = simple_ca.issue_leaf("attacker.example")
        config = _config(simple_store, check_hostname=False)
        client = OPENSSL.client(config)
        response = ServerResponse(
            server_hello=ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=FS_MODERN[0]),
            certificate_chain=(leaf, simple_ca.certificate),
        )
        verdict = client.evaluate_response(response, hostname="victim.example", when=WHEN)
        assert verdict.accept

    def test_silent_library_rejects_without_alert(self, simple_store):
        from repro.pki import CertificateAuthority
        from repro.tls import ServerHello, ServerResponse

        client = GNUTLS.client(_config(simple_store))
        bad, _ = CertificateAuthority.self_signed_leaf("h.example.com")
        response = ServerResponse(
            server_hello=ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=FS_MODERN[0]),
            certificate_chain=(bad,),
        )
        verdict = client.evaluate_response(response, hostname="h.example.com", when=WHEN)
        assert not verdict.accept
        assert verdict.alert is None

    def test_downgraded_copy_changes_only_requested_fields(self, simple_store):
        config = _config(simple_store)
        downgraded = config.downgraded(versions=(ProtocolVersion.SSL_3_0,))
        assert downgraded.versions == (ProtocolVersion.SSL_3_0,)
        assert downgraded.cipher_codes == config.cipher_codes
        assert downgraded.root_store is config.root_store
