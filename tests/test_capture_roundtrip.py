"""Round-trip tests: exported capture JSON reloads byte-faithfully."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import capture_from_records, capture_to_records, write_json


@pytest.fixture(scope="module")
def reloaded(passive_capture):
    return capture_from_records(capture_to_records(passive_capture))


class TestRoundtrip:
    def test_record_counts_preserved(self, passive_capture, reloaded):
        assert len(reloaded) == len(passive_capture)
        assert sum(r.count for r in reloaded.records) == sum(
            r.count for r in passive_capture.records
        )

    def test_hellos_identical(self, passive_capture, reloaded):
        for original, loaded in zip(passive_capture.records, reloaded.records):
            assert loaded.client_hello == original.client_hello
            assert loaded.established_version == original.established_version
            assert loaded.established_cipher_code == original.established_cipher_code
            assert loaded.client_alert == original.client_alert

    def test_analyses_agree_on_loaded_capture(self, passive_capture, reloaded):
        from repro.analysis import analyze_revocation, compare_with_prior_work
        from repro.longitudinal import build_version_heatmap

        assert (
            build_version_heatmap(reloaded).shown_devices()
            == build_version_heatmap(passive_capture).shown_devices()
        )
        assert (
            analyze_revocation(reloaded).stapling_devices
            == analyze_revocation(passive_capture).stapling_devices
        )
        original_cmp = compare_with_prior_work(passive_capture)
        loaded_cmp = compare_with_prior_work(reloaded)
        assert loaded_cmp.tls13_fraction == original_cmp.tls13_fraction
        assert loaded_cmp.rc4_fraction == original_cmp.rc4_fraction

    def test_fingerprints_survive(self, passive_capture, reloaded):
        from repro.fingerprint import fingerprint

        originals = {fingerprint(r.client_hello) for r in passive_capture.records[:200]}
        loadeds = {fingerprint(r.client_hello) for r in reloaded.records[:200]}
        assert originals == loadeds

    def test_via_actual_json_file(self, passive_capture, tmp_path):
        path = write_json(capture_to_records(passive_capture)[:100], tmp_path / "cap.json")
        loaded = capture_from_records(json.loads(path.read_text()))
        assert len(loaded) == 100
