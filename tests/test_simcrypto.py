"""Unit tests for the simulated signature scheme."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.pki.simcrypto import Signature, generate_keypair, sha256_hex, verify


class TestKeyGeneration:
    def test_seeded_generation_is_deterministic(self):
        a = generate_keypair(seed=b"same-seed")
        b = generate_keypair(seed=b"same-seed")
        assert a.public.key_id == b.public.key_id

    def test_different_seeds_yield_different_keys(self):
        a = generate_keypair(seed=b"seed-a")
        b = generate_keypair(seed=b"seed-b")
        assert a.public.key_id != b.public.key_id

    def test_unseeded_keys_are_unique(self):
        keys = {generate_keypair().public.key_id for _ in range(32)}
        assert len(keys) == 32

    def test_public_key_fingerprint_is_prefix(self):
        pair = generate_keypair(seed=b"fp")
        assert pair.public.key_id.startswith(pair.public.fingerprint())


class TestSignVerify:
    def test_valid_signature_verifies(self):
        pair = generate_keypair(seed=b"sv")
        signature = pair.private.sign(b"message")
        assert verify(pair.public, b"message", signature)

    def test_signature_bound_to_message(self):
        pair = generate_keypair(seed=b"sv2")
        signature = pair.private.sign(b"message")
        assert not verify(pair.public, b"other message", signature)

    def test_signature_bound_to_key(self):
        signer = generate_keypair(seed=b"signer")
        other = generate_keypair(seed=b"other")
        signature = signer.private.sign(b"message")
        assert not verify(other.public, b"message", signature)

    def test_forged_tag_rejected(self):
        pair = generate_keypair(seed=b"forge")
        forged = Signature(key_id=pair.public.key_id, tag="00" * 32)
        assert not verify(pair.public, b"message", forged)

    def test_unregistered_key_id_rejected(self):
        pair = generate_keypair(seed=b"unreg")
        bogus = Signature(key_id="f" * 64, tag=pair.private.sign(b"m").tag)
        from repro.pki.simcrypto import PublicKey

        assert not verify(PublicKey(key_id="f" * 64), b"m", bogus)

    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_cross_message_unforgeability(self, message, other):
        pair = generate_keypair(seed=b"prop")
        signature = pair.private.sign(message)
        assert verify(pair.public, message, signature)
        if other != message:
            assert not verify(pair.public, other, signature)


def test_sha256_hex_known_value():
    assert sha256_hex(b"") == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )
