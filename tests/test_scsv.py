"""Tests for TLS_FALLBACK_SCSV (RFC 7507) support."""

from __future__ import annotations

import pytest

from repro.devices import ServerEpoch, ServerSpec, TLSInstanceSpec
from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.devices.instance import InstanceConfigSpec, TLSInstance
from repro.devices.policies import FallbackMode, FallbackPolicy, FallbackTrigger
from repro.pki import utc
from repro.tls import ClientHello, ProtocolVersion, negotiate
from repro.tls.ciphersuites import TLS_FALLBACK_SCSV
from repro.tlslib import WOLFSSL

WHEN = utc(2021, 3)

_ALL_LEGACY = frozenset(
    {
        ProtocolVersion.SSL_3_0,
        ProtocolVersion.TLS_1_0,
        ProtocolVersion.TLS_1_1,
        ProtocolVersion.TLS_1_2,
    }
)


class TestNegotiationWithScsv:
    def _fallback_hello(self, max_version=ProtocolVersion.SSL_3_0) -> ClientHello:
        return ClientHello(
            legacy_version=max_version,
            cipher_codes=RSA_PLAIN + (TLS_FALLBACK_SCSV,),
        )

    def test_scsv_fallback_refused_by_conforming_server(self):
        assert (
            negotiate(self._fallback_hello(), _ALL_LEGACY, RSA_PLAIN, honor_fallback_scsv=True)
            is None
        )

    def test_scsv_ignored_by_legacy_server(self):
        server_hello = negotiate(self._fallback_hello(), _ALL_LEGACY, RSA_PLAIN)
        assert server_hello is not None
        assert server_hello.version is ProtocolVersion.SSL_3_0

    def test_scsv_at_servers_best_version_is_fine(self):
        """RFC 7507: the signal only matters when the client's maximum is
        *below* the server's best -- a retry at the top version passes."""
        hello = self._fallback_hello(max_version=ProtocolVersion.TLS_1_2)
        server_hello = negotiate(hello, _ALL_LEGACY, RSA_PLAIN, honor_fallback_scsv=True)
        assert server_hello is not None
        assert server_hello.version is ProtocolVersion.TLS_1_2

    def test_scsv_never_selected_as_a_suite(self):
        hello = self._fallback_hello(max_version=ProtocolVersion.TLS_1_2)
        server_hello = negotiate(
            hello, _ALL_LEGACY, (TLS_FALLBACK_SCSV,) + RSA_PLAIN, honor_fallback_scsv=True
        )
        assert server_hello.cipher_code != TLS_FALLBACK_SCSV


class TestScsvFallbackPolicy:
    def _instance(self, *, scsv: bool) -> TLSInstance:
        from repro.pki import CertificateAuthority, DistinguishedName, RootStore

        ca = CertificateAuthority(DistinguishedName(common_name="SCSV Root"), seed=b"scsv")
        store = RootStore.from_certificates("scsv", [ca.certificate])
        spec = TLSInstanceSpec.static(
            "scsv-instance",
            WOLFSSL,
            InstanceConfigSpec(
                versions=(
                    ProtocolVersion.SSL_3_0,
                    ProtocolVersion.TLS_1_0,
                    ProtocolVersion.TLS_1_1,
                    ProtocolVersion.TLS_1_2,
                ),
                cipher_codes=FS_MODERN + RSA_PLAIN,
            ),
            fallback=FallbackPolicy(
                mode=FallbackMode.SSL3,
                triggers=frozenset({FallbackTrigger.INCOMPLETE_HANDSHAKE}),
                send_fallback_scsv=scsv,
            ),
        )
        return TLSInstance(spec, store)

    def test_scsv_appended_to_retry(self):
        instance = self._instance(scsv=True)
        downgraded = instance.spec.fallback.apply(instance.client_config(38))
        assert downgraded.cipher_codes[-1] == TLS_FALLBACK_SCSV

    def test_paper_devices_do_not_send_scsv(self):
        """None of the study's downgrading devices signalled fallback."""
        from repro.devices import active_devices

        for profile in active_devices():
            for spec in profile.instances:
                if spec.fallback is not None:
                    assert not spec.fallback.send_fallback_scsv, profile.name


class TestEndToEndScsvProtection:
    @pytest.fixture()
    def scsv_server_spec(self) -> ServerSpec:
        return ServerSpec(
            timeline=(
                (
                    0,
                    ServerEpoch(
                        versions=(
                            ProtocolVersion.SSL_3_0,
                            ProtocolVersion.TLS_1_0,
                            ProtocolVersion.TLS_1_1,
                            ProtocolVersion.TLS_1_2,
                        ),
                        cipher_codes=RSA_PLAIN + FS_MODERN,
                    ),
                ),
            ),
            honor_fallback_scsv=True,
        )

    def test_conforming_server_refuses_signalled_downgrade(self, testbed, scsv_server_spec):
        """A first-attempt blip triggers the fallback retry; an RFC 7507
        server rejects the SSL 3.0 retry instead of serving it."""
        from repro.devices import DestinationSpec
        from repro.testbed.cloud import CloudServer
        from repro.tls.alerts import AlertDescription

        destination = DestinationSpec(
            hostname="scsv.example.com", instance="x", server=scsv_server_spec
        )
        server = CloudServer.build(
            destination.hostname,
            scsv_server_spec,
            testbed.anchor(0),
            testbed.intermediate(0),
            testbed.registry(0),
        )
        hello = ClientHello(
            legacy_version=ProtocolVersion.SSL_3_0,
            cipher_codes=RSA_PLAIN + (TLS_FALLBACK_SCSV,),
        )
        response = server.respond(hello, when=WHEN)
        assert response.server_hello is None
        assert response.alert.description is AlertDescription.INAPPROPRIATE_FALLBACK

    def test_unsignalled_downgrade_still_served(self, testbed, scsv_server_spec):
        """Without the SCSV (the study's devices), even a conforming
        server cannot tell a fallback from a genuinely old client."""
        from repro.testbed.cloud import CloudServer

        server = CloudServer.build(
            "scsv2.example.com",
            scsv_server_spec,
            testbed.anchor(0),
            testbed.intermediate(0),
            testbed.registry(0),
        )
        hello = ClientHello(legacy_version=ProtocolVersion.SSL_3_0, cipher_codes=RSA_PLAIN)
        response = server.respond(hello, when=WHEN)
        assert response.server_hello is not None
        assert response.server_hello.version is ProtocolVersion.SSL_3_0
