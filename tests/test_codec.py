"""Tests for the binary TLS wire codec and pcap export."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.configs import FS_MODERN, RSA_PLAIN, TLS13, WEAK_LEGACY
from repro.fingerprint import fingerprint
from repro.tls import (
    Alert,
    AlertDescription,
    ClientHello,
    NamedGroup,
    ProtocolVersion,
    ServerHello,
    SignatureScheme,
    alpn_ext,
    ec_point_formats_ext,
    signature_algorithms_ext,
    sni,
    status_request,
    supported_groups_ext,
    supported_versions_ext,
)
from repro.tls.codec import (
    CodecError,
    decode_alert,
    decode_client_hello,
    decode_server_hello,
    encode_alert,
    encode_client_hello,
    encode_server_hello,
)

FULL_EXTENSIONS = (
    sni("device.example.com"),
    status_request(),
    supported_groups_ext((NamedGroup.X25519, NamedGroup.SECP256R1)),
    ec_point_formats_ext(),
    signature_algorithms_ext((SignatureScheme.RSA_PKCS1_SHA256,)),
    alpn_ext(("h2", "http/1.1")),
)


class TestClientHelloRoundtrip:
    def test_full_roundtrip(self):
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=FS_MODERN + RSA_PLAIN + WEAK_LEGACY,
            extensions=FULL_EXTENSIONS,
        )
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded == hello

    def test_supported_versions_roundtrip(self):
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=TLS13 + FS_MODERN,
            extensions=(
                supported_versions_ext(
                    (ProtocolVersion.TLS_1_3.wire, ProtocolVersion.TLS_1_2.wire)
                ),
            ),
        )
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded.max_version is ProtocolVersion.TLS_1_3

    def test_fingerprint_survives_the_wire(self):
        """JA3 from decoded bytes == JA3 from the in-memory hello."""
        hello = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=FS_MODERN + RSA_PLAIN,
            extensions=FULL_EXTENSIONS,
        )
        decoded = decode_client_hello(encode_client_hello(hello))
        assert fingerprint(decoded) == fingerprint(hello)

    def test_encoding_is_deterministic_per_seed(self):
        hello = ClientHello(legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=RSA_PLAIN)
        assert encode_client_hello(hello, seed="a") == encode_client_hello(hello, seed="a")
        assert encode_client_hello(hello, seed="a") != encode_client_hello(hello, seed="b")

    @given(
        ciphers=st.lists(
            st.sampled_from(sorted(FS_MODERN + RSA_PLAIN + WEAK_LEGACY)),
            min_size=1,
            max_size=20,
            unique=True,
        ),
        version=st.sampled_from(
            [ProtocolVersion.TLS_1_0, ProtocolVersion.TLS_1_1, ProtocolVersion.TLS_1_2]
        ),
        hostname=st.from_regex(r"[a-z]{1,10}\.[a-z]{2,8}\.com", fullmatch=True),
    )
    @settings(max_examples=60)
    def test_property_roundtrip(self, ciphers, version, hostname):
        hello = ClientHello(
            legacy_version=version,
            cipher_codes=tuple(ciphers),
            extensions=(sni(hostname), ec_point_formats_ext()),
        )
        assert decode_client_hello(encode_client_hello(hello)) == hello

    def test_device_hellos_roundtrip(self, testbed):
        """Every catalog device's real boot hello survives the wire."""
        from repro.devices import active_devices

        for profile in active_devices()[:8]:
            device = testbed.device(profile)
            for connection in device.boot(lambda d: testbed.server_for(d)):
                hello = connection.attempt.attempts[0].client_hello
                assert decode_client_hello(encode_client_hello(hello)) == hello
            break  # one full device is plenty per run


class TestServerHelloAndAlert:
    def test_server_hello_roundtrip(self):
        hello = ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=FS_MODERN[0])
        assert decode_server_hello(encode_server_hello(hello)) == hello

    def test_alert_roundtrip(self):
        alert = Alert.fatal(AlertDescription.UNKNOWN_CA)
        assert decode_alert(encode_alert(alert)) == alert

    def test_alert_for_every_description(self):
        for description in AlertDescription:
            alert = Alert.fatal(description)
            assert decode_alert(encode_alert(alert)) == alert


class TestMalformedInput:
    def test_truncated_record(self):
        hello = ClientHello(legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=RSA_PLAIN)
        wire = encode_client_hello(hello)
        with pytest.raises(CodecError):
            decode_client_hello(wire[: len(wire) // 2])

    def test_wrong_content_type(self):
        alert_wire = encode_alert(Alert.fatal(AlertDescription.CLOSE_NOTIFY))
        with pytest.raises(CodecError):
            decode_client_hello(alert_wire)

    def test_server_hello_is_not_client_hello(self):
        wire = encode_server_hello(
            ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=RSA_PLAIN[0])
        )
        with pytest.raises(CodecError):
            decode_client_hello(wire)

    def test_odd_cipher_vector_rejected(self):
        hello = ClientHello(legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=RSA_PLAIN)
        wire = bytearray(encode_client_hello(hello))
        # Corrupt the cipher-suite vector length to an odd value: the
        # length field sits after record(5)+hs(4)+version(2)+random(32)+sid(1).
        offset = 5 + 4 + 2 + 32 + 1
        length = struct.unpack("!H", wire[offset : offset + 2])[0]
        wire[offset : offset + 2] = struct.pack("!H", length - 1)
        with pytest.raises(CodecError):
            decode_client_hello(bytes(wire))

    def test_unknown_alert_code(self):
        wire = bytearray(encode_alert(Alert.fatal(AlertDescription.CLOSE_NOTIFY)))
        wire[-1] = 213  # unassigned description
        with pytest.raises(CodecError):
            decode_alert(bytes(wire))

    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode_client_hello(b"")


class TestPcapExport:
    def test_pcap_structure(self, passive_capture, tmp_path):
        from repro.testbed.pcap import PCAP_MAGIC, write_pcap

        path = write_pcap(passive_capture, tmp_path / "trace.pcap", limit=25)
        data = path.read_bytes()
        magic, vmaj, vmin = struct.unpack("!IHH", data[:8])
        assert magic == PCAP_MAGIC and (vmaj, vmin) == (2, 4)

        # Walk the packet records; every payload must decode as TLS.
        offset = 24
        packets = 0
        while offset < len(data):
            _ts, _us, caplen, origlen = struct.unpack("!IIII", data[offset : offset + 16])
            assert caplen == origlen
            packet = data[offset + 16 : offset + 16 + caplen]
            assert packet[12:14] == b"\x08\x00"  # IPv4 ethertype
            tls_payload = packet[14 + 20 + 20 :]
            decoded = decode_client_hello(tls_payload)
            assert decoded.cipher_codes
            offset += 16 + caplen
            packets += 1
        assert packets == 25

    def test_pcap_full_capture(self, tmp_path, testbed):
        from repro.longitudinal import PassiveTraceGenerator
        from repro.testbed.pcap import write_pcap

        capture = PassiveTraceGenerator(testbed, scale=1).generate()
        path = write_pcap(capture, tmp_path / "full.pcap")
        assert path.stat().st_size > 24 + len(capture) * 16
