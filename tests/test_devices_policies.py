"""Unit tests for device policies, instances and fallback behaviour."""

from __future__ import annotations

import pytest

from repro.devices import (
    FallbackMode,
    FallbackPolicy,
    FallbackTrigger,
    InstanceConfigSpec,
    RevocationBehavior,
    TLSInstance,
    TLSInstanceSpec,
    ValidationMode,
    ValidationPolicy,
)
from repro.devices.configs import FS_MODERN, RSA_PLAIN, codes
from repro.pki import utc
from repro.pki.revocation import RevocationMethod
from repro.tls import ProtocolVersion, ServerResponse
from repro.tlslib import ClientConfig, WOLFSSL


class TestValidationPolicy:
    def test_modes(self):
        assert ValidationPolicy().validates
        assert ValidationPolicy().checks_hostname
        assert not ValidationPolicy(mode=ValidationMode.NONE).validates
        no_host = ValidationPolicy(mode=ValidationMode.NO_HOSTNAME)
        assert no_host.validates and not no_host.checks_hostname


class TestFallbackPolicy:
    def _config(self, store):
        return ClientConfig(
            versions=(
                ProtocolVersion.TLS_1_0,
                ProtocolVersion.TLS_1_1,
                ProtocolVersion.TLS_1_2,
            ),
            cipher_codes=FS_MODERN + RSA_PLAIN,
            root_store=store,
        )

    def test_ssl3_fallback_shape(self, simple_store):
        policy = FallbackPolicy(mode=FallbackMode.SSL3)
        downgraded = policy.apply(self._config(simple_store))
        assert downgraded.versions == (ProtocolVersion.SSL_3_0,)
        assert all(code < 0x1301 or code > 0x1305 for code in downgraded.cipher_codes)

    def test_tls10_fallback_shape(self, simple_store):
        policy = FallbackPolicy(mode=FallbackMode.TLS10)
        downgraded = policy.apply(self._config(simple_store))
        assert downgraded.versions == (ProtocolVersion.TLS_1_0,)

    def test_weak_cipher_fallback_adds_3des_and_sha1(self, simple_store):
        from repro.tls.extensions import SignatureScheme

        policy = FallbackPolicy(mode=FallbackMode.WEAK_CIPHER)
        config = self._config(simple_store).downgraded(
            signature_schemes=(SignatureScheme.RSA_PKCS1_SHA256,)
        )
        downgraded = policy.apply(config)
        assert codes("TLS_RSA_WITH_3DES_EDE_CBC_SHA")[0] in downgraded.cipher_codes
        assert SignatureScheme.RSA_PKCS1_SHA1 in downgraded.signature_schemes

    def test_single_rc4_fallback_collapses_offer(self, simple_store):
        policy = FallbackPolicy(mode=FallbackMode.SINGLE_RC4)
        downgraded = policy.apply(self._config(simple_store))
        assert downgraded.cipher_codes == codes("TLS_RSA_WITH_RC4_128_SHA")

    def test_trigger_filter(self):
        policy = FallbackPolicy(mode=FallbackMode.SSL3)
        assert policy.triggered_by(FallbackTrigger.INCOMPLETE_HANDSHAKE)
        assert not policy.triggered_by(FallbackTrigger.FAILED_HANDSHAKE)

    def test_descriptions_match_table5_language(self):
        assert FallbackPolicy(mode=FallbackMode.SSL3).describe() == "Falls back to using SSL 3.0"
        assert "TLS 1.0" in FallbackPolicy(mode=FallbackMode.TLS10).describe()
        assert "RSA_PKCS1_SHA1" in FallbackPolicy(mode=FallbackMode.WEAK_CIPHER).describe()


class TestRevocationBehavior:
    def test_none_checks_nothing(self):
        assert not RevocationBehavior.none().checks_any

    def test_of_constructor(self):
        behavior = RevocationBehavior.of(RevocationMethod.CRL, RevocationMethod.OCSP)
        assert behavior.uses_crl and behavior.uses_ocsp and not behavior.uses_stapling
        assert behavior.checks_any


class TestInstanceTimeline:
    def _spec(self) -> TLSInstanceSpec:
        return TLSInstanceSpec(
            name="timeline",
            library=WOLFSSL,
            timeline=(
                (0, InstanceConfigSpec(versions=(ProtocolVersion.TLS_1_0,), cipher_codes=RSA_PLAIN)),
                (6, InstanceConfigSpec(versions=(ProtocolVersion.TLS_1_2,), cipher_codes=RSA_PLAIN)),
            ),
        )

    def test_config_at_selects_epoch(self):
        spec = self._spec()
        assert spec.config_at(0).versions == (ProtocolVersion.TLS_1_0,)
        assert spec.config_at(5).versions == (ProtocolVersion.TLS_1_0,)
        assert spec.config_at(6).versions == (ProtocolVersion.TLS_1_2,)
        assert spec.config_at(99).versions == (ProtocolVersion.TLS_1_2,)

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError):
            TLSInstanceSpec(name="bad", library=WOLFSSL, timeline=())

    def test_unsorted_timeline_rejected(self):
        config = InstanceConfigSpec(versions=(ProtocolVersion.TLS_1_2,), cipher_codes=RSA_PLAIN)
        with pytest.raises(ValueError):
            TLSInstanceSpec(name="bad", library=WOLFSSL, timeline=((6, config), (0, config)))


class _SilentResponder:
    """Never answers: the IncompleteHandshake condition."""

    def respond(self, client_hello, *, when):
        return ServerResponse(incomplete=True)


class TestInstanceRuntime:
    def test_fallback_retry_recorded(self, simple_store):
        spec = TLSInstanceSpec.static(
            "fb",
            WOLFSSL,
            InstanceConfigSpec(
                versions=(ProtocolVersion.TLS_1_0, ProtocolVersion.TLS_1_2),
                cipher_codes=RSA_PLAIN,
            ),
            fallback=FallbackPolicy(mode=FallbackMode.SSL3),
        )
        instance = TLSInstance(spec, simple_store)
        attempt = instance.connect(
            _SilentResponder(), hostname="h", when=utc(2021, 3), month=38
        )
        assert attempt.downgraded
        assert len(attempt.attempts) == 2
        assert attempt.attempts[1].client_hello.max_version is ProtocolVersion.SSL_3_0

    def test_fallback_suppressed_per_destination(self, simple_store):
        spec = TLSInstanceSpec.static(
            "fb2",
            WOLFSSL,
            InstanceConfigSpec(versions=(ProtocolVersion.TLS_1_2,), cipher_codes=RSA_PLAIN),
            fallback=FallbackPolicy(mode=FallbackMode.SSL3),
        )
        instance = TLSInstance(spec, simple_store)
        attempt = instance.connect(
            _SilentResponder(), hostname="h", when=utc(2021, 3), month=38, fallback_enabled=False
        )
        assert not attempt.downgraded
        assert len(attempt.attempts) == 1

    def test_validation_disabled_after_consecutive_failures(self, simple_store):
        spec = TLSInstanceSpec.static(
            "yi-like",
            WOLFSSL,
            InstanceConfigSpec(versions=(ProtocolVersion.TLS_1_2,), cipher_codes=RSA_PLAIN),
            validation=ValidationPolicy(disable_after_failures=3),
        )
        instance = TLSInstance(spec, simple_store)
        for _ in range(3):
            instance.connect(_SilentResponder(), hostname="h", when=utc(2021, 3), month=38)
        assert instance.validation_disabled
        assert not instance.client_config(38).validate
        instance.reset_failure_state()
        assert not instance.validation_disabled
        assert instance.client_config(38).validate
