"""Tests for the testbed: cloud servers, capture plumbing, smart plugs."""

from __future__ import annotations

import pytest

from repro.devices import ServerEpoch, ServerSpec, device_by_name
from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.pki import utc, validate_chain
from repro.testbed import NotRebootableError, SmartPlug, Testbed, month_of
from repro.tls import ProtocolVersion


class TestMonthConversion:
    @pytest.mark.parametrize(
        "when,month",
        [
            (utc(2018, 1), 0),
            (utc(2018, 12), 11),
            (utc(2019, 7), 18),
            (utc(2020, 3), 26),
            (utc(2021, 3), 38),
        ],
    )
    def test_month_of(self, when, month):
        assert month_of(when) == month

    def test_roundtrip_with_month_to_date(self):
        from repro.devices import month_to_date

        for month in (0, 11, 26, 38):
            assert month_of(month_to_date(month)) == month


class TestCloudServers:
    def test_server_chain_validates_in_device_stores(self, testbed):
        device = testbed.device("Google Home Mini")
        destination = device.profile.destinations[0]
        server = testbed.server_for(destination)
        result = validate_chain(
            list(server.chain),
            device.root_store,
            when=utc(2021, 3),
            hostname=destination.hostname,
        )
        assert result.ok

    def test_server_cached_per_hostname(self, testbed):
        destination = device_by_name("Google Home Mini").destinations[0]
        assert testbed.server_for(destination) is testbed.server_for(destination)

    def test_epoch_timeline_respected(self, testbed):
        spec = ServerSpec(
            timeline=(
                (0, ServerEpoch(versions=(ProtocolVersion.TLS_1_1,), cipher_codes=RSA_PLAIN)),
                (10, ServerEpoch(versions=(ProtocolVersion.TLS_1_2,), cipher_codes=FS_MODERN)),
            )
        )
        assert spec.epoch_at(0).versions == (ProtocolVersion.TLS_1_1,)
        assert spec.epoch_at(9).versions == (ProtocolVersion.TLS_1_1,)
        assert spec.epoch_at(10).versions == (ProtocolVersion.TLS_1_2,)

    def test_staple_served_only_when_requested_and_supported(self, testbed):
        from repro.tls import ClientHello, status_request

        device = testbed.device("Google Home Mini")
        destination = device.profile.destinations[0]  # stapling-capable
        server = testbed.server_for(destination)

        with_request = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=FS_MODERN,
            extensions=(status_request(),),
        )
        without_request = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=FS_MODERN
        )
        assert server.respond(with_request, when=utc(2021, 3)).ocsp_staple is not None
        assert server.respond(without_request, when=utc(2021, 3)).ocsp_staple is None

    def test_handshake_failure_alert_on_no_overlap(self, testbed):
        from repro.tls import ClientHello
        from repro.devices.configs import TLS13

        device = testbed.device("Samsung Dryer")
        destination = device.profile.destinations[0]  # TLS 1.0/1.1-only server
        server = testbed.server_for(destination)
        hello = ClientHello(legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=TLS13)
        response = server.respond(hello, when=utc(2021, 3))
        assert response.server_hello is None
        assert response.alert is not None


class TestCaptureRecording:
    def test_record_connection_emits_one_record_per_attempt(self, universe):
        testbed = Testbed(universe)
        device = testbed.device("Apple HomePod")
        from repro.mitm import AttackerToolbox, AttackMode, InterceptionProxy

        proxy = InterceptionProxy(
            toolbox=AttackerToolbox(issuing_ca=testbed.anchor(0)),
            mode=AttackMode.INCOMPLETE_HANDSHAKE,
        )
        destination = device.profile.destinations[0]  # fallback-enabled
        connection = device.connect_destination(destination, proxy)
        records = testbed.record_connection(connection)
        assert len(records) == 2  # original + TLS 1.0 retry
        assert not records[0].downgraded
        assert records[1].downgraded
        assert len(testbed.capture) == 2

    def test_capture_queries(self, universe):
        testbed = Testbed(universe)
        device = testbed.device("D-Link Camera")
        for connection in device.boot(lambda dest: testbed.server_for(dest)):
            testbed.record_connection(connection)
        assert testbed.capture.devices() == ["D-Link Camera"]
        assert len(testbed.capture.by_device("D-Link Camera")) == 2


class TestSmartPlug:
    def test_rejects_non_rebootable_devices(self, testbed):
        with pytest.raises(NotRebootableError):
            SmartPlug(testbed.device("Samsung Fridge"))

    def test_reboot_counts_and_returns_connections(self, testbed):
        plug = SmartPlug(testbed.device("Switchbot Hub"))
        connections = plug.reboot(lambda dest: testbed.server_for(dest))
        assert plug.reboot_count == 1
        assert len(connections) == 1
