"""Tests for the downgrade and old-version audits (Tables 5 and 6)."""

from __future__ import annotations

import pytest

from repro.core import DowngradeAuditor, DowngradeKind, classify_downgrade
from repro.devices.configs import FS_MODERN, RSA_PLAIN, WEAK_LEGACY, codes
from repro.tls import ClientHello, ProtocolVersion


@pytest.fixture(scope="module")
def auditor(testbed):
    return DowngradeAuditor(testbed)


def _hello(version=ProtocolVersion.TLS_1_2, ciphers=FS_MODERN + RSA_PLAIN):
    return ClientHello(legacy_version=version, cipher_codes=ciphers)


class TestClassifier:
    def test_no_retry_means_no_downgrade(self):
        assert not classify_downgrade(_hello(), None).downgraded

    def test_version_fallback_detected(self):
        obs = classify_downgrade(_hello(), _hello(version=ProtocolVersion.SSL_3_0))
        assert obs.kind is DowngradeKind.VERSION_FALLBACK
        assert "SSL 3.0" in obs.detail

    def test_cipher_collapse_detected(self):
        rc4 = codes("TLS_RSA_WITH_RC4_128_SHA")
        obs = classify_downgrade(_hello(), _hello(ciphers=rc4))
        assert obs.kind is DowngradeKind.CIPHER_COLLAPSE
        assert "TLS_RSA_WITH_RC4_128_SHA" in obs.detail

    def test_weaker_cipher_addition_detected(self):
        weak = codes("TLS_RSA_WITH_3DES_EDE_CBC_SHA")
        obs = classify_downgrade(
            _hello(ciphers=FS_MODERN), _hello(ciphers=FS_MODERN + weak)
        )
        assert obs.kind is DowngradeKind.WEAKER_CIPHERS

    def test_identical_retry_is_not_downgrade(self):
        assert not classify_downgrade(_hello(), _hello()).downgraded


class TestTable5:
    def test_exactly_seven_downgraders(self, campaign_results):
        downgraders = {r.device for r in campaign_results.downgrade if r.downgrades}
        assert downgraders == {
            "Amazon Echo Dot",
            "Amazon Echo Plus",
            "Amazon Echo Spot",
            "Fire TV",
            "Apple HomePod",
            "Google Home Mini",
            "Roku TV",
        }

    def test_paper_ratios(self, campaign_results):
        expected = {
            "Amazon Echo Dot": (7, 9),
            "Amazon Echo Plus": (6, 7),
            "Amazon Echo Spot": (11, 15),
            "Fire TV": (13, 21),
            "Apple HomePod": (7, 9),
            "Google Home Mini": (5, 5),
            "Roku TV": (8, 15),
        }
        for report in campaign_results.downgrade:
            if report.device in expected:
                assert (
                    report.downgraded_destinations,
                    report.tested_destinations,
                ) == expected[report.device], report.device

    def test_triggers_match_paper(self, campaign_results):
        by_device = {r.device: r for r in campaign_results.downgrade}
        # Only Roku downgrades on failed handshakes too.
        assert by_device["Roku TV"].downgrades_on_failed
        assert by_device["Roku TV"].downgrades_on_incomplete
        for name in ("Amazon Echo Dot", "Apple HomePod", "Google Home Mini"):
            assert not by_device[name].downgrades_on_failed
            assert by_device[name].downgrades_on_incomplete

    def test_behaviors_match_paper(self, campaign_results):
        by_device = {r.device: r for r in campaign_results.downgrade}
        assert by_device["Amazon Echo Dot"].behavior == "Falls back to using SSL 3.0"
        assert by_device["Apple HomePod"].behavior == "Falls back to using TLS 1.0"
        assert "RSA_PKCS1_SHA1" in by_device["Google Home Mini"].behavior
        assert "TLS_RSA_WITH_RC4_128_SHA" in by_device["Roku TV"].behavior

    def test_google_home_mini_all_destinations(self, campaign_results):
        """GHM is 'susceptible to downgrades on all its connections'."""
        report = next(r for r in campaign_results.downgrade if r.device == "Google Home Mini")
        assert report.downgraded_destinations == report.tested_destinations


class TestTable6:
    def test_eighteen_devices_with_old_support(self, campaign_results):
        assert campaign_results.old_version_device_count == 18

    def test_wemo_is_tls10_only(self, campaign_results):
        wemo = next(s for s in campaign_results.old_versions if s.device == "Wemo Plug")
        assert wemo.tls10 and not wemo.tls11

    def test_samsung_appliances_tls11_only(self, campaign_results):
        for name in ("Samsung Dryer", "Samsung Fridge"):
            support = next(s for s in campaign_results.old_versions if s.device == name)
            assert support.tls11 and not support.tls10, name

    def test_modern_devices_absent(self, campaign_results):
        for name in ("D-Link Camera", "Apple TV", "Switchbot Hub", "Amazon Echo Dot 3"):
            support = next(s for s in campaign_results.old_versions if s.device == name)
            assert not support.any_old, name

    def test_both_versions_devices(self, campaign_results):
        both = {
            s.device for s in campaign_results.old_versions if s.tls10 and s.tls11
        }
        assert both == {
            "Zmodo Doorbell",
            "Wink Hub 2",
            "Yi Camera",
            "Philips Hub",
            "Smarter iKettle",  # "Smarter Brewer" in the paper
            "TP-Link Bulb",
            "Roku TV",
            "Meross Dooropener",
            "LG TV",
            "Google Home Mini",
            "Fire TV",
            "Amazon Echo Spot",
            "Amazon Echo Plus",
            "Amazon Echo Dot",
            "Amcrest Camera",
        }
