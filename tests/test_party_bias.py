"""Tests for the §5.1 first/third-party version-bias analysis."""

from __future__ import annotations

import pytest

from repro.analysis.party_bias import (
    PartyBiasResult,
    devices_with_multiple_max_versions,
    test_party_bias as run_party_bias,
)
from repro.devices.profile import Party
from repro.testbed.capture import GatewayCapture, TrafficRecord


class TestMultipleMaxVersions:
    def test_version_transition_devices_detected(self, passive_capture):
        devices = devices_with_multiple_max_versions(passive_capture)
        for expected in ("Apple TV", "Apple HomePod", "Google Home Mini", "Blink Hub"):
            assert expected in devices

    def test_static_devices_not_flagged(self, passive_capture):
        devices = devices_with_multiple_max_versions(passive_capture)
        assert "D-Link Camera" not in devices
        assert "Wemo Plug" not in devices


class TestBiasTest:
    def test_no_bias_for_any_study_device(self, passive_capture):
        """The paper: 'no patterns that indicate bias toward one TLS
        version depending on the destination type contacted'."""
        for device in devices_with_multiple_max_versions(passive_capture):
            result = run_party_bias(passive_capture, device)
            assert not result.biased, (device, result.p_value, result.cramers_v)

    def test_inapplicable_without_both_parties(self, passive_capture):
        result = run_party_bias(passive_capture, "Google Home Mini")  # first-party only
        assert result.p_value is None
        assert not result.biased

    def test_synthetic_biased_device_detected(self, passive_capture):
        """Sanity: a device whose versions split cleanly by party IS
        flagged -- the no-bias result above is not vacuous."""
        template = passive_capture.records[0]
        from dataclasses import replace
        from repro.tls import ClientHello, ProtocolVersion, sni

        capture = GatewayCapture()
        hello_12 = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_2,
            cipher_codes=template.client_hello.cipher_codes,
            extensions=(sni("first.example"),),
        )
        hello_10 = ClientHello(
            legacy_version=ProtocolVersion.TLS_1_0,
            cipher_codes=template.client_hello.cipher_codes,
            extensions=(sni("third.example"),),
        )
        for hello, party in ((hello_12, Party.FIRST), (hello_10, Party.THIRD)):
            capture.add(
                replace(
                    template,
                    device="Synthetic Biased",
                    client_hello=hello,
                    party=party,
                    count=500,
                )
            )
        result = run_party_bias(capture, "Synthetic Biased")
        assert result.biased
        # ~1.0 up to the chi-square continuity correction.
        assert result.cramers_v == pytest.approx(1.0, abs=0.01)

    def test_result_table_shape(self, passive_capture):
        result = run_party_bias(passive_capture, "Apple TV")
        assert isinstance(result, PartyBiasResult)
        assert len(result.table) == len(result.versions)
        assert all(len(row) == 2 for row in result.table)
