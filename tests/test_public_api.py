"""Smoke tests for the package's public surface."""

from __future__ import annotations

import pytest

import repro


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "name",
        [
            "Testbed",
            "SmartPlug",
            "Device",
            "ActiveExperimentCampaign",
            "RootStoreProber",
            "InterceptionAuditor",
            "DowngradeAuditor",
            "PassiveTraceGenerator",
            "build_catalog",
            "build_default_universe",
        ],
    )
    def test_lazy_exports_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_subpackage_all_exports_importable(self):
        import importlib

        for module_name in (
            "repro.pki",
            "repro.tls",
            "repro.tlslib",
            "repro.roothistory",
            "repro.devices",
            "repro.testbed",
            "repro.mitm",
            "repro.core",
            "repro.fingerprint",
            "repro.longitudinal",
            "repro.analysis",
            "repro.mitigations",
        ):
            module = importlib.import_module(module_name)
            for exported in getattr(module, "__all__", ()):
                assert getattr(module, exported, None) is not None, (module_name, exported)
