"""Unit tests for chain validation -- including the typed failures the
root-store probing side channel depends on."""

from __future__ import annotations

import pytest

from repro.pki import (
    BasicConstraints,
    CertificateAuthority,
    CertificateBuilder,
    DistinguishedName,
    KeyUsage,
    RootStore,
    ValidationErrorCode,
    generate_keypair,
    utc,
    validate_chain,
)
from repro.pki.validation import MAX_CHAIN_LENGTH

WHEN = utc(2021, 3)
HOST = "api.example.com"


@pytest.fixture()
def chain_setup(simple_ca, simple_store):
    leaf, _ = simple_ca.issue_leaf(HOST, seed=b"val-leaf")
    return simple_ca, simple_store, leaf


class TestHappyPaths:
    def test_direct_chain_validates(self, chain_setup):
        _, store, leaf = chain_setup
        assert validate_chain([leaf], store, when=WHEN, hostname=HOST).ok

    def test_chain_with_intermediate(self, simple_ca, simple_store):
        intermediate = simple_ca.issue_intermediate(DistinguishedName(common_name="Val Int"))
        leaf, _ = intermediate.issue_leaf(HOST)
        result = validate_chain(
            [leaf, intermediate.certificate], simple_store, when=WHEN, hostname=HOST
        )
        assert result.ok

    def test_trusted_self_signed_root_at_top(self, simple_ca, simple_store):
        leaf, _ = simple_ca.issue_leaf(HOST)
        result = validate_chain(
            [leaf, simple_ca.certificate], simple_store, when=WHEN, hostname=HOST
        )
        assert result.ok

    def test_hostname_check_skippable(self, chain_setup):
        _, store, leaf = chain_setup
        result = validate_chain(
            [leaf], store, when=WHEN, hostname="wrong.example.com", check_hostname=False
        )
        assert result.ok


class TestStructuralFailures:
    def test_empty_chain(self, simple_store):
        result = validate_chain([], simple_store, when=WHEN)
        assert result.code is ValidationErrorCode.EMPTY_CHAIN

    def test_chain_too_long(self, chain_setup):
        _, store, leaf = chain_setup
        result = validate_chain([leaf] * (MAX_CHAIN_LENGTH + 1), store, when=WHEN)
        assert result.code is ValidationErrorCode.CHAIN_TOO_LONG

    def test_broken_chain_link(self, simple_ca, simple_store):
        other = CertificateAuthority(
            DistinguishedName(common_name="Unrelated CA"), seed=b"unrelated"
        )
        leaf, _ = simple_ca.issue_leaf(HOST)
        result = validate_chain(
            [leaf, other.certificate], simple_store, when=WHEN, hostname=HOST
        )
        assert result.code is ValidationErrorCode.BROKEN_CHAIN


class TestSideChannelDistinction:
    """UNKNOWN_CA vs BAD_SIGNATURE: the probing technique's foundation."""

    def test_unknown_issuer(self, simple_store):
        stranger = CertificateAuthority(
            DistinguishedName(common_name="Stranger CA"), seed=b"stranger"
        )
        leaf, _ = stranger.issue_leaf(HOST)
        result = validate_chain([leaf, stranger.certificate], simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.UNKNOWN_CA

    def test_self_signed_leaf_is_unknown_ca(self, simple_store):
        cert, _ = CertificateAuthority.self_signed_leaf(HOST)
        result = validate_chain([cert], simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.UNKNOWN_CA

    def test_known_name_bad_signature(self, simple_ca, simple_store):
        attacker = generate_keypair(seed=b"val-attacker")
        spoofed_root = CertificateBuilder.spoof_from(
            simple_ca.certificate, attacker.public
        ).sign(attacker.private)
        leaf = CertificateBuilder(
            subject=DistinguishedName(common_name=HOST),
            issuer=spoofed_root.subject,
            public_key=generate_keypair(seed=b"val-al").public,
            subject_alt_names=(HOST,),
        ).sign(attacker.private)
        result = validate_chain([leaf, spoofed_root], simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.BAD_SIGNATURE

    def test_leaf_signed_by_wrong_key_direct(self, simple_ca, simple_store):
        """A leaf claiming the trusted issuer but signed by another key."""
        attacker = generate_keypair(seed=b"val-attacker2")
        leaf = CertificateBuilder(
            subject=DistinguishedName(common_name=HOST),
            issuer=simple_ca.name,
            public_key=attacker.public,
            subject_alt_names=(HOST,),
        ).sign(attacker.private)
        result = validate_chain([leaf], simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.BAD_SIGNATURE


class TestExtensions:
    def test_non_ca_issuer_rejected(self, simple_ca, simple_store):
        """The InvalidBasicConstraints attack shape."""
        own_leaf, own_key = simple_ca.issue_leaf("attacker.example")
        forged = CertificateBuilder(
            subject=DistinguishedName(common_name=HOST),
            issuer=own_leaf.subject,
            public_key=generate_keypair(seed=b"ibc").public,
            subject_alt_names=(HOST,),
        ).sign(own_key.private)
        chain = [forged, own_leaf, simple_ca.certificate]
        result = validate_chain(chain, simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.INVALID_BASIC_CONSTRAINTS
        # Skipping the BasicConstraints check accepts it -- the flaw.
        relaxed = validate_chain(
            chain, simple_store, when=WHEN, hostname=HOST, check_basic_constraints=False
        )
        assert relaxed.ok

    def test_pathlen_constraint_enforced(self, simple_store, simple_ca):
        constrained = CertificateBuilder(
            subject=DistinguishedName(common_name="PathLen CA"),
            issuer=simple_ca.name,
            public_key=generate_keypair(seed=b"plc").public,
            basic_constraints=BasicConstraints(ca=True, path_len=0),
            key_usage=KeyUsage(key_cert_sign=True),
        ).sign(simple_ca.keypair.private)
        # pathlen=0 allows issuing leaves, not further CAs; a chain of
        # depth > path_len+1 below it must fail.
        mid_key = generate_keypair(seed=b"plc-mid")
        mid = CertificateBuilder(
            subject=DistinguishedName(common_name="Too Deep CA"),
            issuer=constrained.subject,
            public_key=mid_key.public,
            basic_constraints=BasicConstraints(ca=True),
            key_usage=KeyUsage(key_cert_sign=True),
        ).sign(generate_keypair(seed=b"plc2").private)
        leaf = CertificateBuilder(
            subject=DistinguishedName(common_name=HOST),
            public_key=generate_keypair(seed=b"plc3").public,
            issuer=mid.subject,
            subject_alt_names=(HOST,),
        ).sign(mid_key.private)
        result = validate_chain([leaf, mid, constrained], simple_store, when=WHEN, hostname=HOST)
        assert result.code in (
            ValidationErrorCode.PATHLEN_EXCEEDED,
            ValidationErrorCode.BAD_SIGNATURE,
        )

    def test_key_usage_enforced(self, simple_ca, simple_store):
        no_sign_key = generate_keypair(seed=b"nokeysign")
        no_sign = CertificateBuilder(
            subject=DistinguishedName(common_name="NoSign CA"),
            issuer=simple_ca.name,
            public_key=no_sign_key.public,
            basic_constraints=BasicConstraints(ca=True),
            key_usage=KeyUsage(key_cert_sign=False),
        ).sign(simple_ca.keypair.private)
        leaf = CertificateBuilder(
            subject=DistinguishedName(common_name=HOST),
            issuer=no_sign.subject,
            public_key=generate_keypair(seed=b"nks2").public,
            subject_alt_names=(HOST,),
        ).sign(no_sign_key.private)
        result = validate_chain([leaf, no_sign], simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.KEY_USAGE


class TestTemporal:
    def test_expired_leaf(self, simple_ca, simple_store):
        leaf, _ = simple_ca.issue_leaf(HOST, not_before=utc(2015), not_after=utc(2018))
        result = validate_chain([leaf], simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.EXPIRED

    def test_not_yet_valid_leaf(self, simple_ca, simple_store):
        leaf, _ = simple_ca.issue_leaf(HOST, not_before=utc(2030), not_after=utc(2032))
        result = validate_chain([leaf], simple_store, when=WHEN, hostname=HOST)
        assert result.code is ValidationErrorCode.NOT_YET_VALID

    def test_validity_check_skippable(self, simple_ca, simple_store):
        leaf, _ = simple_ca.issue_leaf(HOST, not_before=utc(2015), not_after=utc(2018))
        result = validate_chain(
            [leaf], simple_store, when=WHEN, hostname=HOST, check_validity=False
        )
        assert result.ok


class TestHostname:
    def test_hostname_mismatch_detected_last(self, simple_ca, simple_store):
        leaf, _ = simple_ca.issue_leaf(HOST)
        result = validate_chain([leaf], simple_store, when=WHEN, hostname="evil.example.com")
        assert result.code is ValidationErrorCode.HOSTNAME_MISMATCH

    def test_result_truthiness(self, chain_setup):
        _, store, leaf = chain_setup
        ok = validate_chain([leaf], store, when=WHEN, hostname=HOST)
        bad = validate_chain([leaf], store, when=WHEN, hostname="x.example.org")
        assert bool(ok) and ok.ok
        assert not bool(bad)
