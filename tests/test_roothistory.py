"""Unit tests for the root-store history substrate (Table 3, §4.2 sets)."""

from __future__ import annotations

import pytest

from repro.roothistory import (
    PLATFORM_SPECS,
    RemovalReason,
    RootCARecord,
    build_default_universe,
    build_history,
    derive_common_names,
    derive_deprecated_names,
)
from repro.roothistory.universe import PROBE_YEAR


class TestRecordLifecycle:
    def _record(self, **kwargs) -> RootCARecord:
        defaults = dict(
            name="Lifecycle CA",
            organization="Test",
            country="US",
            added_year=2010,
            expiry_year=2030,
            carriers=frozenset({"Mozilla"}),
        )
        defaults.update(kwargs)
        return RootCARecord(**defaults)

    def test_present_between_add_and_removal(self):
        record = self._record(removal_year=2018)
        assert not record.in_store_at("Mozilla", 2009)
        assert record.in_store_at("Mozilla", 2015)
        assert not record.in_store_at("Mozilla", 2018)
        assert not record.in_store_at("Mozilla", 2020)

    def test_never_present_on_non_carrier(self):
        record = self._record()
        assert not record.in_store_at("Microsoft", 2015)

    def test_readdition_restores(self):
        record = self._record(removal_year=2015, readded_year=2018)
        assert record.in_store_at("Mozilla", 2016) is False
        assert record.in_store_at("Mozilla", 2019)

    def test_invalid_lifecycles_rejected(self):
        with pytest.raises(ValueError):
            self._record(removal_year=2005)
        with pytest.raises(ValueError):
            self._record(readded_year=2018)

    def test_authority_is_deterministic_and_dated(self):
        a = self._record().authority.certificate
        b = self._record().authority.certificate
        assert a.public_key == b.public_key
        assert a.not_before.year == 2010
        assert a.not_after.year == 2030

    def test_unexpired_at(self):
        record = self._record(expiry_year=2022)
        assert record.unexpired_at(2021.5)
        assert not record.unexpired_at(2022.0)


class TestHistories:
    def test_snapshot_counts_match_specs(self, universe):
        for platform, version_count, earliest, _latest in PLATFORM_SPECS:
            history = universe.history(platform)
            assert history.version_count == version_count
            assert history.earliest.year == earliest

    def test_removed_names_detects_removals(self):
        record = RootCARecord(
            name="Removed CA",
            organization="T",
            country="US",
            added_year=2008,
            expiry_year=2030,
            carriers=frozenset({"P"}),
            removal_year=2016,
        )
        keeper = RootCARecord(
            name="Kept CA",
            organization="T",
            country="US",
            added_year=2008,
            expiry_year=2030,
            carriers=frozenset({"P"}),
        )
        history = build_history(
            "P", [record, keeper], version_count=5, earliest_year=2012, latest_year=2020
        )
        assert history.removed_names() == {"Removed CA"}
        assert history.removal_year_of("Removed CA") == 2016.0
        assert history.removal_year_of("Kept CA") is None


class TestDerivations:
    def test_paper_set_sizes(self, universe):
        assert len(universe.common_names) == 122
        assert len(universe.deprecated_names) == 87

    def test_sets_are_disjoint(self, universe):
        assert not (universe.common_names & universe.deprecated_names)

    def test_distrusted_cas_in_deprecated_set(self, universe):
        deprecated = universe.deprecated_names
        for record in universe.distrusted_records():
            assert record.name in deprecated

    def test_four_named_distrusted_cas(self, universe):
        names = {record.name for record in universe.distrusted_records()}
        assert names == {
            "TURKTRUST Elektronik Sertifika Hizmet Saglayicisi",
            "CNNIC ROOT",
            "Certification Authority of WoSign",
            "Certinomis - Root CA",
        }
        years = {record.distrust.year for record in universe.distrusted_records()}
        assert years == {2013, 2015, 2016, 2019}

    def test_expired_removals_excluded(self, universe):
        """Distractor (a): removed roots already expired at probe time."""
        for name in universe.deprecated_names:
            assert universe.records[name].unexpired_at(PROBE_YEAR)

    def test_readded_roots_excluded(self, universe):
        for name in universe.deprecated_names:
            assert universe.records[name].readded_year is None

    def test_late_added_roots_invisible(self, universe):
        """Distractor (c): added after every earliest snapshot."""
        late = [r for r in universe.records.values() if "LateCycle" in r.name]
        assert late, "universe should contain late-cycle distractors"
        for record in late:
            assert record.name not in universe.deprecated_names

    def test_common_set_unexpired_and_everywhere(self, universe):
        for name in universe.common_names:
            record = universe.records[name]
            assert record.unexpired_at(PROBE_YEAR)
            for history in universe.histories.values():
                assert name in history.latest.members

    def test_derivations_pure_functions(self, universe):
        again_common = derive_common_names(
            universe.histories, universe.records, probe_year=PROBE_YEAR
        )
        again_deprecated = derive_deprecated_names(
            universe.histories, universe.records, probe_year=PROBE_YEAR
        )
        assert again_common == universe.common_names
        assert again_deprecated == universe.deprecated_names

    def test_removal_year_distribution_shape(self, universe):
        """Figure 4's population: mass in 2018/2019, tail back to 2013."""
        from collections import Counter

        years = Counter(r.removal_year for r in universe.deprecated_records())
        assert min(years) == 2013
        assert years[2018] + years[2019] > sum(years.values()) / 2
