"""Tests for the dataset-statistics analysis (§4.1 corpus shape)."""

from __future__ import annotations

import pytest

from repro.analysis import dataset_statistics
from repro.testbed.capture import GatewayCapture


class TestDatasetStatistics:
    @pytest.fixture(scope="class")
    def stats(self, passive_capture):
        return dataset_statistics(passive_capture)

    def test_covers_all_devices_and_months(self, stats):
        assert stats.device_count == 40
        assert stats.months_covered == 27

    def test_every_device_at_least_six_months(self, stats):
        assert stats.min_active_months >= 6

    def test_thirty_two_devices_over_a_year(self, stats):
        assert stats.devices_over_12_months == 32

    def test_skew_matches_paper_shape(self, stats):
        """Paper: mean 422K vs median 138K per device (~3.1x skew)."""
        assert 2.0 < stats.mean_to_median_ratio < 5.0

    def test_scale_factor_reported(self, stats):
        assert stats.scale_to_paper > 1
        assert stats.total_connections * stats.scale_to_paper == pytest.approx(17_000_000)

    def test_summary_renders(self, stats):
        text = stats.summary()
        assert "connections from 40 devices" in text
        assert "skew" in text

    def test_empty_capture(self):
        stats = dataset_statistics(GatewayCapture())
        assert stats.total_connections == 0
        assert stats.scale_to_paper == float("inf")
