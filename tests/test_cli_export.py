"""Tests for the CLI and the JSON export layer."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import (
    campaign_to_document,
    capture_to_records,
    probe_report_to_document,
    write_json,
)
from repro.cli import build_parser, main


class TestExport:
    def test_capture_records_roundtrip_json(self, passive_capture, tmp_path):
        records = capture_to_records(passive_capture)
        assert len(records) == len(passive_capture)
        path = write_json(records[:50], tmp_path / "capture.json")
        loaded = json.loads(path.read_text())
        assert loaded[0]["device"]
        assert isinstance(loaded[0]["count"], int)
        assert loaded[0]["advertised_max_version"].startswith(("TLS", "SSL"))

    def test_campaign_dict_structure(self, campaign_results):
        payload = campaign_to_document(campaign_results)
        assert payload["summary"]["vulnerable_devices"] == 11
        assert len(payload["interception"]) == 32
        assert len(payload["probes"]) == len(campaign_results.probes)
        assert {entry["device"] for entry in payload["interception"] if entry["vulnerable"]} == {
            report.device for report in campaign_results.interception if report.vulnerable
        }
        json.dumps(payload)  # must be serialisable

    def test_probe_report_dict_amenable_and_not(self, campaign_results):
        amenable = campaign_results.amenable_probe_reports[0]
        payload = probe_report_to_document(amenable)
        assert payload["amenable"]
        assert payload["common"]["conclusive"] > 0

        not_amenable = next(
            report for report in campaign_results.probes if not report.calibration.amenable
        )
        payload = probe_report_to_document(not_amenable)
        assert not payload["amenable"]
        assert payload["reason"]

    def test_write_json_creates_parents(self, tmp_path):
        path = write_json({"x": 1}, tmp_path / "deep" / "nested" / "out.json")
        assert path.exists()
        assert json.loads(path.read_text()) == {"x": 1}


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_devices_lists_catalog(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Zmodo Doorbell" in out
        assert "Cameras (n = 7)" in out

    def test_amenability_prints_table4(self, capsys):
        assert main(["amenability"]) == 0
        out = capsys.readouterr().out
        assert "Decrypt Error" in out
        assert "No Alert" in out

    def test_probe_known_device(self, capsys, tmp_path):
        json_path = tmp_path / "probe.json"
        assert main(["probe", "Wink Hub 2", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "Wink Hub 2: common" in out
        payload = json.loads(json_path.read_text())
        assert payload["device"] == "Wink Hub 2"
        assert payload["amenable"]

    def test_probe_non_amenable_device_exit_code(self, capsys):
        assert main(["probe", "Apple TV"]) == 1
        assert "not amenable" in capsys.readouterr().out

    def test_probe_unknown_device(self, capsys):
        assert main(["probe", "Nonexistent Toaster"]) == 2
        assert "unknown device" in capsys.readouterr().err

    def test_probe_rejects_non_rebootable(self, capsys):
        assert main(["probe", "Samsung Fridge"]) == 2
        assert "reboot" in capsys.readouterr().err

    def test_probe_rejects_passive_only(self, capsys):
        assert main(["probe", "Samsung TV"]) == 2
        assert "passive-only" in capsys.readouterr().err

    def test_trace_summary(self, capsys):
        assert main(["trace", "--scale", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1: 12 devices shown" in out
        assert "Table 8: CRL 1, OCSP 3, stapling 12" in out

    def test_fingerprint_summary(self, capsys):
        assert main(["fingerprint"]) == 0
        out = capsys.readouterr().out
        assert "19 devices share a fingerprint" in out
        assert "cluster:" in out

    def test_pcap_command(self, capsys, tmp_path):
        out_path = tmp_path / "trace.pcap"
        assert main(["pcap", "--out", str(out_path), "--scale", "1", "--limit", "10"]) == 0
        assert out_path.exists()
        import struct

        magic = struct.unpack("!I", out_path.read_bytes()[:4])[0]
        assert magic == 0xA1B2C3D4

    def test_audit_summary(self, capsys, tmp_path):
        json_path = tmp_path / "audit.json"
        assert main(["audit", "--no-passthrough", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "11 vulnerable" in out
        assert "8 probe-amenable" in out
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["vulnerable_devices"] == 11
