"""Shared fixtures for the IoTLS reproduction test suite.

Expensive artifacts (the testbed, the passive capture, the full active
campaign) are session-scoped: they are deterministic, read-only for
consumers, and building them once keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core import ActiveExperimentCampaign, CampaignResults
from repro.longitudinal import PassiveTraceGenerator
from repro.pki import CertificateAuthority, DistinguishedName, RootStore
from repro.roothistory import build_default_universe
from repro.testbed import GatewayCapture, Testbed


@pytest.fixture(scope="session")
def universe():
    return build_default_universe()


@pytest.fixture(scope="session")
def testbed(universe) -> Testbed:
    return Testbed(universe)


@pytest.fixture(scope="session")
def passive_capture(testbed) -> GatewayCapture:
    return PassiveTraceGenerator(testbed, scale=10).generate()


@pytest.fixture(scope="session")
def campaign_results(testbed) -> CampaignResults:
    return ActiveExperimentCampaign(testbed).run(include_passthrough=True)


@pytest.fixture()
def simple_ca() -> CertificateAuthority:
    return CertificateAuthority(
        DistinguishedName(common_name="Unit Test Root CA", organization="UnitTest"),
        seed=b"unit-test-root",
    )


@pytest.fixture()
def simple_store(simple_ca) -> RootStore:
    return RootStore.from_certificates("unit-test", [simple_ca.certificate])
