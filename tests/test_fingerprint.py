"""Tests for JA3 fingerprinting, the labelled database, and Fig 5."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.fingerprint import (
    DATABASE_SIZE,
    build_reference_database,
    build_shared_graph,
    collect_device_fingerprints,
    fingerprint,
    ja3_string,
)
from repro.tls import (
    ClientHello,
    NamedGroup,
    ProtocolVersion,
    ec_point_formats_ext,
    sni,
    supported_groups_ext,
)


def _hello(ciphers=FS_MODERN, extensions=()):
    return ClientHello(
        legacy_version=ProtocolVersion.TLS_1_2, cipher_codes=ciphers, extensions=extensions
    )


class TestJA3:
    def test_string_fields(self):
        hello = _hello(
            extensions=(
                sni("h.example.com"),
                supported_groups_ext((NamedGroup.X25519,)),
                ec_point_formats_ext(),
            )
        )
        version, ciphers, extensions, groups, formats = ja3_string(hello).split(",")
        assert version == "771"  # TLS 1.2 = 0x0303
        assert ciphers == "-".join(str(c) for c in FS_MODERN)
        assert extensions == "0-10-11"
        assert groups == str(NamedGroup.X25519.value)
        assert formats == "0"

    def test_sni_value_does_not_affect_fingerprint(self):
        a = _hello(extensions=(sni("a.example.com"),))
        b = _hello(extensions=(sni("b.example.com"),))
        assert fingerprint(a) == fingerprint(b)

    def test_grease_ignored(self):
        with_grease = _hello(ciphers=(0x1A1A,) + FS_MODERN)
        without = _hello()
        assert fingerprint(with_grease) == fingerprint(without)

    def test_grease_extension_types_ignored(self):
        """Regression: a GREASE-injecting client (RFC 8701) must produce
        the canonical fingerprint -- GREASE was stripped from the cipher
        and group lists but not from the extension-type list."""
        from repro.tls import Extension

        clean = _hello(
            extensions=(
                sni("h.example.com"),
                supported_groups_ext((NamedGroup.X25519,)),
                ec_point_formats_ext(),
            )
        )
        greased = _hello(
            ciphers=(0x2A2A,) + FS_MODERN,
            extensions=(
                Extension(0x0A0A),
                sni("h.example.com"),
                Extension(0x1A1A, (0x3A3A,)),
                supported_groups_ext((NamedGroup.X25519,)),
                ec_point_formats_ext(),
            ),
        )
        assert fingerprint(greased) == fingerprint(clean)
        assert ja3_string(greased) == ja3_string(clean)

    def test_cipher_order_matters(self):
        forward = _hello(ciphers=FS_MODERN)
        reversed_ = _hello(ciphers=tuple(reversed(FS_MODERN)))
        assert fingerprint(forward) != fingerprint(reversed_)

    def test_extension_presence_matters(self):
        from repro.tls import status_request

        assert fingerprint(_hello(extensions=(status_request(),))) != fingerprint(_hello())

    @given(st.permutations(list(RSA_PLAIN)))
    def test_property_fingerprint_deterministic(self, perm):
        a = _hello(ciphers=tuple(perm))
        b = _hello(ciphers=tuple(perm))
        assert fingerprint(a) == fingerprint(b)


class TestDatabase:
    def test_published_size(self):
        assert len(build_reference_database()) == DATABASE_SIZE

    def test_reference_labels_present(self):
        labels = build_reference_database().labels()
        for expected in ("openssl", "curl", "android-sdk", "apple-securetransport"):
            assert expected in labels

    def test_openssl_label_covers_multiple_shapes(self):
        db = build_reference_database()
        openssl_fps = [fp for fp, labels in db.entries.items() if "openssl" in labels]
        assert len(openssl_fps) >= 4

    def test_labels_for_unknown_digest_empty(self):
        assert build_reference_database().labels_for("0" * 32) == set()


@pytest.fixture(scope="module")
def collected(testbed):
    return collect_device_fingerprints(testbed)


@pytest.fixture(scope="module")
def graph(collected):
    return build_shared_graph(collected, build_reference_database())


class TestCollection:
    def test_covers_all_active_devices(self, collected):
        assert len(collected) == 32

    def test_fourteen_multi_instance_devices(self, collected):
        assert sum(1 for c in collected if c.multiple_instances) == 14

    def test_eighteen_single_instance_devices(self, collected):
        assert sum(1 for c in collected if not c.multiple_instances) == 18

    def test_collection_is_stable_across_reboots(self, testbed, collected):
        again = collect_device_fingerprints(testbed)
        assert {c.device: c.distinct for c in again} == {
            c.device: c.distinct for c in collected
        }


class TestFig5Graph:
    def test_nineteen_sharing_devices(self, graph):
        assert len(graph.sharing_devices()) == 19

    def test_openssl_matching_devices(self, graph):
        assert graph.devices_sharing_with_application("openssl") == {
            "Zmodo Doorbell",
            "Amcrest Camera",
            "Wink Hub 2",
            "LG TV",
            "Harman Invoke",
            "Nest Thermostat",
        }

    def test_firetv_dominant_is_android_sdk(self, graph):
        assert graph.dominant_fingerprint_label("Fire TV") == {"android-sdk"}

    def test_amazon_cluster(self, graph):
        clusters = graph.device_clusters()
        amazon = next(c for c in clusters if "Fire TV" in c)
        assert amazon == {
            "Fire TV",
            "Amazon Echo Dot",
            "Amazon Echo Plus",
            "Amazon Echo Spot",
            "Amazon Echo Dot 3",
        }

    def test_manufacturer_pairs(self, graph):
        clusters = graph.device_clusters()
        assert {"Samsung Dryer", "Samsung Fridge"} in clusters
        assert {"Smartlife Bulb", "Smartlife Remote"} in clusters
        assert {"D-Link Camera", "GE Microwave"} in clusters

    def test_apple_devices_cluster_via_db_label(self, graph):
        apple = graph.devices_sharing_with_application("apple-securetransport")
        assert apple == {"Apple TV", "Apple HomePod"}

    def test_non_shared_fingerprints_removed(self, graph):
        for node in graph.graph.nodes:
            kind, _ = node
            if kind == "fingerprint":
                assert graph.graph.degree(node) >= 2
