"""Unit tests for CRL / OCSP / stapling infrastructure."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.pki import (
    OCSPResponder,
    RevocationRegistry,
    RevocationStatus,
    utc,
)

WHEN = utc(2021, 3)


@pytest.fixture()
def registry(simple_ca):
    return RevocationRegistry(
        issuer_name=simple_ca.name.rfc4514(),
        crl_url="http://crl.test/latest.crl",
        ocsp_url="http://ocsp.test",
        signing_key=simple_ca.keypair.private,
    )


class TestCRL:
    def test_crl_lists_revoked_serials(self, registry, simple_ca):
        leaf, _ = simple_ca.issue_leaf("revoked.example.com")
        registry.revoke(leaf)
        crl = registry.current_crl(when=WHEN)
        assert crl.is_revoked(leaf.serial)
        assert not crl.is_revoked(leaf.serial + 999)

    def test_crl_freshness_window(self, registry):
        crl = registry.current_crl(when=WHEN, validity=timedelta(days=30))
        assert crl.is_fresh_at(WHEN)
        assert crl.is_fresh_at(WHEN + timedelta(days=30))
        assert not crl.is_fresh_at(WHEN + timedelta(days=31))

    def test_crl_fetches_counted(self, registry):
        registry.current_crl(when=WHEN)
        registry.current_crl(when=WHEN)
        assert registry.crl_fetches == 2


class TestOCSP:
    def test_good_response_for_unrevoked(self, registry, simple_ca):
        leaf, _ = simple_ca.issue_leaf("good.example.com")
        response = registry.ocsp.respond(leaf.serial, when=WHEN)
        assert response.status is RevocationStatus.GOOD

    def test_revoked_response(self, registry, simple_ca):
        leaf, _ = simple_ca.issue_leaf("bad.example.com")
        registry.revoke(leaf)
        response = registry.ocsp.respond(leaf.serial, when=WHEN)
        assert response.status is RevocationStatus.REVOKED

    def test_response_signature_verifies(self, registry, simple_ca):
        leaf, _ = simple_ca.issue_leaf("sig.example.com")
        response = registry.ocsp.respond(leaf.serial, when=WHEN)
        assert OCSPResponder.verify_response(response, simple_ca.keypair.public)

    def test_tampered_response_rejected(self, registry, simple_ca):
        from dataclasses import replace

        leaf, _ = simple_ca.issue_leaf("tamper.example.com")
        registry.revoke(leaf)
        response = registry.ocsp.respond(leaf.serial, when=WHEN)
        # Attacker rewrites REVOKED -> GOOD without the CA key.
        forged = replace(response, status=RevocationStatus.GOOD)
        assert not OCSPResponder.verify_response(forged, simple_ca.keypair.public)

    def test_staple_for_certificate(self, registry, simple_ca):
        leaf, _ = simple_ca.issue_leaf("staple.example.com")
        staple = registry.staple_for(leaf, when=WHEN)
        assert staple.serial == leaf.serial
        assert staple.is_fresh_at(WHEN + timedelta(days=6))
        assert not staple.is_fresh_at(WHEN + timedelta(days=8))

    def test_queries_counted(self, registry):
        registry.ocsp.respond(1, when=WHEN)
        registry.ocsp.respond(2, when=WHEN)
        assert registry.ocsp.queries_served == 2


def test_revoke_serial_affects_both_crl_and_ocsp(registry):
    registry.revoke_serial(42)
    assert registry.is_revoked(42)
    assert registry.current_crl(when=WHEN).is_revoked(42)
    assert registry.ocsp.respond(42, when=WHEN).status is RevocationStatus.REVOKED
