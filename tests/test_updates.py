"""Tests for the update-cadence vs store-hygiene analysis."""

from __future__ import annotations

from repro.analysis.updates import update_vs_store_hygiene
from repro.devices import device_by_name
from repro.devices.profile import UpdatePolicy


class TestCatalogUpdateMetadata:
    def test_lg_tv_last_updated_july_2019(self):
        profile = device_by_name("LG TV")
        assert profile.last_update_month == 18
        assert profile.update_policy is UpdatePolicy.MANUAL

    def test_roku_last_updated_september_2020(self):
        assert device_by_name("Roku TV").last_update_month == 32

    def test_assistants_update_automatically(self):
        for name in ("Google Home Mini", "Amazon Echo Dot", "Amazon Echo Plus"):
            profile = device_by_name(name)
            assert profile.update_policy is UpdatePolicy.AUTOMATIC
            assert profile.last_update_month is None

    def test_unmaintained_devices_marked(self):
        for name in ("Wemo Plug", "Smarter iKettle", "Insteon Hub"):
            assert device_by_name(name).update_policy is UpdatePolicy.NONE


class TestHygieneJoin:
    def test_covers_all_amenable_devices(self, campaign_results):
        rows = update_vs_store_hygiene(campaign_results.probes)
        assert len(rows) == 8

    def test_the_papers_disconnect(self, campaign_results):
        """Every automatically-updating probed device still keeps
        deprecated roots -- updates flow, root stores do not."""
        rows = update_vs_store_hygiene(campaign_results.probes)
        auto = [row for row in rows if row.update_policy is UpdatePolicy.AUTOMATIC]
        assert auto
        for row in auto:
            assert row.updates_but_keeps_stale_roots, row.device

    def test_months_since_update(self, campaign_results):
        rows = {row.device: row for row in update_vs_store_hygiene(campaign_results.probes)}
        assert rows["LG TV"].months_since_update == 20  # 7/2019 -> 3/2021
        assert rows["Roku TV"].months_since_update == 6  # 9/2020 -> 3/2021
        assert rows["Google Home Mini"].months_since_update == 0

    def test_describe_mentions_cadence_and_counts(self, campaign_results):
        rows = {row.device: row for row in update_vs_store_hygiene(campaign_results.probes)}
        text = rows["LG TV"].describe()
        assert "last updated 7/2019" in text
        assert "deprecated roots" in text
