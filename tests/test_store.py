"""Unit tests for root stores."""

from __future__ import annotations

from repro.pki import CertificateAuthority, CertificateBuilder, DistinguishedName, RootStore, generate_keypair, utc


def _ca(name: str, **kwargs) -> CertificateAuthority:
    return CertificateAuthority(
        DistinguishedName(common_name=name), seed=f"store-test:{name}".encode(), **kwargs
    )


class TestMembership:
    def test_add_and_contains(self):
        ca = _ca("Store CA 1")
        store = RootStore(label="t")
        store.add(ca.certificate)
        assert ca.certificate in store
        assert store.contains_name(ca.name)
        assert len(store) == 1

    def test_add_is_idempotent(self):
        ca = _ca("Store CA 2")
        store = RootStore.from_certificates("t", [ca.certificate, ca.certificate])
        assert len(store) == 1

    def test_same_name_different_key_both_stored(self):
        ca = _ca("Collide CA")
        attacker = generate_keypair(seed=b"store-attacker")
        spoofed = CertificateBuilder.spoof_from(ca.certificate, attacker.public).sign(
            attacker.private
        )
        store = RootStore.from_certificates("t", [ca.certificate, spoofed])
        assert len(store) == 2
        assert len(store.find_by_subject(ca.name)) == 2

    def test_exact_contains_distinguishes_keys(self):
        ca = _ca("Exact CA")
        attacker = generate_keypair(seed=b"store-attacker-2")
        spoofed = CertificateBuilder.spoof_from(ca.certificate, attacker.public).sign(
            attacker.private
        )
        store = RootStore.from_certificates("t", [ca.certificate])
        assert store.contains(ca.certificate)
        assert not store.contains(spoofed)
        assert store.contains_name(spoofed.subject)  # name matches, key differs


class TestRemoval:
    def test_remove_certificate(self):
        ca = _ca("Remove CA")
        store = RootStore.from_certificates("t", [ca.certificate])
        assert store.remove(ca.certificate)
        assert len(store) == 0
        assert not store.remove(ca.certificate)

    def test_remove_by_name(self):
        a, b = _ca("RM A"), _ca("RM B")
        store = RootStore.from_certificates("t", [a.certificate, b.certificate])
        assert store.remove_by_name(a.name) == 1
        assert not store.contains_name(a.name)
        assert store.contains_name(b.name)


class TestQueries:
    def test_unexpired_at_filters(self):
        fresh = _ca("Fresh CA", not_before=utc(2010), not_after=utc(2030))
        stale = _ca("Stale CA", not_before=utc(2005), not_after=utc(2015))
        store = RootStore.from_certificates("t", [fresh.certificate, stale.certificate])
        unexpired = store.unexpired_at(utc(2021))
        assert fresh.certificate in unexpired
        assert stale.certificate not in unexpired

    def test_copy_is_independent(self):
        ca = _ca("Copy CA")
        store = RootStore.from_certificates("orig", [ca.certificate])
        clone = store.copy("clone")
        clone.remove(ca.certificate)
        assert ca.certificate in store
        assert clone.label == "clone"

    def test_iteration_yields_all(self):
        cas = [_ca(f"Iter CA {i}") for i in range(4)]
        store = RootStore.from_certificates("t", [ca.certificate for ca in cas])
        assert {cert.subject.common_name for cert in store} == {f"Iter CA {i}" for i in range(4)}
