"""Edge cases of client-side revocation checking (tlslib layer)."""

from __future__ import annotations

import pytest

from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.pki import CertificateAuthority, DistinguishedName, RootStore, utc
from repro.pki.revocation import RevocationMethod, RevocationRegistry, RevocationStatus
from repro.tls import ProtocolVersion, ServerHello, ServerResponse
from repro.tlslib import ClientConfig, OPENSSL

WHEN = utc(2021, 3)
HOST = "revoked.example.com"


@pytest.fixture()
def setup(simple_ca, simple_store):
    registry = RevocationRegistry(
        issuer_name=simple_ca.name.rfc4514(),
        crl_url="http://crl.rev.test/latest.crl",
        ocsp_url="http://ocsp.rev.test",
        signing_key=simple_ca.keypair.private,
    )
    leaf, _ = simple_ca.issue_leaf(
        HOST,
        crl_distribution_point=registry.crl_url,
        ocsp_responder_url=registry.ocsp_url,
    )
    return simple_ca, simple_store, registry, leaf


def _config(store, **kwargs) -> ClientConfig:
    defaults = dict(
        versions=(ProtocolVersion.TLS_1_2,),
        cipher_codes=FS_MODERN + RSA_PLAIN,
        root_store=store,
    )
    defaults.update(kwargs)
    return ClientConfig(**defaults)


def _response(leaf, staple=None) -> ServerResponse:
    return ServerResponse(
        server_hello=ServerHello(version=ProtocolVersion.TLS_1_2, cipher_code=FS_MODERN[0]),
        certificate_chain=(leaf,),
        ocsp_staple=staple,
    )


class TestStaplingClient:
    def test_revoked_staple_rejected(self, setup):
        ca, store, registry, leaf = setup
        registry.revoke(leaf)
        staple = registry.staple_for(leaf, when=WHEN)
        client = OPENSSL.client(
            _config(store, revocation_method=RevocationMethod.OCSP_STAPLING)
        )
        verdict = client.evaluate_response(_response(leaf, staple), hostname=HOST, when=WHEN)
        assert not verdict.accept
        assert verdict.alert.description.name == "CERTIFICATE_REVOKED"

    def test_good_staple_accepted(self, setup):
        _, store, registry, leaf = setup
        staple = registry.staple_for(leaf, when=WHEN)
        client = OPENSSL.client(
            _config(store, revocation_method=RevocationMethod.OCSP_STAPLING)
        )
        assert client.evaluate_response(_response(leaf, staple), hostname=HOST, when=WHEN).accept

    def test_missing_staple_soft_fails(self, setup):
        """Deployed stapling clients accept when no staple arrives."""
        _, store, registry, leaf = setup
        registry.revoke(leaf)  # revoked, but no staple presented
        client = OPENSSL.client(
            _config(store, revocation_method=RevocationMethod.OCSP_STAPLING)
        )
        assert client.evaluate_response(_response(leaf), hostname=HOST, when=WHEN).accept

    def test_mismatched_staple_serial_ignored(self, setup):
        _, store, registry, leaf = setup
        registry.revoke_serial(999_999)
        wrong_staple = registry.ocsp.respond(999_999, when=WHEN)
        client = OPENSSL.client(
            _config(store, revocation_method=RevocationMethod.OCSP_STAPLING)
        )
        assert client.evaluate_response(
            _response(leaf, wrong_staple), hostname=HOST, when=WHEN
        ).accept


class TestOutOfBandClient:
    def _transport(self, registry):
        def transport(url, serial):
            return (
                RevocationStatus.REVOKED
                if registry.is_revoked(serial)
                else RevocationStatus.GOOD
            )

        return transport

    @pytest.mark.parametrize("method", [RevocationMethod.OCSP, RevocationMethod.CRL])
    def test_revoked_rejected_via_transport(self, setup, method):
        _, store, registry, leaf = setup
        registry.revoke(leaf)
        client = OPENSSL.client(
            _config(
                store,
                revocation_method=method,
                revocation_transport=self._transport(registry),
            )
        )
        verdict = client.evaluate_response(_response(leaf), hostname=HOST, when=WHEN)
        assert not verdict.accept

    def test_no_transport_soft_fails(self, setup):
        _, store, registry, leaf = setup
        registry.revoke(leaf)
        client = OPENSSL.client(_config(store, revocation_method=RevocationMethod.OCSP))
        assert client.evaluate_response(_response(leaf), hostname=HOST, when=WHEN).accept

    def test_certificate_without_urls_soft_fails(self, setup, simple_ca, simple_store):
        registry = setup[2]
        bare_leaf, _ = simple_ca.issue_leaf("bare.example.com")  # no CRL/OCSP URLs
        client = OPENSSL.client(
            _config(
                simple_store,
                revocation_method=RevocationMethod.CRL,
                revocation_transport=self._transport(registry),
            )
        )
        assert client.evaluate_response(
            _response(bare_leaf), hostname="bare.example.com", when=WHEN
        ).accept

    def test_revocation_never_rescues_invalid_chain(self, setup):
        """A GOOD revocation status cannot turn a failed validation into
        an accept: the checks compose, they don't substitute."""
        _, store, registry, leaf = setup
        client = OPENSSL.client(
            _config(
                store,
                revocation_method=RevocationMethod.OCSP,
                revocation_transport=self._transport(registry),
            )
        )
        verdict = client.evaluate_response(
            _response(leaf), hostname="other.example.com", when=WHEN
        )
        assert not verdict.accept  # hostname mismatch still rejects
