"""Tests for the root-store prober (the paper's novel technique)."""

from __future__ import annotations

import pytest

from repro.core import ProbeOutcome, RootStoreProber
from repro.core.prober import (
    AmenabilityCalibration,
    CertificateProbeResult,
    DeviceProbeReport,
)
from repro.devices import (
    DestinationSpec,
    Device,
    DeviceCategory,
    DeviceProfile,
    ServerEpoch,
    ServerSpec,
    TLSInstanceSpec,
)
from repro.devices import device_by_name
from repro.devices.configs import FS_MODERN, RSA_PLAIN
from repro.devices.instance import InstanceConfigSpec
from repro.pki import RootStore
from repro.testbed import SmartPlug
from repro.tls import ProtocolVersion
from repro.tls.alerts import AlertDescription
from repro.tlslib.library import AlertPolicy, TLSLibrary

#: A library that closes silently on unknown-CA chains but alerts on
#: bad signatures -- the one-sided-silence case of the §4.2 rule.
SILENT_ON_UNKNOWN_CA = TLSLibrary(
    name="SilentOnUnknownCA",
    version="0.1",
    alert_policy=AlertPolicy(
        on_unknown_ca=None,
        on_bad_signature=AlertDescription.DECRYPT_ERROR,
    ),
)


def _custom_library_device(testbed, library, name: str) -> Device:
    """A single-instance device using ``library``, trusting the anchors."""
    anchors = [testbed.anchor(index).certificate for index in range(2)]
    store = RootStore.from_certificates(f"{name} store", anchors)
    config = InstanceConfigSpec(
        versions=(ProtocolVersion.TLS_1_2,), cipher_codes=FS_MODERN + RSA_PLAIN
    )
    profile = DeviceProfile(
        name=name,
        category=DeviceCategory.HOME_AUTOMATION,
        manufacturer="Synthetic",
        active=True,
        instances=(TLSInstanceSpec.static("main", library, config),),
        destinations=(
            DestinationSpec(
                hostname=f"{name.lower().replace(' ', '-')}.example.com",
                instance="main",
                server=ServerSpec.static(
                    ServerEpoch(
                        versions=(ProtocolVersion.TLS_1_2,),
                        cipher_codes=FS_MODERN + RSA_PLAIN,
                    )
                ),
            ),
        ),
    )
    return Device(profile, universe=testbed.universe, root_store=store)


@pytest.fixture(scope="module")
def prober(testbed):
    return RootStoreProber(testbed)


class TestCalibration:
    def test_openssl_device_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Wink Hub 2"))
        calibration = prober.calibrate(plug)
        assert calibration.amenable
        assert calibration.unknown_ca_alert == "unknown_ca"
        assert calibration.known_ca_alert == "decrypt_error"

    def test_mbedtls_device_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Google Home Mini"))
        calibration = prober.calibrate(plug)
        assert calibration.amenable
        assert calibration.known_ca_alert == "bad_certificate"

    def test_wolfssl_device_not_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("D-Link Camera"))
        calibration = prober.calibrate(plug)
        assert not calibration.amenable
        assert "same alert" in calibration.reason

    def test_silent_device_not_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Apple TV"))
        calibration = prober.calibrate(plug)
        assert not calibration.amenable
        assert "no alerts" in calibration.reason

    def test_no_validation_device_not_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Zmodo Doorbell"))
        calibration = prober.calibrate(plug)
        assert not calibration.amenable
        assert "no validation" in calibration.reason

    def test_java_boot_device_not_amenable(self, prober, testbed):
        """Fire TV boots through the android-sdk (Java) instance."""
        plug = SmartPlug(testbed.device("Fire TV"))
        assert not prober.calibrate(plug).amenable

    def test_silent_on_unknown_ca_not_amenable(self, prober, testbed):
        """Regression: a device silent on *one* failure class must fail
        calibration -- §4.2 requires both alerts to exist and differ.
        Previously only both-silent devices were rejected, so this
        device calibrated with ``unknown_ca_alert=None`` and silent
        probe reboots aliased to ABSENT."""
        device = _custom_library_device(testbed, SILENT_ON_UNKNOWN_CA, "Half Silent Cam")
        calibration = prober.calibrate(SmartPlug(device))
        assert not calibration.amenable
        assert calibration.unknown_ca_alert is None
        assert calibration.known_ca_alert == "decrypt_error"
        assert "silent on unknown-CA" in calibration.reason

    def test_silent_probe_is_inconclusive_not_absent(self, prober, testbed, universe):
        """Regression: against a calibration with two real alerts, a
        reboot that produces *no* alert is INCONCLUSIVE -- silence must
        never alias to the absent-classification."""
        device = _custom_library_device(testbed, SILENT_ON_UNKNOWN_CA, "Half Silent Cam 2")
        calibration = AmenabilityCalibration(
            amenable=True, unknown_ca_alert="unknown_ca", known_ca_alert="decrypt_error"
        )
        # Any candidate outside the store: the device stays silent on the
        # resulting unknown-CA failure.
        record = universe.deprecated_records()[0]
        result = prober.probe_certificate(
            SmartPlug(device), calibration, record.certificate, conclusive_rate=1.0
        )
        assert result.observed_alert is None
        assert result.outcome is ProbeOutcome.INCONCLUSIVE


class TestCertificateProbing:
    def test_blackbox_inference_matches_ground_truth(self, prober, testbed, universe):
        """The key correctness property: the prober's PRESENT/ABSENT
        classifications agree with the device's actual store, without
        ever reading it."""
        device = testbed.device("Wink Hub 2")
        plug = SmartPlug(device)
        calibration = prober.calibrate(plug)
        checked = 0
        for record in universe.deprecated_records()[:30]:
            result = prober.probe_certificate(
                plug, calibration, record.certificate, conclusive_rate=1.0
            )
            assert result.outcome is not ProbeOutcome.INCONCLUSIVE
            truth = device.root_store.contains(record.certificate)
            assert (result.outcome is ProbeOutcome.PRESENT) == truth
            checked += 1
        assert checked == 30

    def test_inconclusive_rate_respected(self, prober, testbed, universe):
        device = testbed.device("Google Home Mini")
        plug = SmartPlug(device)
        calibration = prober.calibrate(plug)
        outcomes = [
            prober.probe_certificate(
                plug, calibration, record.certificate, conclusive_rate=0.0
            ).outcome
            for record in universe.common_records()[:5]
        ]
        assert all(outcome is ProbeOutcome.INCONCLUSIVE for outcome in outcomes)

    def test_probe_is_deterministic(self, prober, testbed, universe):
        device = testbed.device("Roku TV")
        plug = SmartPlug(device)
        calibration = prober.calibrate(plug)
        record = universe.deprecated_records()[0]
        first = prober.probe_certificate(plug, calibration, record.certificate, conclusive_rate=0.8)
        second = prober.probe_certificate(plug, calibration, record.certificate, conclusive_rate=0.8)
        assert first == second


class TestDeviceReports:
    def test_non_amenable_device_report_is_empty(self, prober, testbed):
        report = prober.probe_device(testbed.device("Philips Hub"))
        assert not report.calibration.amenable
        assert report.common_results == []
        assert report.deprecated_results == []

    def test_amenable_report_covers_both_sets(self, prober, testbed, universe):
        report = prober.probe_device(testbed.device("Harman Invoke"))
        assert report.calibration.amenable
        assert len(report.common_results) == len(universe.common_records())
        assert len(report.deprecated_results) == len(universe.deprecated_records())
        present, conclusive = report.deprecated_tally
        assert 0 < present <= conclusive <= 87

    def test_table9_row_rendering(self, prober, testbed):
        report = prober.probe_device(testbed.device("Google Home Mini"))
        device, common, deprecated = report.table9_row()
        assert device == "Google Home Mini"
        assert "%" in common and "/" in common
        assert "%" in deprecated

    def test_table9_rounds_half_up(self):
        """Regression: percentages ending in .5 round up (62.5% -> 63%),
        matching the paper's tables; ``round()`` banker's-rounds them to
        the nearest even digit (62.5% -> 62%, 12.5% -> 12%)."""

        def results(present: int, conclusive: int) -> list[CertificateProbeResult]:
            outcomes = [ProbeOutcome.PRESENT] * present + [ProbeOutcome.ABSENT] * (
                conclusive - present
            )
            return [
                CertificateProbeResult(certificate_name=f"CA {i}", outcome=outcome)
                for i, outcome in enumerate(outcomes)
            ]

        report = DeviceProbeReport(
            device="Rounding Device",
            calibration=AmenabilityCalibration(
                amenable=True, unknown_ca_alert="unknown_ca", known_ca_alert="bad_certificate"
            ),
            common_results=results(5, 8),  # 62.5%
            deprecated_results=results(1, 8),  # 12.5%
        )
        _, common, deprecated = report.table9_row()
        assert common == "63% (5/8)"
        assert deprecated == "13% (1/8)"

    def test_present_deprecated_names_feed_fig4(self, prober, testbed, universe):
        report = prober.probe_device(testbed.device("LG TV"))
        names = report.present_deprecated_names()
        # LG TV pins TurkTrust (deprecated 2013) -- the paper's oldest case.
        assert "TURKTRUST Elektronik Sertifika Hizmet Saglayicisi" in names
