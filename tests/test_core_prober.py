"""Tests for the root-store prober (the paper's novel technique)."""

from __future__ import annotations

import pytest

from repro.core import ProbeOutcome, RootStoreProber
from repro.devices import device_by_name
from repro.testbed import SmartPlug


@pytest.fixture(scope="module")
def prober(testbed):
    return RootStoreProber(testbed)


class TestCalibration:
    def test_openssl_device_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Wink Hub 2"))
        calibration = prober.calibrate(plug)
        assert calibration.amenable
        assert calibration.unknown_ca_alert == "unknown_ca"
        assert calibration.known_ca_alert == "decrypt_error"

    def test_mbedtls_device_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Google Home Mini"))
        calibration = prober.calibrate(plug)
        assert calibration.amenable
        assert calibration.known_ca_alert == "bad_certificate"

    def test_wolfssl_device_not_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("D-Link Camera"))
        calibration = prober.calibrate(plug)
        assert not calibration.amenable
        assert "same alert" in calibration.reason

    def test_silent_device_not_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Apple TV"))
        calibration = prober.calibrate(plug)
        assert not calibration.amenable
        assert "no alerts" in calibration.reason

    def test_no_validation_device_not_amenable(self, prober, testbed):
        plug = SmartPlug(testbed.device("Zmodo Doorbell"))
        calibration = prober.calibrate(plug)
        assert not calibration.amenable
        assert "no validation" in calibration.reason

    def test_java_boot_device_not_amenable(self, prober, testbed):
        """Fire TV boots through the android-sdk (Java) instance."""
        plug = SmartPlug(testbed.device("Fire TV"))
        assert not prober.calibrate(plug).amenable


class TestCertificateProbing:
    def test_blackbox_inference_matches_ground_truth(self, prober, testbed, universe):
        """The key correctness property: the prober's PRESENT/ABSENT
        classifications agree with the device's actual store, without
        ever reading it."""
        device = testbed.device("Wink Hub 2")
        plug = SmartPlug(device)
        calibration = prober.calibrate(plug)
        checked = 0
        for record in universe.deprecated_records()[:30]:
            result = prober.probe_certificate(
                plug, calibration, record.certificate, conclusive_rate=1.0
            )
            assert result.outcome is not ProbeOutcome.INCONCLUSIVE
            truth = device.root_store.contains(record.certificate)
            assert (result.outcome is ProbeOutcome.PRESENT) == truth
            checked += 1
        assert checked == 30

    def test_inconclusive_rate_respected(self, prober, testbed, universe):
        device = testbed.device("Google Home Mini")
        plug = SmartPlug(device)
        calibration = prober.calibrate(plug)
        outcomes = [
            prober.probe_certificate(
                plug, calibration, record.certificate, conclusive_rate=0.0
            ).outcome
            for record in universe.common_records()[:5]
        ]
        assert all(outcome is ProbeOutcome.INCONCLUSIVE for outcome in outcomes)

    def test_probe_is_deterministic(self, prober, testbed, universe):
        device = testbed.device("Roku TV")
        plug = SmartPlug(device)
        calibration = prober.calibrate(plug)
        record = universe.deprecated_records()[0]
        first = prober.probe_certificate(plug, calibration, record.certificate, conclusive_rate=0.8)
        second = prober.probe_certificate(plug, calibration, record.certificate, conclusive_rate=0.8)
        assert first == second


class TestDeviceReports:
    def test_non_amenable_device_report_is_empty(self, prober, testbed):
        report = prober.probe_device(testbed.device("Philips Hub"))
        assert not report.calibration.amenable
        assert report.common_results == []
        assert report.deprecated_results == []

    def test_amenable_report_covers_both_sets(self, prober, testbed, universe):
        report = prober.probe_device(testbed.device("Harman Invoke"))
        assert report.calibration.amenable
        assert len(report.common_results) == len(universe.common_records())
        assert len(report.deprecated_results) == len(universe.deprecated_records())
        present, conclusive = report.deprecated_tally
        assert 0 < present <= conclusive <= 87

    def test_table9_row_rendering(self, prober, testbed):
        report = prober.probe_device(testbed.device("Google Home Mini"))
        device, common, deprecated = report.table9_row()
        assert device == "Google Home Mini"
        assert "%" in common and "/" in common
        assert "%" in deprecated

    def test_present_deprecated_names_feed_fig4(self, prober, testbed, universe):
        report = prober.probe_device(testbed.device("LG TV"))
        names = report.present_deprecated_names()
        # LG TV pins TurkTrust (deprecated 2013) -- the paper's oldest case.
        assert "TURKTRUST Elektronik Sertifika Hizmet Saglayicisi" in names
