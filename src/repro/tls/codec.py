"""Binary wire codec for the handshake messages the simulation models.

Encodes/decodes the on-the-wire formats of RFC 5246 / RFC 8446 for the
message subset the paper's tooling observes:

* TLS record layer (`content type | version | length | fragment`),
* ClientHello and ServerHello handshake messages, with real extension
  encodings for server_name (RFC 6066), supported_versions (RFC 8446),
  supported_groups, ec_point_formats, signature_algorithms and ALPN;
  other extension types carry empty opaque bodies,
* Alert records.

Uses:

* exporting captures as genuine packet bytes (:mod:`repro.testbed.pcap`),
* cross-validating the fingerprinting pipeline: a JA3 computed from the
  *decoded* bytes must equal one computed from the in-memory hello,
* exercising a parser against adversarial inputs in tests.

Randoms and session ids are deterministic functions of a caller-supplied
seed so encoded traffic is reproducible.
"""

from __future__ import annotations

import hashlib
import struct

from .alerts import Alert, AlertDescription, AlertLevel
from .extensions import Extension, ExtensionType
from .messages import ClientHello, ServerHello
from .versions import ProtocolVersion

__all__ = [
    "CodecError",
    "encode_client_hello",
    "decode_client_hello",
    "encode_server_hello",
    "decode_server_hello",
    "encode_alert",
    "decode_alert",
]

_CONTENT_HANDSHAKE = 22
_CONTENT_ALERT = 21
_HANDSHAKE_CLIENT_HELLO = 1
_HANDSHAKE_SERVER_HELLO = 2


class CodecError(ValueError):
    """Raised on malformed wire input."""


# ---------------------------------------------------------------------------
# Primitive helpers
# ---------------------------------------------------------------------------

def _u8(value: int) -> bytes:
    return struct.pack("!B", value)


def _u16(value: int) -> bytes:
    return struct.pack("!H", value)


def _u24(value: int) -> bytes:
    return struct.pack("!I", value)[1:]


def _vec(data: bytes, length_bytes: int) -> bytes:
    if length_bytes == 1:
        return _u8(len(data)) + data
    if length_bytes == 2:
        return _u16(len(data)) + data
    if length_bytes == 3:
        return _u24(len(data)) + data
    raise AssertionError(length_bytes)


class _Reader:
    """Bounds-checked cursor over wire bytes."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise CodecError(
                f"truncated input: wanted {count} bytes at offset {self.offset}, "
                f"have {len(self.data) - self.offset}"
            )
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self.take(2))[0]

    def u24(self) -> int:
        high, low = struct.unpack("!BH", self.take(3))
        return (high << 16) | low

    def vector(self, length_bytes: int) -> bytes:
        length = {1: self.u8, 2: self.u16, 3: self.u24}[length_bytes]()
        return self.take(length)

    @property
    def exhausted(self) -> bool:
        return self.offset >= len(self.data)


def _deterministic_random(seed: str) -> bytes:
    return hashlib.sha256(f"tls-random:{seed}".encode()).digest()


# ---------------------------------------------------------------------------
# Extension bodies
# ---------------------------------------------------------------------------

def _encode_extension(extension: Extension) -> bytes:
    ext_type = extension.extension_type
    if ext_type is ExtensionType.SERVER_NAME and extension.data:
        hostname = str(extension.data[0]).encode("idna" if False else "ascii")
        entry = _u8(0) + _vec(hostname, 2)  # name_type=host_name
        body = _vec(entry, 2)
    elif ext_type is ExtensionType.SUPPORTED_VERSIONS:
        versions = b"".join(
            _u8(major) + _u8(minor) for major, minor in extension.data
        )
        body = _vec(versions, 1)
    elif ext_type is ExtensionType.SUPPORTED_GROUPS:
        body = _vec(b"".join(_u16(int(v)) for v in extension.data), 2)
    elif ext_type is ExtensionType.SIGNATURE_ALGORITHMS:
        body = _vec(b"".join(_u16(int(v)) for v in extension.data), 2)
    elif ext_type is ExtensionType.EC_POINT_FORMATS:
        body = _vec(b"".join(_u8(int(v)) for v in extension.data), 1)
    elif ext_type is ExtensionType.ALPN:
        protocols = b"".join(_vec(str(p).encode(), 1) for p in extension.data)
        body = _vec(protocols, 2)
    elif ext_type is ExtensionType.STATUS_REQUEST:
        # status_type=ocsp, empty responder list, empty request extensions
        body = _u8(1) + _u16(0) + _u16(0)
    else:
        body = b""
    return _u16(ext_type.value) + _vec(body, 2)


def _decode_extension(ext_type_code: int, body: bytes) -> Extension:
    reader = _Reader(body)
    try:
        ext_type = ExtensionType(ext_type_code)
    except ValueError as error:
        raise CodecError(f"unknown extension type {ext_type_code}") from error

    if ext_type is ExtensionType.SERVER_NAME and body:
        entries = _Reader(reader.vector(2))
        entries.u8()  # name_type
        hostname = entries.vector(2).decode("ascii")
        return Extension(ext_type, (hostname,))
    if ext_type is ExtensionType.SUPPORTED_VERSIONS and body:
        versions_bytes = reader.vector(1)
        pairs = tuple(
            (versions_bytes[index], versions_bytes[index + 1])
            for index in range(0, len(versions_bytes), 2)
        )
        return Extension(ext_type, pairs)
    if ext_type in (ExtensionType.SUPPORTED_GROUPS, ExtensionType.SIGNATURE_ALGORITHMS) and body:
        values = _Reader(reader.vector(2))
        items = []
        while not values.exhausted:
            items.append(values.u16())
        return Extension(ext_type, tuple(items))
    if ext_type is ExtensionType.EC_POINT_FORMATS and body:
        return Extension(ext_type, tuple(reader.vector(1)))
    if ext_type is ExtensionType.ALPN and body:
        protocols_reader = _Reader(reader.vector(2))
        protocols = []
        while not protocols_reader.exhausted:
            protocols.append(protocols_reader.vector(1).decode("ascii"))
        return Extension(ext_type, tuple(protocols))
    if ext_type is ExtensionType.STATUS_REQUEST:
        return Extension(ext_type, ("ocsp",))
    return Extension(ext_type)


# ---------------------------------------------------------------------------
# ClientHello
# ---------------------------------------------------------------------------

def encode_client_hello(hello: ClientHello, *, seed: str = "client") -> bytes:
    """Serialise a ClientHello into a full TLS record."""
    major, minor = hello.legacy_version.wire
    body = bytes((major, minor))
    body += _deterministic_random(seed)
    body += _vec(b"", 1)  # empty session id
    body += _vec(b"".join(_u16(code) for code in hello.cipher_codes), 2)
    body += _vec(bytes(hello.compression_methods), 1)
    extensions = b"".join(_encode_extension(ext) for ext in hello.extensions)
    body += _vec(extensions, 2)

    handshake = _u8(_HANDSHAKE_CLIENT_HELLO) + _vec(body, 3)
    return _u8(_CONTENT_HANDSHAKE) + bytes((major, minor)) + _vec(handshake, 2)


def decode_client_hello(wire: bytes) -> ClientHello:
    """Parse a TLS record containing a ClientHello."""
    record = _Reader(wire)
    content_type = record.u8()
    if content_type != _CONTENT_HANDSHAKE:
        raise CodecError(f"not a handshake record (content type {content_type})")
    record.take(2)  # record-layer version (may lag the hello's)
    fragment = _Reader(record.vector(2))

    if fragment.u8() != _HANDSHAKE_CLIENT_HELLO:
        raise CodecError("not a ClientHello")
    body = _Reader(fragment.vector(3))

    version = ProtocolVersion.from_wire((body.u8(), body.u8()))
    body.take(32)  # random
    body.vector(1)  # session id
    ciphers_bytes = body.vector(2)
    if len(ciphers_bytes) % 2:
        raise CodecError("odd cipher-suite vector length")
    cipher_codes = tuple(
        struct.unpack("!H", ciphers_bytes[index : index + 2])[0]
        for index in range(0, len(ciphers_bytes), 2)
    )
    compression = tuple(body.vector(1))

    extensions = []
    ext_reader = _Reader(body.vector(2))
    while not ext_reader.exhausted:
        ext_type_code = ext_reader.u16()
        ext_body = ext_reader.vector(2)
        extensions.append(_decode_extension(ext_type_code, ext_body))

    return ClientHello(
        legacy_version=version,
        cipher_codes=cipher_codes,
        extensions=tuple(extensions),
        compression_methods=compression or (0,),
    )


# ---------------------------------------------------------------------------
# ServerHello
# ---------------------------------------------------------------------------

def encode_server_hello(hello: ServerHello, *, seed: str = "server") -> bytes:
    major, minor = hello.version.wire
    body = bytes((major, minor))
    body += _deterministic_random(seed)
    body += _vec(b"", 1)  # session id
    body += _u16(hello.cipher_code)
    body += _u8(0)  # null compression
    handshake = _u8(_HANDSHAKE_SERVER_HELLO) + _vec(body, 3)
    return _u8(_CONTENT_HANDSHAKE) + bytes((major, minor)) + _vec(handshake, 2)


def decode_server_hello(wire: bytes) -> ServerHello:
    record = _Reader(wire)
    if record.u8() != _CONTENT_HANDSHAKE:
        raise CodecError("not a handshake record")
    record.take(2)
    fragment = _Reader(record.vector(2))
    if fragment.u8() != _HANDSHAKE_SERVER_HELLO:
        raise CodecError("not a ServerHello")
    body = _Reader(fragment.vector(3))
    version = ProtocolVersion.from_wire((body.u8(), body.u8()))
    body.take(32)
    body.vector(1)
    cipher_code = body.u16()
    return ServerHello(version=version, cipher_code=cipher_code)


# ---------------------------------------------------------------------------
# Alerts
# ---------------------------------------------------------------------------

def encode_alert(alert: Alert, *, version: ProtocolVersion = ProtocolVersion.TLS_1_2) -> bytes:
    major, minor = version.wire
    payload = _u8(alert.level.value) + _u8(alert.description.value)
    return _u8(_CONTENT_ALERT) + bytes((major, minor)) + _vec(payload, 2)


def decode_alert(wire: bytes) -> Alert:
    record = _Reader(wire)
    if record.u8() != _CONTENT_ALERT:
        raise CodecError("not an alert record")
    record.take(2)
    payload = _Reader(record.vector(2))
    level = payload.u8()
    description = payload.u8()
    try:
        return Alert(level=AlertLevel(level), description=AlertDescription(description))
    except ValueError as error:
        raise CodecError(f"unknown alert ({level}, {description})") from error
