"""Ciphersuite registry with IANA codepoints and security classification.

The classification mirrors §2 of the paper:

* **insecure** -- any suite using DES, 3DES, RC4 or EXPORT-grade keys
  ("immediate remediation" per NSA/OWASP guidance; Figure 2 plots the
  fraction of ClientHellos advertising these),
* **unauthenticated/unencrypted** -- NULL or anonymous (ANON) suites,
  which the paper reports *no* device ever used,
* **strong** -- (EC)DHE suites providing perfect forward secrecy, plus
  all TLS 1.3 suites (always forward-secret); Figure 3 plots these.

Codepoints are the real IANA assignments so that fingerprints computed
over them (JA3-style) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "KeyExchange",
    "BulkCipher",
    "MacAlgorithm",
    "CipherSuite",
    "REGISTRY",
    "by_code",
    "by_name",
    "TLS13_SUITES",
    "MODERN_TLS12_SUITES",
    "LEGACY_RSA_SUITES",
    "INSECURE_SUITES",
    "GREASE_CODEPOINTS",
    "TLS_FALLBACK_SCSV",
]


class KeyExchange(Enum):
    RSA = "RSA"
    DHE = "DHE"
    ECDHE = "ECDHE"
    DH_ANON = "DH_anon"
    ECDH_ANON = "ECDH_anon"
    TLS13 = "TLS13"  # key exchange negotiated separately; always (EC)DHE
    NULL = "NULL"


class BulkCipher(Enum):
    NULL = "NULL"
    RC4_128 = "RC4_128"
    DES40_CBC = "DES40_CBC"  # EXPORT grade
    DES_CBC = "DES_CBC"
    TRIPLE_DES_EDE_CBC = "3DES_EDE_CBC"
    AES_128_CBC = "AES_128_CBC"
    AES_256_CBC = "AES_256_CBC"
    AES_128_GCM = "AES_128_GCM"
    AES_256_GCM = "AES_256_GCM"
    CHACHA20_POLY1305 = "CHACHA20_POLY1305"


class MacAlgorithm(Enum):
    NULL = "NULL"
    MD5 = "MD5"
    SHA = "SHA"
    SHA256 = "SHA256"
    SHA384 = "SHA384"
    AEAD = "AEAD"


_EXPORT_CIPHERS = {BulkCipher.DES40_CBC}
_BROKEN_CIPHERS = {
    BulkCipher.RC4_128,
    BulkCipher.DES_CBC,
    BulkCipher.DES40_CBC,
    BulkCipher.TRIPLE_DES_EDE_CBC,
}
_ANON_KX = {KeyExchange.DH_ANON, KeyExchange.ECDH_ANON}
_FS_KX = {KeyExchange.DHE, KeyExchange.ECDHE, KeyExchange.TLS13}


@dataclass(frozen=True)
class CipherSuite:
    """A single IANA-registered ciphersuite."""

    code: int
    name: str
    key_exchange: KeyExchange
    cipher: BulkCipher
    mac: MacAlgorithm
    tls13_only: bool = False

    @property
    def is_export(self) -> bool:
        return self.cipher in _EXPORT_CIPHERS or "EXPORT" in self.name

    @property
    def is_insecure(self) -> bool:
        """DES / 3DES / RC4 / EXPORT -- the Figure 2 'insecure' set."""
        return self.cipher in _BROKEN_CIPHERS or self.is_export

    @property
    def is_null_or_anon(self) -> bool:
        """No encryption or no authentication (never seen in the study)."""
        return (
            self.cipher is BulkCipher.NULL
            or self.key_exchange in _ANON_KX
            or self.key_exchange is KeyExchange.NULL
        )

    @property
    def forward_secret(self) -> bool:
        """(EC)DHE / TLS 1.3 -- the Figure 3 'strong' set."""
        return self.key_exchange in _FS_KX and not self.is_null_or_anon

    @property
    def is_strong(self) -> bool:
        return self.forward_secret and not self.is_insecure

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


def _suite(code: int, name: str, kx: KeyExchange, cipher: BulkCipher, mac: MacAlgorithm, *, tls13: bool = False) -> CipherSuite:
    return CipherSuite(code=code, name=name, key_exchange=kx, cipher=cipher, mac=mac, tls13_only=tls13)


#: The full registry, keyed by IANA codepoint.
REGISTRY: dict[int, CipherSuite] = {
    suite.code: suite
    for suite in [
        # --- TLS 1.3 (RFC 8446) ---
        _suite(0x1301, "TLS_AES_128_GCM_SHA256", KeyExchange.TLS13, BulkCipher.AES_128_GCM, MacAlgorithm.AEAD, tls13=True),
        _suite(0x1302, "TLS_AES_256_GCM_SHA384", KeyExchange.TLS13, BulkCipher.AES_256_GCM, MacAlgorithm.AEAD, tls13=True),
        _suite(0x1303, "TLS_CHACHA20_POLY1305_SHA256", KeyExchange.TLS13, BulkCipher.CHACHA20_POLY1305, MacAlgorithm.AEAD, tls13=True),
        # --- ECDHE, AEAD (modern TLS 1.2) ---
        _suite(0xC02B, "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", KeyExchange.ECDHE, BulkCipher.AES_128_GCM, MacAlgorithm.AEAD),
        _suite(0xC02C, "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384", KeyExchange.ECDHE, BulkCipher.AES_256_GCM, MacAlgorithm.AEAD),
        _suite(0xC02F, "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", KeyExchange.ECDHE, BulkCipher.AES_128_GCM, MacAlgorithm.AEAD),
        _suite(0xC030, "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384", KeyExchange.ECDHE, BulkCipher.AES_256_GCM, MacAlgorithm.AEAD),
        _suite(0xCCA8, "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", KeyExchange.ECDHE, BulkCipher.CHACHA20_POLY1305, MacAlgorithm.AEAD),
        _suite(0xCCA9, "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256", KeyExchange.ECDHE, BulkCipher.CHACHA20_POLY1305, MacAlgorithm.AEAD),
        # --- ECDHE, CBC ---
        _suite(0xC009, "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA", KeyExchange.ECDHE, BulkCipher.AES_128_CBC, MacAlgorithm.SHA),
        _suite(0xC00A, "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA", KeyExchange.ECDHE, BulkCipher.AES_256_CBC, MacAlgorithm.SHA),
        _suite(0xC013, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", KeyExchange.ECDHE, BulkCipher.AES_128_CBC, MacAlgorithm.SHA),
        _suite(0xC014, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA", KeyExchange.ECDHE, BulkCipher.AES_256_CBC, MacAlgorithm.SHA),
        _suite(0xC023, "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256", KeyExchange.ECDHE, BulkCipher.AES_128_CBC, MacAlgorithm.SHA256),
        _suite(0xC024, "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384", KeyExchange.ECDHE, BulkCipher.AES_256_CBC, MacAlgorithm.SHA384),
        _suite(0xC027, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256", KeyExchange.ECDHE, BulkCipher.AES_128_CBC, MacAlgorithm.SHA256),
        _suite(0xC028, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384", KeyExchange.ECDHE, BulkCipher.AES_256_CBC, MacAlgorithm.SHA384),
        # --- ECDHE, legacy ciphers ---
        _suite(0xC007, "TLS_ECDHE_ECDSA_WITH_RC4_128_SHA", KeyExchange.ECDHE, BulkCipher.RC4_128, MacAlgorithm.SHA),
        _suite(0xC011, "TLS_ECDHE_RSA_WITH_RC4_128_SHA", KeyExchange.ECDHE, BulkCipher.RC4_128, MacAlgorithm.SHA),
        _suite(0xC008, "TLS_ECDHE_ECDSA_WITH_3DES_EDE_CBC_SHA", KeyExchange.ECDHE, BulkCipher.TRIPLE_DES_EDE_CBC, MacAlgorithm.SHA),
        _suite(0xC012, "TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA", KeyExchange.ECDHE, BulkCipher.TRIPLE_DES_EDE_CBC, MacAlgorithm.SHA),
        # --- DHE ---
        _suite(0x0033, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA", KeyExchange.DHE, BulkCipher.AES_128_CBC, MacAlgorithm.SHA),
        _suite(0x0039, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA", KeyExchange.DHE, BulkCipher.AES_256_CBC, MacAlgorithm.SHA),
        _suite(0x0067, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256", KeyExchange.DHE, BulkCipher.AES_128_CBC, MacAlgorithm.SHA256),
        _suite(0x006B, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256", KeyExchange.DHE, BulkCipher.AES_256_CBC, MacAlgorithm.SHA256),
        _suite(0x009E, "TLS_DHE_RSA_WITH_AES_128_GCM_SHA256", KeyExchange.DHE, BulkCipher.AES_128_GCM, MacAlgorithm.AEAD),
        _suite(0x009F, "TLS_DHE_RSA_WITH_AES_256_GCM_SHA384", KeyExchange.DHE, BulkCipher.AES_256_GCM, MacAlgorithm.AEAD),
        _suite(0x0016, "TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA", KeyExchange.DHE, BulkCipher.TRIPLE_DES_EDE_CBC, MacAlgorithm.SHA),
        _suite(0x0015, "TLS_DHE_RSA_WITH_DES_CBC_SHA", KeyExchange.DHE, BulkCipher.DES_CBC, MacAlgorithm.SHA),
        _suite(0x0014, "TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA", KeyExchange.DHE, BulkCipher.DES40_CBC, MacAlgorithm.SHA),
        # --- static RSA ---
        _suite(0x002F, "TLS_RSA_WITH_AES_128_CBC_SHA", KeyExchange.RSA, BulkCipher.AES_128_CBC, MacAlgorithm.SHA),
        _suite(0x0035, "TLS_RSA_WITH_AES_256_CBC_SHA", KeyExchange.RSA, BulkCipher.AES_256_CBC, MacAlgorithm.SHA),
        _suite(0x003C, "TLS_RSA_WITH_AES_128_CBC_SHA256", KeyExchange.RSA, BulkCipher.AES_128_CBC, MacAlgorithm.SHA256),
        _suite(0x003D, "TLS_RSA_WITH_AES_256_CBC_SHA256", KeyExchange.RSA, BulkCipher.AES_256_CBC, MacAlgorithm.SHA256),
        _suite(0x009C, "TLS_RSA_WITH_AES_128_GCM_SHA256", KeyExchange.RSA, BulkCipher.AES_128_GCM, MacAlgorithm.AEAD),
        _suite(0x009D, "TLS_RSA_WITH_AES_256_GCM_SHA384", KeyExchange.RSA, BulkCipher.AES_256_GCM, MacAlgorithm.AEAD),
        _suite(0x0005, "TLS_RSA_WITH_RC4_128_SHA", KeyExchange.RSA, BulkCipher.RC4_128, MacAlgorithm.SHA),
        _suite(0x0004, "TLS_RSA_WITH_RC4_128_MD5", KeyExchange.RSA, BulkCipher.RC4_128, MacAlgorithm.MD5),
        _suite(0x000A, "TLS_RSA_WITH_3DES_EDE_CBC_SHA", KeyExchange.RSA, BulkCipher.TRIPLE_DES_EDE_CBC, MacAlgorithm.SHA),
        _suite(0x0009, "TLS_RSA_WITH_DES_CBC_SHA", KeyExchange.RSA, BulkCipher.DES_CBC, MacAlgorithm.SHA),
        _suite(0x0008, "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA", KeyExchange.RSA, BulkCipher.DES40_CBC, MacAlgorithm.SHA),
        _suite(0x0003, "TLS_RSA_EXPORT_WITH_RC4_40_MD5", KeyExchange.RSA, BulkCipher.RC4_128, MacAlgorithm.MD5),
        # --- NULL / anonymous (never used by devices; needed for tests) ---
        _suite(0x0001, "TLS_RSA_WITH_NULL_MD5", KeyExchange.RSA, BulkCipher.NULL, MacAlgorithm.MD5),
        _suite(0x0002, "TLS_RSA_WITH_NULL_SHA", KeyExchange.RSA, BulkCipher.NULL, MacAlgorithm.SHA),
        _suite(0x003B, "TLS_RSA_WITH_NULL_SHA256", KeyExchange.RSA, BulkCipher.NULL, MacAlgorithm.SHA256),
        _suite(0x0018, "TLS_DH_anon_WITH_RC4_128_MD5", KeyExchange.DH_ANON, BulkCipher.RC4_128, MacAlgorithm.MD5),
        _suite(0x0034, "TLS_DH_anon_WITH_AES_128_CBC_SHA", KeyExchange.DH_ANON, BulkCipher.AES_128_CBC, MacAlgorithm.SHA),
        _suite(0xC018, "TLS_ECDH_anon_WITH_AES_128_CBC_SHA", KeyExchange.ECDH_ANON, BulkCipher.AES_128_CBC, MacAlgorithm.SHA),
    ]
}

_BY_NAME = {suite.name: suite for suite in REGISTRY.values()}

#: GREASE values (RFC 8701) some modern clients inject into hello lists;
#: fingerprinting must ignore them, as the Kotzias et al. database does.
GREASE_CODEPOINTS = frozenset(
    0x0A0A + 0x1010 * i for i in range(16)
)

#: TLS_FALLBACK_SCSV (RFC 7507): a signalling value a client appends to
#: its cipher list when a connection is a *fallback retry* at reduced
#: security.  A conforming server that supports a higher version answers
#: with an ``inappropriate_fallback`` alert instead of letting the
#: downgrade through -- the deployed countermeasure to exactly the
#: voluntary-fallback behaviour Table 5 documents (none of the study's
#: downgrading devices sent it).
TLS_FALLBACK_SCSV = 0x5600


def by_code(code: int) -> CipherSuite:
    """Look a suite up by IANA codepoint; raises ``KeyError`` if unknown."""
    return REGISTRY[code]


def by_name(name: str) -> CipherSuite:
    """Look a suite up by its IANA name; raises ``KeyError`` if unknown."""
    return _BY_NAME[name]


TLS13_SUITES: tuple[CipherSuite, ...] = tuple(s for s in REGISTRY.values() if s.tls13_only)

MODERN_TLS12_SUITES: tuple[CipherSuite, ...] = tuple(
    s for s in REGISTRY.values() if s.is_strong and not s.tls13_only
)

LEGACY_RSA_SUITES: tuple[CipherSuite, ...] = tuple(
    s
    for s in REGISTRY.values()
    if s.key_exchange is KeyExchange.RSA and not s.is_insecure and not s.is_null_or_anon
)

INSECURE_SUITES: tuple[CipherSuite, ...] = tuple(
    s for s in REGISTRY.values() if s.is_insecure and not s.is_null_or_anon
)
