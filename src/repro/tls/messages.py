"""TLS handshake messages (the subset observable by the paper's tooling).

The paper's instrumentation sees ClientHellos, ServerHellos, certificate
chains, alerts and (for intercepted connections) application data.  These
dataclasses are that wire surface; everything the analysis pipeline
consumes is derived from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pki.certificate import Certificate
from ..pki.revocation import OCSPResponse
from .alerts import Alert
from .ciphersuites import GREASE_CODEPOINTS, REGISTRY, CipherSuite
from .extensions import Extension, ExtensionType
from .versions import ProtocolVersion

__all__ = ["ClientHello", "ServerHello", "ServerResponse"]


@dataclass(frozen=True)
class ClientHello:
    """A ClientHello as captured on the wire.

    ``legacy_version`` is the record-layer version; for TLS 1.3 clients
    it stays at TLS 1.2 and the real offer lives in the
    ``supported_versions`` extension (RFC 8446 §4.1.2), which
    :meth:`advertised_versions` reconstructs -- matching how the paper's
    passive pipeline computes "advertised" version fractions.
    """

    legacy_version: ProtocolVersion
    cipher_codes: tuple[int, ...]
    extensions: tuple[Extension, ...] = ()
    compression_methods: tuple[int, ...] = (0,)

    def extension(self, extension_type: ExtensionType) -> Extension | None:
        """First extension of the given type, or None."""
        for ext in self.extensions:
            if ext.extension_type is extension_type:
                return ext
        return None

    @property
    def server_name(self) -> str | None:
        """SNI hostname, if sent."""
        ext = self.extension(ExtensionType.SERVER_NAME)
        return ext.data[0] if ext and ext.data else None

    @property
    def requests_ocsp_staple(self) -> bool:
        """Whether the hello carries a status_request (OCSP stapling)."""
        return self.extension(ExtensionType.STATUS_REQUEST) is not None

    def advertised_versions(self) -> tuple[ProtocolVersion, ...]:
        """All protocol versions this hello offers, highest first."""
        ext = self.extension(ExtensionType.SUPPORTED_VERSIONS)
        if ext is not None:
            versions = [ProtocolVersion.from_wire(wire) for wire in ext.data]
            return tuple(sorted(versions, reverse=True))
        # Pre-1.3 semantics: the legacy version is the *maximum*; all
        # lower versions are implicitly acceptable to most stacks, but
        # for "advertised" statistics the paper counts the maximum.
        return (self.legacy_version,)

    @property
    def max_version(self) -> ProtocolVersion:
        return self.advertised_versions()[0]

    def cipher_suites(self) -> tuple[CipherSuite, ...]:
        """Decode offered codepoints, skipping GREASE and unknown values."""
        return tuple(
            REGISTRY[code]
            for code in self.cipher_codes
            if code not in GREASE_CODEPOINTS and code in REGISTRY
        )

    @property
    def advertises_insecure_cipher(self) -> bool:
        return any(suite.is_insecure for suite in self.cipher_suites())

    @property
    def advertises_forward_secrecy(self) -> bool:
        return any(suite.forward_secret for suite in self.cipher_suites())


@dataclass(frozen=True)
class ServerHello:
    """A ServerHello: the server's version and ciphersuite choice."""

    version: ProtocolVersion
    cipher_code: int

    @property
    def cipher_suite(self) -> CipherSuite:
        return REGISTRY[self.cipher_code]


@dataclass(frozen=True)
class ServerResponse:
    """Everything a (possibly impersonated) server sends after ClientHello.

    ``incomplete`` models the paper's *IncompleteHandshake* probe: the
    attacker simply never answers the ClientHello.
    """

    server_hello: ServerHello | None = None
    certificate_chain: tuple[Certificate, ...] = ()
    ocsp_staple: OCSPResponse | None = None
    alert: Alert | None = None
    incomplete: bool = False

    @property
    def chain(self) -> list[Certificate]:
        return list(self.certificate_chain)
