"""The TLS handshake engine: negotiation between a client and a responder.

The engine is deliberately symmetric about who the "server" is: a
*responder* is anything that turns a ClientHello into a
:class:`~repro.tls.messages.ServerResponse`.  Genuine cloud servers
(:mod:`repro.testbed.servers`) and the interception proxy
(:mod:`repro.mitm`) both implement the interface, so device code cannot
tell them apart -- exactly the on-path attacker model of the paper.

Client behaviour (hello shaping, certificate evaluation, alert choice,
fallback-on-failure) is supplied by :class:`ClientBehavior`
implementations; the simulated libraries in :mod:`repro.tlslib` are the
concrete ones.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from time import perf_counter
from typing import Protocol, runtime_checkable

from .. import telemetry as _telemetry
from ..pki.validation import ValidationResult
from .alerts import Alert, AlertDescription
from .ciphersuites import REGISTRY
from .messages import ClientHello, ServerHello, ServerResponse
from .versions import ProtocolVersion

__all__ = [
    "HandshakeState",
    "ClientVerdict",
    "HandshakeResult",
    "Responder",
    "ClientBehavior",
    "negotiate",
    "perform_handshake",
]


class HandshakeState(Enum):
    """Terminal state of a handshake attempt."""

    ESTABLISHED = "established"
    CLIENT_REJECTED = "client_rejected"  # client refused the server's credentials
    SERVER_REJECTED = "server_rejected"  # server sent an alert (e.g. no overlap)
    NO_RESPONSE = "no_response"  # IncompleteHandshake: silence after ClientHello


@dataclass(frozen=True)
class ClientVerdict:
    """A client's decision about a server response."""

    accept: bool
    validation: ValidationResult | None = None
    alert: Alert | None = None


@runtime_checkable
class Responder(Protocol):
    """Anything that answers ClientHellos (a server or an interceptor)."""

    def respond(self, client_hello: ClientHello, *, when: datetime) -> ServerResponse: ...


class ClientBehavior(abc.ABC):
    """Pluggable client-side behaviour (one per simulated TLS library)."""

    @abc.abstractmethod
    def build_client_hello(self, hostname: str | None) -> ClientHello:
        """Shape the ClientHello for a connection to ``hostname``."""

    @abc.abstractmethod
    def evaluate_response(
        self, response: ServerResponse, *, hostname: str | None, when: datetime
    ) -> ClientVerdict:
        """Validate the server's credentials and pick an alert on failure."""


@dataclass(frozen=True)
class HandshakeResult:
    """Complete record of one handshake attempt (the unit of analysis).

    Every table and figure in the paper is computed from collections of
    these records (plus timestamps and device attribution added by the
    capture layer).
    """

    client_hello: ClientHello
    response: ServerResponse | None
    state: HandshakeState
    hostname: str | None
    when: datetime
    verdict: ClientVerdict | None = None
    application_data: tuple[str, ...] = ()

    @property
    def established(self) -> bool:
        return self.state is HandshakeState.ESTABLISHED

    @property
    def established_version(self) -> ProtocolVersion | None:
        if self.established and self.response and self.response.server_hello:
            return self.response.server_hello.version
        return None

    @property
    def established_cipher_code(self) -> int | None:
        if self.established and self.response and self.response.server_hello:
            return self.response.server_hello.cipher_code
        return None

    @property
    def client_alert(self) -> Alert | None:
        return self.verdict.alert if self.verdict else None


def negotiate(
    client_hello: ClientHello,
    server_versions: frozenset[ProtocolVersion],
    server_cipher_codes: tuple[int, ...],
    *,
    honor_fallback_scsv: bool = False,
) -> ServerHello | None:
    """Standard server-side negotiation.

    Chooses the highest protocol version supported by both sides, then
    the first server-preferred ciphersuite the client offered that is
    usable at that version.  Returns ``None`` when no common parameters
    exist (the server should then send ``handshake_failure``).

    With ``honor_fallback_scsv`` (RFC 7507), a hello carrying
    TLS_FALLBACK_SCSV whose maximum version is below the server's best
    is refused (``None``; the server should send
    ``inappropriate_fallback``) -- blocking downgrade-by-retry.
    """
    if honor_fallback_scsv and _carries_fallback_scsv(client_hello):
        if max(server_versions) > client_hello.max_version:
            return None
    client_versions = set(client_hello.advertised_versions())
    # Pre-1.3 clients implicitly accept versions below their maximum.
    if ProtocolVersion.TLS_1_3 not in client_versions:
        maximum = client_hello.max_version
        client_versions = {v for v in ProtocolVersion if v <= maximum}
    common = client_versions & server_versions
    if not common:
        return None
    version = max(common)

    offered = set(client_hello.cipher_codes)
    for code in server_cipher_codes:
        if code not in offered or code not in REGISTRY:
            continue
        suite = REGISTRY[code]
        if version is ProtocolVersion.TLS_1_3 and not suite.tls13_only:
            continue
        if version is not ProtocolVersion.TLS_1_3 and suite.tls13_only:
            continue
        return ServerHello(version=version, cipher_code=code)
    return None


#: Shared runtime; mutated in place by :func:`repro.telemetry.configure`,
#: so caching it at import keeps the disabled fast path to one attribute
#: read per handshake.
_TELEMETRY = _telemetry.get()


def perform_handshake(
    client: ClientBehavior,
    responder: Responder,
    *,
    hostname: str | None,
    when: datetime,
    application_data: tuple[str, ...] = (),
) -> HandshakeResult:
    """Run one handshake attempt between a client behaviour and a responder.

    ``application_data`` is what the client would transmit after a
    successful handshake; it surfaces in the result only when the
    handshake establishes, which is how the interception experiments
    recover plaintext from vulnerable devices.
    """
    if not _TELEMETRY.enabled:
        return _perform_handshake(
            client, responder, hostname=hostname, when=when, application_data=application_data
        )
    started = perf_counter()
    result = _perform_handshake(
        client, responder, hostname=hostname, when=when, application_data=application_data
    )
    elapsed = perf_counter() - started
    registry = _TELEMETRY.registry
    registry.histogram(
        "iotls_handshake_seconds", "Wall time per handshake attempt."
    ).observe(elapsed)
    registry.counter(
        "iotls_handshakes_total", "Handshake attempts by terminal state."
    ).inc(state=result.state.value)
    if result.established and result.established_version is not None:
        registry.counter(
            "iotls_negotiated_versions_total",
            "Established handshakes by negotiated protocol version.",
        ).inc(version=result.established_version.label)
    alerts = registry.counter(
        "iotls_handshake_alerts_total", "TLS alerts observed on the wire, by sender."
    )
    if result.response is not None and result.response.alert is not None:
        alerts.inc(sender="server", description=result.response.alert.description.name.lower())
    if result.client_alert is not None:
        alerts.inc(sender="client", description=result.client_alert.description.name.lower())
    return result


def _perform_handshake(
    client: ClientBehavior,
    responder: Responder,
    *,
    hostname: str | None,
    when: datetime,
    application_data: tuple[str, ...] = (),
) -> HandshakeResult:
    client_hello = client.build_client_hello(hostname)
    response = responder.respond(client_hello, when=when)

    if response.incomplete:
        return HandshakeResult(
            client_hello=client_hello,
            response=response,
            state=HandshakeState.NO_RESPONSE,
            hostname=hostname,
            when=when,
        )

    if response.alert is not None or response.server_hello is None:
        return HandshakeResult(
            client_hello=client_hello,
            response=response,
            state=HandshakeState.SERVER_REJECTED,
            hostname=hostname,
            when=when,
        )

    verdict = client.evaluate_response(response, hostname=hostname, when=when)
    if not verdict.accept:
        return HandshakeResult(
            client_hello=client_hello,
            response=response,
            state=HandshakeState.CLIENT_REJECTED,
            hostname=hostname,
            when=when,
            verdict=verdict,
        )

    return HandshakeResult(
        client_hello=client_hello,
        response=response,
        state=HandshakeState.ESTABLISHED,
        hostname=hostname,
        when=when,
        verdict=verdict,
        application_data=application_data,
    )


def handshake_failure_response() -> ServerResponse:
    """Convenience: the response a server sends when negotiation fails."""
    return ServerResponse(alert=Alert.fatal(AlertDescription.HANDSHAKE_FAILURE))


def _carries_fallback_scsv(client_hello: ClientHello) -> bool:
    from .ciphersuites import TLS_FALLBACK_SCSV

    return TLS_FALLBACK_SCSV in client_hello.cipher_codes
