"""TLS Alert protocol (RFC 5246 §7.2 / RFC 8446 §6).

Alert messages are the heart of the paper's novel root-store probing
technique: clients *may* send ``unknown_ca`` when no trusted root matches
the presented issuer, and ``decrypt_error`` / ``bad_certificate`` when a
known issuer's signature fails to verify.  Libraries differ (Table 4);
those differences are modelled by per-library alert policies in
:mod:`repro.tlslib`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["AlertLevel", "AlertDescription", "Alert"]


class AlertLevel(Enum):
    WARNING = 1
    FATAL = 2


class AlertDescription(Enum):
    """Alert descriptions with their RFC-assigned codes."""

    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    RECORD_OVERFLOW = 22
    HANDSHAKE_FAILURE = 40
    BAD_CERTIFICATE = 42
    UNSUPPORTED_CERTIFICATE = 43
    CERTIFICATE_REVOKED = 44
    CERTIFICATE_EXPIRED = 45
    CERTIFICATE_UNKNOWN = 46
    ILLEGAL_PARAMETER = 47
    UNKNOWN_CA = 48
    ACCESS_DENIED = 49
    DECODE_ERROR = 50
    DECRYPT_ERROR = 51
    PROTOCOL_VERSION = 70
    INSUFFICIENT_SECURITY = 71
    INTERNAL_ERROR = 80
    INAPPROPRIATE_FALLBACK = 86
    USER_CANCELED = 90
    NO_RENEGOTIATION = 100
    MISSING_EXTENSION = 109
    UNSUPPORTED_EXTENSION = 110
    UNRECOGNIZED_NAME = 112
    BAD_CERTIFICATE_STATUS_RESPONSE = 113
    CERTIFICATE_REQUIRED = 116
    NO_APPLICATION_PROTOCOL = 120

    @property
    def human_name(self) -> str:
        """Printable name in the style the paper uses ("Unknown CA")."""
        return self.name.replace("_", " ").title().replace("Ca", "CA")


@dataclass(frozen=True)
class Alert:
    """An alert record as observed on the wire."""

    level: AlertLevel
    description: AlertDescription

    @classmethod
    def fatal(cls, description: AlertDescription) -> "Alert":
        return cls(level=AlertLevel.FATAL, description=description)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.level.name.lower()}:{self.description.name.lower()}"
