"""TLS extensions (hello extensions) used by the simulation.

Extensions matter in three places:

* **fingerprinting** -- the ordered extension-type list is part of the
  JA3-style fingerprint (:mod:`repro.fingerprint`),
* **revocation analysis** -- ``status_request`` signals OCSP-stapling
  support (Table 8),
* **negotiation** -- ``supported_versions`` carries TLS 1.3 offers, and
  ``server_name`` (SNI) identifies destinations in passive data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "ExtensionType",
    "NamedGroup",
    "SignatureScheme",
    "ECPointFormat",
    "Extension",
    "sni",
    "status_request",
    "supported_versions_ext",
    "supported_groups_ext",
    "signature_algorithms_ext",
    "ec_point_formats_ext",
    "alpn_ext",
]


class ExtensionType(Enum):
    """Extension type codepoints (IANA TLS ExtensionType registry)."""

    SERVER_NAME = 0
    STATUS_REQUEST = 5
    SUPPORTED_GROUPS = 10
    EC_POINT_FORMATS = 11
    SIGNATURE_ALGORITHMS = 13
    ALPN = 16
    SIGNED_CERTIFICATE_TIMESTAMP = 18
    PADDING = 21
    ENCRYPT_THEN_MAC = 22
    EXTENDED_MASTER_SECRET = 23
    SESSION_TICKET = 35
    SUPPORTED_VERSIONS = 43
    PSK_KEY_EXCHANGE_MODES = 45
    KEY_SHARE = 51
    RENEGOTIATION_INFO = 65281


class NamedGroup(Enum):
    """Elliptic-curve groups (IANA supported-groups registry)."""

    SECP256R1 = 23
    SECP384R1 = 24
    SECP521R1 = 25
    X25519 = 29
    X448 = 30
    FFDHE2048 = 256


class SignatureScheme(Enum):
    """Signature algorithms (RFC 8446 §4.2.3 codepoints)."""

    RSA_PKCS1_SHA1 = 0x0201
    ECDSA_SHA1 = 0x0203
    RSA_PKCS1_SHA256 = 0x0401
    ECDSA_SECP256R1_SHA256 = 0x0403
    RSA_PKCS1_SHA384 = 0x0501
    RSA_PKCS1_SHA512 = 0x0601
    RSA_PSS_RSAE_SHA256 = 0x0804
    RSA_PSS_RSAE_SHA384 = 0x0805
    ED25519 = 0x0807


class ECPointFormat(Enum):
    UNCOMPRESSED = 0
    ANSIX962_COMPRESSED_PRIME = 1


@dataclass(frozen=True)
class Extension:
    """A hello extension: its type plus an opaque, hashable payload.

    ``data`` is a tuple of primitives (ints/strings) rather than raw
    bytes; the fingerprinting layer only needs type codes and the group /
    point-format lists, per the JA3 definition.
    """

    extension_type: ExtensionType
    data: tuple = field(default_factory=tuple)


def sni(hostname: str) -> Extension:
    """Server Name Indication carrying the destination hostname."""
    return Extension(ExtensionType.SERVER_NAME, (hostname,))


def status_request() -> Extension:
    """OCSP stapling request (certificate status request)."""
    return Extension(ExtensionType.STATUS_REQUEST, ("ocsp",))


def supported_versions_ext(wire_codes: tuple[tuple[int, int], ...]) -> Extension:
    """TLS 1.3 style supported_versions list."""
    return Extension(ExtensionType.SUPPORTED_VERSIONS, wire_codes)


def supported_groups_ext(groups: tuple[NamedGroup, ...]) -> Extension:
    return Extension(ExtensionType.SUPPORTED_GROUPS, tuple(g.value for g in groups))


def signature_algorithms_ext(schemes: tuple[SignatureScheme, ...]) -> Extension:
    return Extension(ExtensionType.SIGNATURE_ALGORITHMS, tuple(s.value for s in schemes))


def ec_point_formats_ext(formats: tuple[ECPointFormat, ...] = (ECPointFormat.UNCOMPRESSED,)) -> Extension:
    return Extension(ExtensionType.EC_POINT_FORMATS, tuple(f.value for f in formats))


def alpn_ext(protocols: tuple[str, ...]) -> Extension:
    return Extension(ExtensionType.ALPN, protocols)
