"""TLS/SSL protocol versions.

Versions carry their on-the-wire ``(major, minor)`` codes and a security
classification matching the paper's framing: everything below TLS 1.2 is
*deprecated* (major browsers removed support by 2020), and Figure 1 bins
connections into exactly three bands -- TLS 1.3, TLS 1.2, and "older".
"""

from __future__ import annotations

from enum import Enum

__all__ = ["ProtocolVersion", "VersionBand", "DEPRECATED_VERSIONS", "MODERN_VERSIONS"]


class ProtocolVersion(Enum):
    """SSL/TLS protocol versions with wire codes and release years."""

    SSL_2_0 = ("SSL 2.0", (2, 0), 1995)
    SSL_3_0 = ("SSL 3.0", (3, 0), 1996)
    TLS_1_0 = ("TLS 1.0", (3, 1), 1999)
    TLS_1_1 = ("TLS 1.1", (3, 2), 2006)
    TLS_1_2 = ("TLS 1.2", (3, 3), 2008)
    TLS_1_3 = ("TLS 1.3", (3, 4), 2018)

    def __init__(self, label: str, wire: tuple[int, int], year: int) -> None:
        self.label = label
        self.wire = wire
        self.release_year = year

    @property
    def is_deprecated(self) -> bool:
        """Versions below TLS 1.2 are deprecated (POODLE, BEAST, ...)."""
        return self.wire < ProtocolVersion.TLS_1_2.wire

    @property
    def band(self) -> "VersionBand":
        """The Figure 1 row band this version falls into."""
        if self is ProtocolVersion.TLS_1_3:
            return VersionBand.TLS_1_3
        if self is ProtocolVersion.TLS_1_2:
            return VersionBand.TLS_1_2
        return VersionBand.OLDER

    # Explicit rich comparisons (not ``functools.total_ordering``): the
    # handshake hot path compares versions millions of times per run,
    # and the derived operators add a wrapper call per comparison.
    def __lt__(self, other: object) -> bool:
        if not isinstance(other, ProtocolVersion):
            return NotImplemented
        return self.wire < other.wire

    def __le__(self, other: object) -> bool:
        if not isinstance(other, ProtocolVersion):
            return NotImplemented
        return self.wire <= other.wire

    def __gt__(self, other: object) -> bool:
        if not isinstance(other, ProtocolVersion):
            return NotImplemented
        return self.wire > other.wire

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, ProtocolVersion):
            return NotImplemented
        return self.wire >= other.wire

    @classmethod
    def from_wire(cls, wire: tuple[int, int]) -> "ProtocolVersion":
        for version in cls:
            if version.wire == wire:
                return version
        raise ValueError(f"unknown protocol version wire code {wire!r}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.label


class VersionBand(Enum):
    """The three per-device rows of Figure 1."""

    TLS_1_3 = "1.3"
    TLS_1_2 = "1.2"
    OLDER = "older"


DEPRECATED_VERSIONS = frozenset(v for v in ProtocolVersion if v.is_deprecated)
MODERN_VERSIONS = frozenset(v for v in ProtocolVersion if not v.is_deprecated)
