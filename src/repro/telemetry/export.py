"""Exporters: Prometheus text format, JSON snapshots, and a summary table.

Three render targets for one :class:`~repro.telemetry.metrics.MetricsRegistry`:

* :func:`to_prometheus` -- the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, labelled samples, cumulative
  histogram ``le`` buckets with ``_sum`` / ``_count``), parseable by any
  Prometheus-compatible scraper,
* :func:`metrics_snapshot` / :func:`write_snapshot` -- a JSON document
  in the same family as the repo's ``BENCH_*.json`` trajectory files
  (plain nested dicts, sorted keys, a ``schema`` tag),
* :func:`summary_table` -- an aligned human-readable table for CLI
  output.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from .metrics import Counter, Gauge, Histogram, LabelKey, MetricsRegistry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "metrics_snapshot",
    "summary_table",
    "to_prometheus",
    "write_snapshot",
]

from .schemas import SNAPSHOT_SCHEMA  # registered in repro.telemetry.schemas


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    # Prometheus spells the overflow bound "+Inf"; repr(inf) would
    # render "inf", which scrapers reject.
    if math.isinf(bound):
        return "+Inf" if bound > 0 else "-Inf"
    return _format_value(bound)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry as Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        help_text = metric.help or metric.name.replace("_", " ")
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            # An explicit +Inf bound in the bucket layout would collide
            # with the implicit overflow line; render finite bounds only
            # and let the overflow line carry the total.
            finite_bounds = [b for b in metric.buckets if not math.isinf(b)]
            for key, state in sorted(metric.series().items()):
                cumulative = state.cumulative()
                for bound, count in zip(finite_bounds, cumulative):
                    labels = _format_labels(key, (("le", _format_bound(bound)),))
                    lines.append(f"{metric.name}_bucket{labels} {count}")
                inf_labels = _format_labels(key, (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{inf_labels} {cumulative[-1]}")
                lines.append(
                    f"{metric.name}_sum{_format_labels(key)} {_format_value(state.sum)}"
                )
                lines.append(f"{metric.name}_count{_format_labels(key)} {state.count}")
        else:
            for key, value in sorted(metric.series().items()):
                lines.append(f"{metric.name}{_format_labels(key)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------
def _labels_dict(key: LabelKey) -> dict[str, str]:
    return {name: value for name, value in key}


def metrics_snapshot(
    registry: MetricsRegistry, *, extra: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The registry as one JSON-serialisable document."""
    counters: dict[str, Any] = {}
    gauges: dict[str, Any] = {}
    histograms: dict[str, Any] = {}
    for metric in registry.metrics():
        if isinstance(metric, Counter):
            counters[metric.name] = {
                "help": metric.help,
                "total": metric.total(),
                "series": [
                    {"labels": _labels_dict(key), "value": value}
                    for key, value in sorted(metric.series().items())
                ],
            }
        elif isinstance(metric, Gauge):
            gauges[metric.name] = {
                "help": metric.help,
                "series": [
                    {"labels": _labels_dict(key), "value": value}
                    for key, value in sorted(metric.series().items())
                ],
            }
        elif isinstance(metric, Histogram):
            histograms[metric.name] = {
                "help": metric.help,
                "buckets": list(metric.buckets),
                "series": [
                    {
                        "labels": _labels_dict(key),
                        "count": state.count,
                        "sum": state.sum,
                        "cumulative_bucket_counts": state.cumulative(),
                    }
                    for key, state in sorted(metric.series().items())
                ],
            }
    snapshot: dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }
    if extra:
        snapshot["meta"] = extra
    return snapshot


def write_snapshot(
    registry: MetricsRegistry, path: str | Path, *, extra: dict[str, Any] | None = None
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = metrics_snapshot(registry, extra=extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Human summary
# ----------------------------------------------------------------------
def _render_rows(rows: list[tuple[str, str, str]]) -> str:
    headers = ("metric", "labels", "value")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(3)
    ]
    def fmt(row: tuple[str, str, str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [fmt(headers), fmt(tuple("-" * width for width in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def summary_table(registry: MetricsRegistry) -> str:
    """An aligned text table of every series in the registry."""
    rows: list[tuple[str, str, str]] = []
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            for key, state in sorted(metric.series().items()):
                mean = state.sum / state.count if state.count else 0.0
                rows.append(
                    (
                        metric.name,
                        _labels_text(key),
                        f"count={state.count} sum={state.sum:.6f}s mean={mean:.6f}s",
                    )
                )
        else:
            for key, value in sorted(metric.series().items()):
                rows.append((metric.name, _labels_text(key), _format_value(value)))
    if not rows:
        return "(no telemetry recorded)"
    return _render_rows(rows)


def _labels_text(key: LabelKey) -> str:
    return ",".join(f"{name}={value}" for name, value in key) or "-"
