"""Structured event logging: JSONL stream plus an in-memory ring buffer.

Every event is one flat dictionary -- ``{"seq": ..., "level": ...,
"event": ..., **fields}`` -- appended to a bounded deque (the *tail*,
which tests assert against) and, when a path is attached, written as
one JSON line.  Events carry a monotonic sequence number rather than a
wall-clock timestamp: the simulation is rigorously deterministic and
its clock is the study-month index, so ambient time never leaks into
artifacts.

Levels follow the conventional ladder (``debug`` < ``info`` <
``warning`` < ``error``); events below the configured threshold are
dropped before any formatting happens.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO

__all__ = ["EventLog", "LEVELS"]

LEVELS: dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """A levelled, structured event sink with a ring-buffer tail."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        level: str = "info",
        path: str | Path | None = None,
        tail: int = 256,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        self.enabled = enabled
        self.level = level
        self._threshold = LEVELS[level]
        self._seq = 0
        self._tail: deque[dict[str, object]] = deque(maxlen=tail)
        self._handle: IO[str] | None = None
        self._path: Path | None = None
        if path is not None:
            self.attach(path)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        self.level = level
        self._threshold = LEVELS[level]

    def attach(self, path: str | Path) -> Path:
        """Start (or switch) JSONL output to ``path``."""
        self.close()
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self._path.open("a", encoding="utf-8")
        return self._path

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def path(self) -> Path | None:
        return self._path

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def log(self, level: str, event: str, **fields: object) -> None:
        if not self.enabled:
            return
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown level {level!r}")
        if severity < self._threshold:
            return
        self._seq += 1
        entry: dict[str, object] = {"seq": self._seq, "level": level, "event": event}
        if fields:
            entry.update(fields)
        self._tail.append(entry)
        if self._handle is not None:
            self._handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
            self._handle.flush()

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)

    # ------------------------------------------------------------------
    # Worker merging
    # ------------------------------------------------------------------
    def merge(self, entries: list[dict[str, object]], *, worker: int) -> None:
        """Interleave a worker process's exported event tail into this log.

        Each entry is re-emitted here with a ``worker`` field and a fresh
        sequence number, preserving the worker's internal order.  Callers
        merge workers in ascending worker-id order, so the interleaving
        is deterministic regardless of process completion order.
        """
        for entry in entries:
            fields = {
                key: value
                for key, value in entry.items()
                if key not in ("seq", "level", "event")
            }
            fields["worker"] = worker
            self.log(str(entry["level"]), str(entry["event"]), **fields)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def tail(self, n: int | None = None) -> list[dict[str, object]]:
        """The most recent events (all buffered ones when ``n`` is None)."""
        events = list(self._tail)
        return events if n is None else events[-n:]

    def find(self, event: str) -> list[dict[str, object]]:
        return [entry for entry in self._tail if entry["event"] == event]

    def reset(self) -> None:
        self._seq = 0
        self._tail.clear()

    def __len__(self) -> int:
        return len(self._tail)
