"""The process-wide telemetry runtime: one registry, tracer, and event log.

Instrumented hot paths share a single :class:`TelemetryRuntime`
singleton, obtained once at import time via :func:`get` -- the object's
identity never changes; :func:`configure` mutates it in place.  The
fast-path contract is::

    _TELEMETRY = telemetry.get()          # module scope, once
    ...
    if _TELEMETRY.enabled:                # one attribute read when off
        _TELEMETRY.registry.counter(...).inc(...)

Telemetry is **opt-in**: the default runtime starts disabled, so the
library adds one boolean check per instrumented operation until
something (the CLI's ``--telemetry`` flag, the benchmark harness, a
test) enables it.
"""

from __future__ import annotations

from pathlib import Path

from .events import EventLog
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = [
    "TelemetryRuntime",
    "configure",
    "disable",
    "enable",
    "enabled",
    "get",
    "get_events",
    "get_registry",
    "get_tracer",
    "reset",
]


class TelemetryRuntime:
    """A registry + tracer + event log behind one enable switch."""

    __slots__ = (
        "enabled",
        "registry",
        "tracer",
        "events",
        "worker_profiles",
        "progress",
    )

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(registry=self.registry, enabled=enabled)
        self.events = EventLog(enabled=enabled)
        #: Profile payloads merged in from worker processes
        #: (:meth:`merge_worker_states`), consumed by
        #: :meth:`repro.telemetry.profiling.Profiler.from_runtime`.
        self.worker_profiles: list[dict] = []
        #: The active :class:`~repro.telemetry.progress.ProgressReporter`
        #: for the current run, or ``None``.  Hot paths guard with
        #: ``if runtime.progress is not None`` -- the same one-read
        #: contract as ``enabled``.
        self.progress = None

    def configure(
        self,
        *,
        enabled: bool = True,
        level: str | None = None,
        events_path: str | Path | None = None,
        reset: bool = True,
    ) -> "TelemetryRuntime":
        """Switch telemetry on or off, optionally resetting state.

        ``reset=True`` (the default) zeroes metrics, finished spans, and
        the event tail so a run's snapshot covers exactly that run.
        """
        if reset:
            self.reset()
        self.enabled = enabled
        self.registry.enabled = enabled
        self.tracer.enabled = enabled
        self.events.enabled = enabled
        if level is not None:
            self.events.set_level(level)
        if events_path is not None:
            self.events.attach(events_path)
        return self

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()
        self.events.reset()
        self.worker_profiles.clear()
        self.progress = None

    # ------------------------------------------------------------------
    # Parallel-worker state transfer
    # ------------------------------------------------------------------
    def export_worker_state(self, worker: int, *, context: object | None = None) -> dict:
        """Everything a worker process ships back to its parent.

        Metrics travel as a :func:`~repro.telemetry.export.metrics_snapshot`
        document, events as the plain tail list, and the worker's span
        profile as a :meth:`~repro.telemetry.profiling.Profiler.to_payload`
        document -- all pure data, so the payload pickles across the
        ``spawn`` process boundary.  ``context`` is the coordinator's
        propagated :class:`~repro.telemetry.tracing.TraceContext` (or its
        dict form); it rides in the profile payload so merge re-parents
        this worker's spans under the dispatch span.
        """
        from .export import metrics_snapshot
        from .profiling import Profiler

        return {
            "worker": worker,
            "metrics": metrics_snapshot(self.registry),
            "events": self.events.tail(),
            "profile": Profiler.from_tracer(self.tracer).to_payload(
                worker=worker, context=context
            ),
        }

    def merge_worker_states(self, states: list[dict]) -> None:
        """Fold worker telemetry into this runtime, keyed by worker id.

        States are merged in ascending worker-id order -- never arrival
        order -- so counter totals, event interleaving, and therefore
        exported snapshots are identical run-to-run.  ``None`` entries
        (workers that ran without telemetry) are skipped.
        """
        for state in sorted(
            (state for state in states if state is not None),
            key=lambda state: state["worker"],
        ):
            self.registry.merge_snapshot(state["metrics"])
            self.events.merge(state["events"], worker=state["worker"])
            if state.get("profile") is not None:
                self.worker_profiles.append(state["profile"])


#: The singleton every instrumented module shares.  Mutated in place,
#: never rebound -- caching ``telemetry.get()`` at import time is safe.
_RUNTIME = TelemetryRuntime()


def get() -> TelemetryRuntime:
    return _RUNTIME


def get_registry() -> MetricsRegistry:
    return _RUNTIME.registry


def get_tracer() -> Tracer:
    return _RUNTIME.tracer


def get_events() -> EventLog:
    return _RUNTIME.events


def enabled() -> bool:
    return _RUNTIME.enabled


def configure(**kwargs) -> TelemetryRuntime:
    return _RUNTIME.configure(**kwargs)


def enable(**kwargs) -> TelemetryRuntime:
    return _RUNTIME.configure(enabled=True, **kwargs)


def disable() -> TelemetryRuntime:
    return _RUNTIME.configure(enabled=False)


def reset() -> None:
    _RUNTIME.reset()
