"""The run ledger: a queryable, append-only cross-run observability store.

Every ``repro.api`` run -- success *and* typed failure -- and every
bench-tool timing appends one ``iotls-run-ledger/1`` JSON line to the
ledger (default ``.iotls/ledger.jsonl``), so the repository accumulates
a durable, content-addressed index of *what was computed, with what
config, on what host, with what outcome*:

* the **manifest digest** (the run's complete observable output, PR 3)
  and the **config digest** (command + params + version) -- together
  the lookup halves of the planned ``iotls serve`` result cache:
  ``config digest -> most recent manifest digest + artifact paths``,
* :func:`~repro.telemetry.provenance.host_fingerprint` and the wall /
  per-phase durations, resource peaks, and heartbeat totals from the
  run-health layer (PR 6),
* drift verdicts (``iotls check``) and SLO verdicts when those ran,
* :func:`~repro.telemetry.provenance.artifact_digest`-identified output
  paths (unlike manifests, the ledger *does* record where bytes landed
  -- that is exactly what ``runs gc`` and ``runs lookup`` need).

The ledger is deliberately **not** provenance: every entry carries
wall-clock and host data, so nothing here may ever feed a run manifest
-- manifests stay byte-identical across ``--workers 1/4`` and ledger
on/off.  The module lives inside the telemetry clock boundary (RL002)
and is itself the **ledger write boundary** (reprolint rule RL013):
ledger files are written only through :func:`append_entry` /
:func:`rewrite_ledger`, which guarantee whole-line atomicity --
one ``write()`` syscall per entry on an ``O_APPEND`` handle, so
concurrent warm-pool phases and parallel workers can never interleave
partial lines.

``iotls runs`` is the query surface: ``list`` / ``show`` / ``diff`` /
``trend`` / ``lookup`` / ``gc`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from .provenance import (
    artifact_digest,
    canonical_json,
    config_digest,
    host_date,
    host_fingerprint,
    _blake2s,
)
from .slo import evaluate_slos, trend_report

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "append_entry",
    "artifacts_live",
    "build_entry",
    "diff_entries",
    "filter_entries",
    "find_entry",
    "from_history_row",
    "gc_entries",
    "host_key",
    "ledger_trend",
    "load_ledger",
    "lookup_config",
    "render_diff",
    "render_entries",
    "render_entry",
    "rewrite_ledger",
]

#: Schema tag every ledger line declares (see repro.telemetry.schemas).
from .schemas import LEDGER_SCHEMA  # noqa: E402

#: Repo/CWD-relative default ledger location (``--ledger`` overrides).
DEFAULT_LEDGER_PATH = ".iotls/ledger.jsonl"

#: Entry kinds the schema admits.
ENTRY_KINDS = ("run", "bench", "check")

#: Entry statuses the schema admits.
ENTRY_STATUSES = ("ok", "error")

#: Same-process appends serialise on this lock; cross-process atomicity
#: comes from the single O_APPEND write per line.
_APPEND_LOCK = threading.Lock()


def _resolve(path: str | Path | None) -> Path:
    return Path(path) if path is not None else Path(DEFAULT_LEDGER_PATH)


def host_key(host: dict[str, Any] | None) -> str:
    """A short stable digest naming one host fingerprint (trend grouping)."""
    return _blake2s(canonical_json(host or {}).encode())[:12]


def _metric_totals(manifest: dict[str, Any] | None) -> dict[str, Any]:
    """The deterministic counter totals of a manifest (diffable slice)."""
    if not manifest:
        return {}
    counters = manifest.get("metrics", {}).get("counters", {})
    return {name: data.get("total") for name, data in sorted(counters.items())}


# ----------------------------------------------------------------------
# Entry construction
# ----------------------------------------------------------------------
def build_entry(
    command: str,
    *,
    params: dict[str, Any] | None = None,
    status: str = "ok",
    kind: str = "run",
    workers: int | None = None,
    seconds: float | None = None,
    phases: dict[str, float] | None = None,
    shards: dict[int, float] | None = None,
    pool: dict[str, Any] | None = None,
    manifest: dict[str, Any] | None = None,
    manifest_digest: str | None = None,
    artifacts: dict[str, str | Path] | None = None,
    health: dict[str, Any] | None = None,
    drift: dict[str, Any] | None = None,
    slo_verdicts: list[dict[str, Any]] | None = None,
    error: BaseException | dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one ``iotls-run-ledger/1`` entry (not yet written).

    The config digest is taken from the manifest when one was built and
    recomputed from ``(command, params, version)`` otherwise, so error
    entries raised before any manifest existed still index by config.
    Artifacts are digested in place *and* recorded with their resolved
    paths -- the ledger, unlike the manifest, cares where bytes landed.
    """
    from .. import __version__

    if kind not in ENTRY_KINDS:
        raise ValueError(f"kind must be one of {ENTRY_KINDS}, got {kind!r}")
    if status not in ENTRY_STATUSES:
        raise ValueError(f"status must be one of {ENTRY_STATUSES}, got {status!r}")
    params = dict(params or {})
    entry: dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "command": command,
        "status": status,
        "date": host_date(),
        "host": host_fingerprint(),
        "params": params,
        "config_digest": (
            manifest.get("config", {}).get("digest")
            if manifest
            else config_digest(command, params, __version__)
        ),
        "manifest_digest": manifest_digest,
    }
    if workers is not None:
        entry["workers"] = workers
    if seconds is not None:
        entry["seconds"] = round(seconds, 4)
    if phases:
        entry["phases"] = {name: round(value, 4) for name, value in sorted(phases.items())}
    if shards:
        entry["shards"] = {
            str(worker): round(value, 4) for worker, value in sorted(shards.items())
        }
    if pool:
        entry["pool"] = dict(pool)
    metrics = _metric_totals(manifest)
    if metrics:
        entry["metrics_totals"] = metrics
    if artifacts:
        entry["artifacts"] = {
            role: {
                **artifact_digest(path),
                "path": str(Path(path).resolve()),
            }
            for role, path in sorted(artifacts.items())
        }
    if health:
        entry["heartbeats"] = health.get("heartbeats")
        resources = health.get("resources")
        if resources:
            entry["resources"] = {
                key: resources[key]
                for key in (
                    "peak_rss_kib",
                    "peak_traced_bytes",
                    "gc_collections",
                    "cpu_user_seconds",
                    "cpu_system_seconds",
                )
                if key in resources
            }
    if drift:
        entry["drift"] = dict(drift)
    if slo_verdicts:
        entry["slo_verdicts"] = [dict(verdict) for verdict in slo_verdicts]
    if error is not None:
        if isinstance(error, BaseException):
            entry["error"] = {"type": type(error).__name__, "message": str(error)}
        else:
            entry["error"] = dict(error)
    if extra:
        entry.update(extra)
    return entry


# ----------------------------------------------------------------------
# The write boundary (RL013): every ledger byte goes through here.
# ----------------------------------------------------------------------
def append_entry(entry: dict[str, Any], path: str | Path | None = None) -> Path:
    """Append one entry as a single atomic line and return the path.

    The line is serialised first and written with **one** ``write()``
    call on an ``O_APPEND`` handle: POSIX append semantics then
    guarantee the line lands contiguously even when concurrent
    processes (warm-pool phases, parallel bench runs) append at the
    same moment -- no torn or interleaved lines, ever.  If a crashed
    writer left the file without a trailing newline, the new entry
    starts on a fresh line so the torn fragment stays quarantined to
    its own (skipped-on-load) line instead of corrupting this one.
    """
    path = _resolve(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"), default=str) + "\n"
    with _APPEND_LOCK:
        fd = os.open(str(path), os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            size = os.fstat(fd).st_size
            if size and os.pread(fd, 1, size - 1) != b"\n":
                line = "\n" + line
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
    return path


def rewrite_ledger(entries: list[dict[str, Any]], path: str | Path | None = None) -> Path:
    """Replace the ledger's contents atomically (``runs gc``).

    Writes the surviving entries to a sibling temp file and renames it
    over the ledger, so a reader never observes a half-written store.
    """
    path = _resolve(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = "".join(
        json.dumps(entry, sort_keys=True, separators=(",", ":"), default=str) + "\n"
        for entry in entries
    )
    temp = path.with_suffix(path.suffix + ".tmp")
    with _APPEND_LOCK:
        temp.write_text(lines, encoding="utf-8")
        os.replace(temp, path)
    return path


def load_ledger(path: str | Path | None = None) -> list[dict[str, Any]]:
    """Read every parseable entry; a missing file is an empty ledger.

    A torn or corrupt line (a crash mid-append on a non-POSIX
    filesystem, a truncated copy) must never poison the whole store:
    malformed lines and non-ledger records are skipped, keeping the
    load tolerant the way the bench-history loader already is.
    """
    path = _resolve(path)
    if not path.exists():
        return []
    entries: list[dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # corrupt trailing line: tolerate, never propagate
        if isinstance(record, dict):
            entries.append(record)
    return entries


# ----------------------------------------------------------------------
# Queries (the `iotls runs` surface)
# ----------------------------------------------------------------------
def filter_entries(
    entries: list[dict[str, Any]],
    *,
    command: str | None = None,
    device: str | None = None,
    host: str | None = None,
    status: str | None = None,
    kind: str | None = None,
) -> list[dict[str, Any]]:
    """The ``runs list`` filter: every criterion given must match.

    ``device`` matches the run's ``params.device``; ``host`` matches a
    prefix of the entry's :func:`host_key`.
    """
    selected = []
    for entry in entries:
        if command is not None and entry.get("command") != command:
            continue
        if status is not None and entry.get("status") != status:
            continue
        if kind is not None and entry.get("kind") != kind:
            continue
        if device is not None and entry.get("params", {}).get("device") != device:
            continue
        if host is not None and not host_key(entry.get("host")).startswith(host):
            continue
        selected.append(entry)
    return selected


def find_entry(entries: list[dict[str, Any]], digest: str) -> dict[str, Any] | None:
    """The newest entry whose manifest digest starts with ``digest``."""
    for entry in reversed(entries):
        manifest = entry.get("manifest_digest")
        if isinstance(manifest, str) and manifest.startswith(digest):
            return entry
    return None


def artifacts_live(entry: dict[str, Any]) -> bool:
    """Whether every artifact path the entry recorded still holds a file.

    Entries with no artifacts are vacuously live: they index
    computations whose result is the envelope itself.
    """
    artifacts = entry.get("artifacts") or {}
    return all(
        Path(info.get("path", "")).is_file() for info in artifacts.values()
    )


def lookup_config(
    entries: list[dict[str, Any]], digest: str
) -> dict[str, Any] | None:
    """Config digest -> the most recent successful matching entry.

    This is the content-addressed cache primitive ``iotls serve``
    consumes: a hit names the manifest digest (the complete output) and
    the artifact paths that still hold those bytes.  Entries whose
    recorded artifacts have since vanished (pre-gc deletions,
    hand-pruned files) are skipped -- a cache hit must be servable from
    disk, so the scan continues to the next older live match.
    """
    for entry in reversed(entries):
        config = entry.get("config_digest")
        if (
            isinstance(config, str)
            and config.startswith(digest)
            and entry.get("status") == "ok"
            and entry.get("manifest_digest")
            and artifacts_live(entry)
        ):
            return entry
    return None


def diff_entries(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Compare two entries: manifest identity plus deterministic deltas.

    ``drift`` is True when both runs produced manifests and the digests
    differ -- the same config producing different output is exactly the
    regression ``runs diff`` exists to catch.  The metric and param
    deltas localise *what* moved.
    """
    digest_a, digest_b = a.get("manifest_digest"), b.get("manifest_digest")
    manifest_match = digest_a is not None and digest_a == digest_b
    metrics_a, metrics_b = a.get("metrics_totals", {}), b.get("metrics_totals", {})
    metrics_delta = {
        name: {"a": metrics_a.get(name), "b": metrics_b.get(name)}
        for name in sorted(set(metrics_a) | set(metrics_b))
        if metrics_a.get(name) != metrics_b.get(name)
    }
    params_a, params_b = a.get("params", {}), b.get("params", {})
    params_delta = {
        key: {"a": params_a.get(key), "b": params_b.get(key)}
        for key in sorted(set(params_a) | set(params_b))
        if params_a.get(key) != params_b.get(key)
    }
    return {
        "a": {"manifest_digest": digest_a, "config_digest": a.get("config_digest")},
        "b": {"manifest_digest": digest_b, "config_digest": b.get("config_digest")},
        "manifest_match": manifest_match,
        "config_match": a.get("config_digest") == b.get("config_digest"),
        "metrics_delta": metrics_delta,
        "params_delta": params_delta,
        "drift": not manifest_match,
        "seconds": {"a": a.get("seconds"), "b": b.get("seconds")},
    }


def gc_entries(
    entries: list[dict[str, Any]],
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """Split entries into (kept, pruned): pruned entries recorded at
    least one artifact whose path no longer holds a file.  Entries with
    no artifacts are always kept -- they index computations, and a
    computation with no surviving bytes is still history."""
    kept: list[dict[str, Any]] = []
    pruned: list[dict[str, Any]] = []
    for entry in entries:
        if (entry.get("artifacts") or {}) and not artifacts_live(entry):
            pruned.append(entry)
        else:
            kept.append(entry)
    return kept, pruned


def ledger_trend(
    entries: list[dict[str, Any]],
    *,
    slos: list[Any] | None = None,
    series_limit: int = 20,
) -> dict[str, Any]:
    """Cross-run trajectories per host fingerprint (``runs trend``).

    Reuses :func:`repro.telemetry.slo.trend_report` (so the document is
    a superset of ``iotls-bench-trend/1``) and, per host fingerprint,
    adds the records/s and peak-RSS series the fleet-scale directions
    care about.  ``slos`` additionally evaluates the policy against the
    bench entries, folding the verdicts into the report.
    """
    bench = [
        entry
        for entry in entries
        if "benchmark" in entry and isinstance(entry.get("seconds"), (int, float))
    ]
    report = trend_report(bench)
    hosts: dict[str, dict[str, Any]] = {}
    for entry in bench:
        hosts.setdefault(host_key(entry.get("host")), {"entries": []})[
            "entries"
        ].append(entry)
    report["hosts"] = {}
    for key, group in sorted(hosts.items()):
        group_entries = group["entries"]
        host_report = trend_report(group_entries)
        series: dict[str, list[dict[str, Any]]] = {}
        for entry in group_entries[-series_limit:]:
            point = {
                "date": entry.get("date"),
                "git_rev": entry.get("git_rev", "unknown"),
                "seconds": entry.get("seconds"),
            }
            for metric in ("records_per_second", "peak_rss_kib"):
                if isinstance(entry.get(metric), (int, float)):
                    point[metric] = entry[metric]
            series.setdefault(entry["benchmark"], []).append(point)
        report["hosts"][key] = {
            "host": group_entries[-1].get("host"),
            "entries": len(group_entries),
            "benchmarks": host_report["benchmarks"],
            "series": dict(sorted(series.items())),
        }
    if slos:
        report["slo_verdicts"] = evaluate_slos(bench, slos)
    return report


# ----------------------------------------------------------------------
# History migration (tools/bench_history.py --migrate)
# ----------------------------------------------------------------------
def from_history_row(row: dict[str, Any]) -> dict[str, Any]:
    """Rewrite one ``BENCH_history.jsonl`` row into ledger schema.

    Rows already in ledger schema pass through unchanged.  Rows written
    before the host fingerprint landed (no ``host`` dict) are tagged
    ``legacy: true`` so the bench gate's ``None == None`` shape
    fallback stops matching them against modern runs.
    """
    entry = dict(row)
    if entry.get("schema") == LEDGER_SCHEMA:
        return entry
    entry["schema"] = LEDGER_SCHEMA
    entry.setdefault("kind", "bench")
    entry.setdefault("status", "ok")
    entry.setdefault("command", "bench")
    if not isinstance(row.get("host"), dict):
        entry["legacy"] = True
    return entry


# ----------------------------------------------------------------------
# Rendering (the `iotls runs` human surface)
# ----------------------------------------------------------------------
def entry_title(entry: dict[str, Any]) -> str:
    """The name an entry is shown under: benchmark or command."""
    if entry.get("kind") == "bench":
        return str(entry.get("benchmark", entry.get("command", "?")))
    return str(entry.get("command", "?"))


def render_entry(entry: dict[str, Any]) -> str:
    """The multi-line ``runs show`` view of one entry."""
    lines = [
        f"{entry_title(entry)} [{entry.get('kind', 'run')}] -- "
        f"{entry.get('status', '?')} on {entry.get('date', '?')}",
        f"  config digest:   {entry.get('config_digest')}",
        f"  manifest digest: {entry.get('manifest_digest')}",
        f"  host:            {host_key(entry.get('host'))} {entry.get('host')}",
    ]
    if entry.get("workers") is not None:
        lines.append(f"  workers:         {entry['workers']}")
    if entry.get("seconds") is not None:
        lines.append(f"  wall seconds:    {entry['seconds']}")
    for name, value in sorted((entry.get("phases") or {}).items()):
        lines.append(f"    phase {name}: {value}s")
    for worker, value in sorted((entry.get("shards") or {}).items()):
        lines.append(f"    shard {worker}: {value}s")
    if entry.get("params"):
        lines.append(f"  params:          {json.dumps(entry['params'], sort_keys=True)}")
    resources = entry.get("resources")
    if resources:
        lines.append(
            "  resources:       "
            + ", ".join(f"{key}={value}" for key, value in sorted(resources.items()))
        )
    if entry.get("heartbeats") is not None:
        lines.append(f"  heartbeats:      {entry['heartbeats']}")
    for role, info in sorted((entry.get("artifacts") or {}).items()):
        lines.append(
            f"  artifact {role}: {info.get('path')} "
            f"({info.get('bytes')} B, blake2s {info.get('blake2s')})"
        )
    if entry.get("drift") is not None:
        lines.append(f"  drift:           {json.dumps(entry['drift'], sort_keys=True)}")
    for verdict in entry.get("slo_verdicts") or []:
        lines.append(
            f"  slo {verdict.get('slo')}: {verdict.get('status')}"
            f" ({verdict.get('metric')}={verdict.get('value')})"
        )
    error = entry.get("error")
    if error:
        lines.append(f"  error:           {error.get('type')}: {error.get('message')}")
    return "\n".join(lines)


def render_entries(entries: list[dict[str, Any]]) -> str:
    """The one-line-per-entry ``runs list`` table (newest last)."""
    if not entries:
        return "(ledger is empty)"
    lines = []
    for entry in entries:
        digest = entry.get("manifest_digest") or "-"
        config = entry.get("config_digest") or "-"
        seconds = entry.get("seconds")
        shown = f"{seconds:>8.2f}s" if isinstance(seconds, (int, float)) else "       -"
        lines.append(
            f"{entry.get('date', '?'):<10}  {entry.get('status', '?'):<5}  "
            f"{entry_title(entry):<28}  {shown}  "
            f"cfg {str(config)[:12]:<12}  man {str(digest)[:12]}"
        )
    return "\n".join(lines)


def render_diff(diff: dict[str, Any]) -> str:
    """The human ``runs diff`` report."""
    lines = [
        f"a: manifest {diff['a']['manifest_digest']} config {diff['a']['config_digest']}",
        f"b: manifest {diff['b']['manifest_digest']} config {diff['b']['config_digest']}",
        f"config match:   {'yes' if diff['config_match'] else 'NO'}",
        f"manifest match: {'yes' if diff['manifest_match'] else 'NO (drift)'}",
    ]
    for key, delta in sorted(diff["params_delta"].items()):
        lines.append(f"  param {key}: {delta['a']!r} -> {delta['b']!r}")
    for name, delta in sorted(diff["metrics_delta"].items()):
        lines.append(f"  metric {name}: {delta['a']} -> {delta['b']}")
    if diff["manifest_match"]:
        lines.append("identical deterministic output: zero manifest delta")
    return "\n".join(lines)
