"""Live progress heartbeats: throttled run-health emission.

A long run (a paper-scale ``stream_into``, a fleet campaign) is a black
box without a liveness signal: the operator cannot tell a straggling
shard from a hung one.  This module is the **progress boundary** -- the
one place heartbeats may be emitted unthrottled (reprolint rule RL012
enforces that everywhere else goes through the rate-limited
:meth:`ProgressReporter.advance`):

* :class:`Throttle` -- a monotonic min-interval gate (first call passes,
  so short runs still produce at least one heartbeat),
* :class:`ProgressReporter` -- accumulates work done (plus per-stage
  tallies), and on each throttled emission computes instantaneous and
  EWMA rates, an ETA when a total is known, and an optional resource
  reading; renders to a stderr line, a ``progress.heartbeat`` event,
  and/or a machine-readable stream,
* :class:`HeartbeatWriter` -- the ``--heartbeat-out`` JSONL stream
  (schema :data:`HEALTH_STREAM_SCHEMA`): a header line, throttled
  heartbeat lines, and one final summary line,
* :class:`AccessLog` -- the ``iotls serve`` access log (schema
  :data:`ACCESS_LOG_SCHEMA`): one thread-safe JSONL stream for the
  whole server, where request lifecycle events and per-request
  progress heartbeats from concurrently executing runs interleave
  without tearing.

Heartbeat data is wall-clock-derived and therefore lives entirely
outside run manifests: the reporter touches no counters (RL010) and the
event log and heartbeat stream are excluded from the deterministic
metrics slice by construction.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from time import perf_counter
from typing import IO, Any, Callable

from .events import EventLog

__all__ = [
    "ACCESS_LOG_SCHEMA",
    "AccessLog",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "HEALTH_STREAM_SCHEMA",
    "HeartbeatWriter",
    "ProgressReporter",
    "Throttle",
    "render_progress_line",
]

# Schema tags of the health stream (``--heartbeat-out``) and the fleet
# service's access log, registered centrally in repro.telemetry.schemas.
from .schemas import ACCESS_LOG_SCHEMA, HEALTH_STREAM_SCHEMA  # noqa: E402

#: Default seconds between heartbeat emissions.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Smoothing factor for the records/s EWMA (higher = more reactive).
_EWMA_ALPHA = 0.3


class Throttle:
    """A monotonic min-interval gate: ``ready()`` is True at most once
    per ``min_interval`` seconds.  The first call always passes, so even
    a sub-interval run emits one heartbeat."""

    def __init__(
        self, min_interval: float, *, clock: Callable[[], float] = perf_counter
    ) -> None:
        if min_interval < 0:
            raise ValueError(f"min_interval must be >= 0, got {min_interval}")
        self.min_interval = min_interval
        self._clock = clock
        self._last: float | None = None

    def ready(self) -> bool:
        """True (and re-arm the interval) when enough time has passed."""
        now = self._clock()
        if self._last is not None and (now - self._last) < self.min_interval:
            return False
        self._last = now
        return True

    def reset(self) -> None:
        self._last = None


class HeartbeatWriter:
    """The ``iotls-health-stream/1`` JSONL writer.

    Line 1 is a header (``kind: header`` with the schema tag and run
    metadata); each heartbeat is one ``kind: heartbeat`` line with a
    monotonic ``seq``; :meth:`close` appends a single ``kind: summary``
    line.  Every line is self-contained JSON, so a tail-following
    consumer (the future ``iotls serve`` status endpoint) can pick up
    mid-stream.
    """

    def __init__(
        self, path: str | Path, *, metadata: dict[str, Any] | None = None
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._seq = 0
        header: dict[str, Any] = {"kind": "header", "schema": HEALTH_STREAM_SCHEMA}
        if metadata:
            header["metadata"] = dict(metadata)
        self._write(header)

    def _write(self, entry: dict[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        self._handle.flush()

    def heartbeat(self, fields: dict[str, Any]) -> None:
        self._seq += 1
        self._write({"kind": "heartbeat", "seq": self._seq, **fields})

    def close(self, summary: dict[str, Any] | None = None) -> None:
        """Write the final summary line (if given) and close the stream.
        Idempotent: a second close is a no-op."""
        if self._handle is None:
            return
        if summary is not None:
            self._write({"kind": "summary", **summary})
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "HeartbeatWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AccessLog:
    """The fleet service's JSONL access log (``iotls-serve-access/1``).

    One instance serves the whole server: the asyncio request handlers
    and the run-executor threads all call :meth:`record` concurrently,
    and a lock serialises each line's format-and-write so the stream
    never tears.  The shape mirrors :class:`HeartbeatWriter` -- a
    ``kind: header`` line, ``kind: event`` lines with a monotonic
    ``seq`` and the seconds since server start, and one ``kind:
    summary`` line (per-event totals) on :meth:`close` -- so the same
    tail-following tooling consumes both streams.

    ``path=None`` keeps the counters (the ``/status`` endpoint reads
    them) without writing anything.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        metadata: dict[str, Any] | None = None,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self._handle: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        #: Per-event-name totals (read by the ``/status`` endpoint).
        self.counts: dict[str, int] = {}
        header: dict[str, Any] = {"kind": "header", "schema": ACCESS_LOG_SCHEMA}
        if metadata:
            header["metadata"] = dict(metadata)
        self._write(header)

    def _write(self, entry: dict[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        self._handle.flush()

    def record(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one ``kind: event`` line; safe from any thread."""
        with self._lock:
            if self._closed:
                return {}
            self._seq += 1
            entry: dict[str, Any] = {
                "kind": "event",
                "seq": self._seq,
                "event": event,
                "elapsed_seconds": round(self._clock() - self._started, 6),
                **fields,
            }
            self.counts[event] = self.counts.get(event, 0) + 1
            self._write(entry)
            return entry

    def close(self, **summary_fields: Any) -> None:
        """Append the ``kind: summary`` line (per-event totals plus any
        extra fields) and close the stream.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._write(
                {
                    "kind": "summary",
                    "events": self._seq,
                    "counts": dict(sorted(self.counts.items())),
                    "seconds": round(self._clock() - self._started, 6),
                    **summary_fields,
                }
            )
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def render_progress_line(entry: dict[str, Any]) -> str:
    """One human-readable heartbeat line (the ``--progress`` stderr shape)."""
    done = entry["done"]
    total = entry.get("total")
    head = f"{done:,}/{total:,}" if total is not None else f"{done:,}"
    parts = [
        f"progress[{entry['label']}]: {head} done",
        f"{entry['rate']:,.0f}/s (ewma {entry['ewma_rate']:,.0f}/s)",
    ]
    eta = entry.get("eta_seconds")
    if eta is not None:
        parts.append(f"eta {eta:.0f}s")
    stages = entry.get("stages") or {}
    if stages:
        parts.append(
            " ".join(f"{stage}={count}" for stage, count in sorted(stages.items()))
        )
    return " -- ".join(parts)


class ProgressReporter:
    """Accumulates run progress and emits throttled heartbeats.

    Hot paths call :meth:`advance` (cheap: two dict updates plus one
    clock read in the throttle); everything rate-sensitive happens only
    when the throttle opens.  ``done`` counts the run's primary unit
    (flow records for traces, devices for campaigns); ``stages`` holds
    independent per-stage tallies.

    Emission targets are all optional: ``stream`` (a callable receiving
    rendered lines -- the ``--progress`` stderr hook), ``heartbeat`` (a
    :class:`HeartbeatWriter`), and ``events`` (the run's
    :class:`~repro.telemetry.events.EventLog`, as ``progress.heartbeat``
    debug events).  ``sampler`` (a
    :class:`~repro.telemetry.health.ResourceSampler`) contributes a
    resource reading per heartbeat and the ``resources`` section of the
    final summary.
    """

    def __init__(
        self,
        *,
        label: str = "run",
        total: int | None = None,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        throttle: Throttle | None = None,
        stream: Callable[[str], None] | None = None,
        heartbeat: HeartbeatWriter | None = None,
        events: EventLog | None = None,
        sampler: Any | None = None,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.label = label
        self.total = total
        self.throttle = throttle if throttle is not None else Throttle(interval, clock=clock)
        self.stream = stream
        self.heartbeat = heartbeat
        self.events = events
        self.sampler = sampler
        self._clock = clock
        self.done = 0
        self.stages: dict[str, int] = {}
        self.heartbeats = 0
        self.ewma_rate = 0.0
        #: The final summary document; set once by :meth:`finish`.
        self.summary: dict[str, Any] | None = None
        self._started = clock()
        self._last_time = self._started
        self._last_done = 0

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def advance(self, n: int = 1, *, stage: str | None = None, stage_n: int = 1) -> None:
        """Record ``n`` units of work (and bump ``stage``'s tally by
        ``stage_n``); emit a heartbeat only if the throttle allows."""
        self.done += n
        if stage is not None:
            self.stages[stage] = self.stages.get(stage, 0) + stage_n
        if self.throttle.ready():
            self.emit_now()

    # ------------------------------------------------------------------
    # Emission (the RL012 boundary: only this module calls emit_now)
    # ------------------------------------------------------------------
    def snapshot(self, *, reason: str = "interval") -> dict[str, Any]:
        """The current progress reading (advances the rate window)."""
        now = self._clock()
        elapsed = now - self._started
        window = now - self._last_time
        window_done = self.done - self._last_done
        instant = window_done / window if window > 0 else 0.0
        if self.heartbeats == 0:
            self.ewma_rate = instant
        else:
            self.ewma_rate = _EWMA_ALPHA * instant + (1 - _EWMA_ALPHA) * self.ewma_rate
        self._last_time, self._last_done = now, self.done
        entry: dict[str, Any] = {
            "label": self.label,
            "reason": reason,
            "done": self.done,
            "elapsed_seconds": round(elapsed, 6),
            "rate": round(instant, 1),
            "ewma_rate": round(self.ewma_rate, 1),
            "stages": dict(sorted(self.stages.items())),
        }
        if self.total is not None:
            entry["total"] = self.total
            if self.ewma_rate > 0:
                remaining = max(0, self.total - self.done)
                entry["eta_seconds"] = round(remaining / self.ewma_rate, 1)
        if self.sampler is not None:
            entry["resources"] = self.sampler.sample("heartbeat").to_dict()
        return entry

    def emit_now(self, *, reason: str = "interval") -> dict[str, Any]:
        """Emit one heartbeat unconditionally (throttle already decided)."""
        entry = self.snapshot(reason=reason)
        self.heartbeats += 1
        if self.stream is not None:
            self.stream(render_progress_line(entry))
        if self.heartbeat is not None:
            self.heartbeat.heartbeat(entry)
        if self.events is not None:
            self.events.debug(
                "progress.heartbeat",
                label=entry["label"],
                done=entry["done"],
                rate=entry["rate"],
                ewma_rate=entry["ewma_rate"],
                stages=entry["stages"],
            )
        return entry

    def finish(self) -> dict[str, Any]:
        """Emit the final heartbeat, stop the sampler, close the stream.

        Returns (and stores as :attr:`summary`) the run-health summary:
        totals, overall rate, per-stage tallies, and -- when a sampler
        was attached -- its ``resources`` section.  Safe to call on
        error paths; a second call returns the stored summary.
        """
        if self.summary is not None:
            return self.summary
        entry = self.emit_now(reason="final")
        elapsed = entry["elapsed_seconds"]
        summary: dict[str, Any] = {
            "label": self.label,
            "done": self.done,
            "seconds": elapsed,
            "rate": round(self.done / elapsed, 1) if elapsed > 0 else 0.0,
            "heartbeats": self.heartbeats,
            "stages": dict(sorted(self.stages.items())),
        }
        if self.sampler is not None:
            self.sampler.stop()
            summary["resources"] = self.sampler.summary()
        if self.events is not None:
            self.events.info(
                "progress.complete",
                label=self.label,
                done=self.done,
                seconds=elapsed,
                heartbeats=self.heartbeats,
            )
        if self.heartbeat is not None:
            self.heartbeat.close(summary)
        self.summary = summary
        return summary
