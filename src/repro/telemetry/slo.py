"""Declarative SLOs over the benchmark trajectory.

The bench gate's single 1.25x slowdown threshold says nothing about
absolute health: a run can get 20% slower every PR and still pass each
gate, or stream at 500 records/s on a branch where the paper-scale
target needs 20k.  This module evaluates **declarative service-level
objectives** from a committed policy file (``tools/slo.json``, schema
:data:`SLO_SCHEMA`) against the newest matching entry per benchmark in
``BENCH_history.jsonl``:

* each SLO names a benchmark, a metric (any numeric field of the
  history entry, e.g. ``records_per_second``, ``peak_mib``,
  ``worker_skew``), a comparison op, a threshold, and a ``level`` --
  ``advisory`` (report only) or ``blocking`` (gate-failing),
* :func:`evaluate_slos` yields one verdict per SLO (``pass``, ``fail``,
  or ``skip`` when the trajectory has no matching data -- missing data
  must surface, never silently pass),
* :func:`trend_report` summarises each benchmark's trajectory (first /
  best / latest seconds plus tracked resource metrics) for
  ``iotls bench-report``.

Policy loading is strict: an unknown op, level, or schema tag raises
:class:`SloPolicyError` so a typo'd policy fails the gate loudly
instead of evaluating nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "SLO_SCHEMA",
    "TREND_SCHEMA",
    "Slo",
    "SloPolicyError",
    "evaluate_slos",
    "load_slo_policy",
    "render_trend_report",
    "render_verdicts",
    "trend_report",
]

# Schema tags of the policy file and the trend report document,
# registered centrally in repro.telemetry.schemas.
from .schemas import SLO_SCHEMA, TREND_SCHEMA  # noqa: E402

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}

_LEVELS = ("advisory", "blocking")


class SloPolicyError(ValueError):
    """The SLO policy file is malformed (bad schema/op/level/threshold)."""


@dataclass(frozen=True)
class Slo:
    """One objective: ``metric op threshold`` for a benchmark's latest run."""

    name: str
    benchmark: str
    metric: str
    op: str
    threshold: float
    level: str = "advisory"
    description: str = ""

    def check(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


def load_slo_policy(path: str | Path) -> list[Slo]:
    """Parse and validate ``tools/slo.json``; raise :class:`SloPolicyError`
    on any malformed field."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SloPolicyError(f"cannot read SLO policy {path}: {exc}") from exc
    if document.get("schema") != SLO_SCHEMA:
        raise SloPolicyError(
            f"{path}: schema must be {SLO_SCHEMA!r}, got {document.get('schema')!r}"
        )
    raw_slos = document.get("slos")
    if not isinstance(raw_slos, list) or not raw_slos:
        raise SloPolicyError(f"{path}: 'slos' must be a non-empty list")
    slos = []
    for index, raw in enumerate(raw_slos):
        where = f"{path}: slos[{index}]"
        for key in ("name", "benchmark", "metric", "op", "threshold"):
            if key not in raw:
                raise SloPolicyError(f"{where} missing required key {key!r}")
        if raw["op"] not in _OPS:
            raise SloPolicyError(
                f"{where}: op must be one of {sorted(_OPS)}, got {raw['op']!r}"
            )
        level = raw.get("level", "advisory")
        if level not in _LEVELS:
            raise SloPolicyError(
                f"{where}: level must be one of {_LEVELS}, got {level!r}"
            )
        if not isinstance(raw["threshold"], (int, float)):
            raise SloPolicyError(f"{where}: threshold must be numeric")
        slos.append(
            Slo(
                name=str(raw["name"]),
                benchmark=str(raw["benchmark"]),
                metric=str(raw["metric"]),
                op=raw["op"],
                threshold=float(raw["threshold"]),
                level=level,
                description=str(raw.get("description", "")),
            )
        )
    return slos


def _latest_with_metric(
    entries: list[dict[str, Any]], benchmark: str, metric: str
) -> dict[str, Any] | None:
    for entry in reversed(entries):
        if entry.get("benchmark") == benchmark and isinstance(
            entry.get(metric), (int, float)
        ):
            return entry
    return None


def evaluate_slos(
    entries: list[dict[str, Any]], slos: list[Slo]
) -> list[dict[str, Any]]:
    """One verdict per SLO against the newest matching history entry.

    Verdict ``status`` is ``pass``/``fail``/``skip`` (no matching entry
    carries the metric).  ``blocking`` is pre-computed so callers can
    gate on ``status == "fail" and blocking`` without re-reading levels.
    """
    verdicts = []
    for slo in slos:
        entry = _latest_with_metric(entries, slo.benchmark, slo.metric)
        verdict: dict[str, Any] = {
            "slo": slo.name,
            "benchmark": slo.benchmark,
            "metric": slo.metric,
            "op": slo.op,
            "threshold": slo.threshold,
            "level": slo.level,
            "blocking": slo.level == "blocking",
        }
        if entry is None:
            verdict.update(status="skip", value=None, detail="no trajectory data")
        else:
            value = entry[slo.metric]
            verdict.update(
                status="pass" if slo.check(value) else "fail",
                value=value,
                git_rev=entry.get("git_rev", "unknown"),
                date=entry.get("date", "unknown"),
            )
        verdicts.append(verdict)
    return verdicts


def render_verdicts(verdicts: list[dict[str, Any]]) -> str:
    """Human-readable SLO table (one line per verdict)."""
    lines = []
    for verdict in verdicts:
        marker = {"pass": "ok", "fail": "FAIL", "skip": "skip"}[verdict["status"]]
        value = verdict["value"]
        shown = f"{value:,g}" if isinstance(value, (int, float)) else "-"
        lines.append(
            f"[{marker}] {verdict['slo']} ({verdict['level']}): "
            f"{verdict['benchmark']}.{verdict['metric']} = {shown} "
            f"(want {verdict['op']} {verdict['threshold']:,g})"
        )
    return "\n".join(lines)


#: Resource metrics the trend report tracks per benchmark when present.
_TREND_METRICS = ("records_per_second", "peak_mib", "peak_rss_kib", "worker_skew")


def trend_report(entries: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-benchmark trajectory summary (schema :data:`TREND_SCHEMA`)."""
    by_benchmark: dict[str, list[dict[str, Any]]] = {}
    for entry in entries:
        if "benchmark" in entry and isinstance(entry.get("seconds"), (int, float)):
            by_benchmark.setdefault(entry["benchmark"], []).append(entry)

    benchmarks = {}
    for benchmark, runs in sorted(by_benchmark.items()):
        latest, first = runs[-1], runs[0]
        best = min(runs, key=lambda run: run["seconds"])
        summary: dict[str, Any] = {
            "runs": len(runs),
            "first_seconds": first["seconds"],
            "best_seconds": best["seconds"],
            "best_rev": best.get("git_rev", "unknown"),
            "latest_seconds": latest["seconds"],
            "latest_rev": latest.get("git_rev", "unknown"),
            "latest_date": latest.get("date", "unknown"),
            "latest_over_best": (
                round(latest["seconds"] / best["seconds"], 4)
                if best["seconds"] > 0
                else 0.0
            ),
        }
        metrics = {
            metric: latest[metric]
            for metric in _TREND_METRICS
            if isinstance(latest.get(metric), (int, float))
        }
        if metrics:
            summary["latest_metrics"] = metrics
        benchmarks[benchmark] = summary
    return {
        "schema": TREND_SCHEMA,
        "entries": len(entries),
        "benchmarks": benchmarks,
    }


def render_trend_report(report: dict[str, Any]) -> str:
    """Human-readable trend table for ``iotls bench-report``."""
    lines = [f"benchmark trajectory ({report['entries']} entries)"]
    for benchmark, summary in report["benchmarks"].items():
        lines.append(
            f"  {benchmark}: {summary['runs']} run(s), latest "
            f"{summary['latest_seconds']:.3f}s ({summary['latest_rev']}) = "
            f"{summary['latest_over_best']:.2f}x best "
            f"{summary['best_seconds']:.3f}s ({summary['best_rev']})"
        )
        for metric, value in summary.get("latest_metrics", {}).items():
            lines.append(f"      {metric}: {value:,g}")
    if not report["benchmarks"]:
        lines.append("  (no benchmark entries)")
    return "\n".join(lines)
