"""Run manifests: every run explains itself, byte-for-byte.

A *run manifest* is the provenance record of one ``iotls`` run: what
command ran, with which parameters, against which package version and
device catalog, producing which artifacts (identified by blake2s
digests), counting what (the deterministic slice of the run's metrics).
The manifest is itself canonically encoded, so its own digest
(:func:`manifest_digest`) names the run's complete observable output.

The load-bearing guarantee is **worker invariance**: manifests are
byte-identical across ``--workers 1/2/4`` for the same seed, extending
the parallel-determinism contract (:mod:`repro.parallel`) to the
observability layer.  Three exclusions make that possible, and each is
deliberate:

* **the worker count itself** -- the manifest certifies the run's
  *output*, and the output is worker-invariant; recording the schedule
  would break the byte-identity that makes manifests diffable
  (``determinism.workers_invariant`` records the guarantee instead),
* **wall-clock readings** -- gauges (phase/trace wall times) and
  histogram sums/buckets (handshake latencies) vary run to run, so
  :func:`deterministic_metrics` keeps only counter series and histogram
  *observation counts*, both of which the parallel layer guarantees
  equal to a serial run's,
* **artifact directories** -- artifacts are recorded by basename,
  byte count, and digest; where the bytes landed is not provenance.

``iotls trace/audit/report/pcap`` each build a manifest at the end of
the run, print its digest, and write the full document with
``--manifest PATH``.  See ``docs/observability.md`` ("Run manifests").
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from datetime import date
from pathlib import Path
from typing import Any

from .metrics import Histogram, MetricsRegistry
from .tracing import SPAN_DURATION_METRIC

__all__ = [
    "MANIFEST_SCHEMA",
    "artifact_digest",
    "build_manifest",
    "canonical_json",
    "config_digest",
    "deterministic_metrics",
    "host_date",
    "host_fingerprint",
    "manifest_digest",
    "write_manifest",
]

from .schemas import MANIFEST_SCHEMA  # registered in repro.telemetry.schemas

#: blake2s digest length (hex chars = 2x this) used for every manifest
#: digest -- the same primitive the pcap exporter uses for addressing.
_DIGEST_SIZE = 16


def _blake2s(data: bytes) -> str:
    return hashlib.blake2s(data, digest_size=_DIGEST_SIZE).hexdigest()


def host_date() -> str:
    """Today's calendar date on the host, ISO-formatted.

    The telemetry package is the repo's one sanctioned clock boundary
    (reprolint rule RL002): code that *deliberately* records wall-clock
    provenance -- the benchmark trajectory's per-entry date stamp --
    must read it through this helper rather than calling
    ``date.today()`` at the call site.  Nothing returned here may feed
    a run manifest; manifests stay wall-clock-free by design.
    """
    return date.today().isoformat()


def host_fingerprint() -> dict[str, Any]:
    """The host shape benchmark timings are only comparable within.

    Like :func:`host_date`, this is a deliberate host-provenance
    boundary: benchmark trajectory entries record it so the gate can
    *refuse* cross-host comparisons instead of silently comparing a
    laptop against a CI runner.  Nothing returned here may feed a run
    manifest; manifests stay host-independent by design.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.system().lower(),
        "machine": platform.machine(),
    }


def canonical_json(payload: Any) -> str:
    """The one true encoding digests are computed over: sorted keys,
    2-space indent, trailing newline -- the repo's ``write_json`` shape,
    so a manifest's bytes on disk are exactly what its digest covers."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def artifact_digest(path: str | Path) -> dict[str, Any]:
    """Identify one exported artifact: basename, size, blake2s.

    The directory is deliberately dropped -- *what* was produced is
    provenance, *where* it landed is not (and recording it would break
    manifest byte-identity across working directories).
    """
    path = Path(path)
    data = path.read_bytes()
    return {"name": path.name, "bytes": len(data), "blake2s": _blake2s(data)}


def config_digest(command: str, params: dict[str, Any], version: str) -> str:
    """Digest of the run's configuration: command, parameters, version."""
    payload = {"command": command, "params": params, "version": version}
    return _blake2s(canonical_json(payload).encode())


def deterministic_metrics(registry: MetricsRegistry) -> dict[str, Any]:
    """The worker-invariant slice of a metrics registry.

    Includes counter series (event counts -- the parallel layer
    guarantees merged totals equal a serial run's) and histogram
    *observation counts* per series.  Excludes gauges (wall-clock
    readings), histogram sums and bucket placements (latency-dependent),
    and the span-duration histogram entirely (serial and parallel runs
    legitimately produce different span populations -- e.g. the serial
    campaign's phase-major spans have no parallel counterpart).
    """
    counters: dict[str, Any] = {}
    histogram_counts: dict[str, Any] = {}
    for metric in registry.metrics():
        if metric.name == SPAN_DURATION_METRIC:
            continue
        if metric.kind == "counter":
            counters[metric.name] = {
                "total": metric.total(),
                "series": [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(metric.series().items())
                ],
            }
        elif isinstance(metric, Histogram):
            histogram_counts[metric.name] = {
                "series": [
                    {"labels": dict(key), "count": state.count}
                    for key, state in sorted(metric.series().items())
                ],
            }
    return {"counters": counters, "histogram_counts": histogram_counts}


def build_manifest(
    command: str,
    *,
    params: dict[str, Any],
    artifacts: dict[str, str | Path] | None = None,
    registry: MetricsRegistry | None = None,
    catalog: list[str] | None = None,
) -> dict[str, Any]:
    """Assemble the run manifest document.

    ``artifacts`` maps a role (``records_json``, ``pcap``, ...) to the
    path of a file this run wrote; each is digested in place.
    ``catalog`` is the device-name roster the run operated over (its
    digest ties the manifest to the testbed composition).  ``registry``
    contributes the deterministic metrics slice when telemetry ran.
    """
    from .. import __version__

    if catalog is None:
        from ..devices.catalog import build_catalog

        catalog = [profile.name for profile in build_catalog()]
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "package": {"name": "iotls-repro", "version": __version__},
        "config": {
            "params": dict(params),
            "digest": config_digest(command, dict(params), __version__),
        },
        "catalog": {
            "devices": len(catalog),
            "digest": _blake2s("\n".join(catalog).encode()),
        },
        "determinism": {
            "workers_invariant": True,
            "excluded": [
                "worker count",
                "wall-clock timings (gauges, histogram sums/buckets, spans)",
                "artifact directories",
            ],
        },
        "metrics": (
            deterministic_metrics(registry)
            if registry is not None
            else {"counters": {}, "histogram_counts": {}}
        ),
        "artifacts": {
            role: artifact_digest(path) for role, path in (artifacts or {}).items()
        },
    }
    return manifest


def manifest_digest(manifest: dict[str, Any]) -> str:
    """The digest naming this run: blake2s over the canonical encoding."""
    return _blake2s(canonical_json(manifest).encode())


def write_manifest(manifest: dict[str, Any], path: str | Path) -> Path:
    """Write the manifest in canonical form (the digested bytes exactly)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(manifest))
    return path
