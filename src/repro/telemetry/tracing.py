"""Lightweight span tracing with monotonic timing and nesting.

``with tracer.span("handshake", device=..., host=...)`` opens a span:
a named, attributed interval timed with :func:`time.perf_counter`.
Spans nest -- the tracer keeps a stack, so a span opened while another
is active becomes its child -- and finished spans land in a bounded
deque (oldest evicted first) for inspection and export.

When the tracer holds a :class:`~repro.telemetry.metrics.MetricsRegistry`,
every finished span also feeds the ``iotls_span_duration_seconds``
histogram (labelled by span name), tying the trace and metric views of
the same run together.

Disabled tracers yield the shared :data:`NULL_SPAN`, whose methods are
no-ops, so instrumented code never branches on tracer state itself.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from hashlib import blake2s
from time import perf_counter
from typing import Iterator

from .metrics import MetricsRegistry

__all__ = ["Span", "TraceContext", "Tracer", "NULL_SPAN"]

#: Metric fed by finished spans when the tracer has a registry.
SPAN_DURATION_METRIC = "iotls_span_duration_seconds"


class Span:
    """One named, timed interval with attributes and child spans."""

    __slots__ = ("name", "attributes", "parent", "children", "start", "end")

    def __init__(
        self, name: str, attributes: dict[str, object], parent: "Span | None"
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.parent = parent
        self.children: list[Span] = []
        self.start: float | None = None
        self.end: float | None = None

    def annotate(self, **attributes: object) -> None:
        """Attach attributes discovered mid-span."""
        self.attributes.update(attributes)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float | None:
        """Elapsed seconds (monotonic); ``None`` until the span closes."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "duration_seconds": self.duration,
            "depth": self.depth(),
            "children": [child.name for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        took = f"{self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {took}, attrs={self.attributes})"


class _NullSpan:
    """The span handed out when tracing is disabled; every method no-ops."""

    __slots__ = ()
    name = ""
    attributes: dict[str, object] = {}
    parent = None
    children: list[Span] = []
    finished = False
    duration = None

    def annotate(self, **attributes: object) -> None:
        return None

    def depth(self) -> int:
        return 0


NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class TraceContext:
    """The trace context a coordinator hands to each worker process.

    ``run_id`` identifies the dispatching run; ``parent_path`` is the
    coordinator's open span path (``;``-joined names, e.g.
    ``trace.generate;parallel.dispatch``) at dispatch time.  Workers
    embed the context in their exported profile payload, and
    :meth:`repro.telemetry.profiling.Profiler.merge_payload` re-parents
    worker span paths under ``parent_path`` on merge -- stitching shard
    timelines into the coordinator's end-to-end trace.

    ``run_id`` is a content digest of the run parameters (uuid/wall
    clocks are banned outside the telemetry boundary, and a seed-derived
    id keeps identical runs identically labelled).
    """

    run_id: str
    parent_path: str = ""

    @classmethod
    def derive(cls, *parts: object, parent_path: str = "") -> "TraceContext":
        """A deterministic context from run-identifying parts."""
        digest = blake2s(
            "\x1f".join(str(part) for part in parts).encode("utf-8"),
            digest_size=8,
        ).hexdigest()
        return cls(run_id=digest, parent_path=parent_path)

    def to_dict(self) -> dict[str, str]:
        return {"run_id": self.run_id, "parent_path": self.parent_path}


class Tracer:
    """A stack-based span tracer with a bounded finished-span buffer."""

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        enabled: bool = True,
        keep: int = 2048,
    ) -> None:
        self.enabled = enabled
        self._registry = registry
        self._stack: list[Span] = []
        #: Completed spans in completion order (children before parents).
        self.finished: deque[Span] = deque(maxlen=keep)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span | _NullSpan]:
        if not self.enabled:
            yield NULL_SPAN
            return
        parent = self._stack[-1] if self._stack else None
        span = Span(name, dict(attributes), parent)
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        span.start = perf_counter()
        try:
            yield span
        finally:
            span.end = perf_counter()
            # Guard against a mis-nested exit tearing down the wrong frame.
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            self.finished.append(span)
            if self._registry is not None and self._registry.enabled:
                self._registry.histogram(
                    SPAN_DURATION_METRIC, "Duration of traced spans by name."
                ).observe(span.duration, span=span.name)

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def current_path(self) -> str:
        """The open span stack as a ``;``-joined path (profiler keying)."""
        return ";".join(span.name for span in self._stack)

    def propagation_context(self, *seed_parts: object) -> TraceContext | None:
        """The :class:`TraceContext` to hand to worker processes, rooted
        at the currently open span path; ``None`` when tracing is off."""
        if not self.enabled:
            return None
        return TraceContext.derive(*seed_parts, parent_path=self.current_path())

    def roots(self) -> list[Span]:
        """Finished top-level spans (no parent), oldest first."""
        return [span for span in self.finished if span.parent is None]

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.finished if span.name == name]

    def reset(self) -> None:
        self._stack.clear()
        self.finished.clear()
