"""Observability for the IoTLS reproduction: metrics, traces, events.

The paper's pipeline is a *measurement system* -- ≈17M passive
connections over 27 months plus the active probing campaigns -- and
real TLS measurement tooling treats per-handshake telemetry as a
first-class artifact.  This package instruments the reproduction the
same way, with zero external dependencies:

* :class:`MetricsRegistry` -- named counters, gauges, and fixed-bucket
  histograms (:mod:`repro.telemetry.metrics`),
* :class:`Tracer` -- nested spans with monotonic timing
  (:mod:`repro.telemetry.tracing`),
* :class:`EventLog` -- structured JSONL events with a ring-buffer tail
  (:mod:`repro.telemetry.events`),
* exporters -- Prometheus text format, JSON snapshots, and a human
  summary table (:mod:`repro.telemetry.export`),
* a process-wide opt-in runtime (:mod:`repro.telemetry.runtime`);
  disabled by default and no-op cheap when off.

See ``docs/observability.md`` for the metric catalog and span taxonomy.
"""

from .events import LEVELS, EventLog
from .export import (
    SNAPSHOT_SCHEMA,
    metrics_snapshot,
    summary_table,
    to_prometheus,
    write_snapshot,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import PathStat, Profiler, render_hot_table
from .provenance import (
    MANIFEST_SCHEMA,
    artifact_digest,
    build_manifest,
    deterministic_metrics,
    host_date,
    manifest_digest,
    write_manifest,
)
from .runtime import (
    TelemetryRuntime,
    configure,
    disable,
    enable,
    enabled,
    get,
    get_events,
    get_registry,
    get_tracer,
    reset,
)
from .tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "LEVELS",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_SPAN",
    "PathStat",
    "Profiler",
    "SNAPSHOT_SCHEMA",
    "Span",
    "TelemetryRuntime",
    "Tracer",
    "artifact_digest",
    "build_manifest",
    "host_date",
    "configure",
    "deterministic_metrics",
    "manifest_digest",
    "render_hot_table",
    "write_manifest",
    "disable",
    "enable",
    "enabled",
    "get",
    "get_events",
    "get_registry",
    "get_tracer",
    "metrics_snapshot",
    "reset",
    "summary_table",
    "to_prometheus",
    "write_snapshot",
]
