"""Observability for the IoTLS reproduction: metrics, traces, events.

The paper's pipeline is a *measurement system* -- ≈17M passive
connections over 27 months plus the active probing campaigns -- and
real TLS measurement tooling treats per-handshake telemetry as a
first-class artifact.  This package instruments the reproduction the
same way, with zero external dependencies:

* :class:`MetricsRegistry` -- named counters, gauges, and fixed-bucket
  histograms (:mod:`repro.telemetry.metrics`),
* :class:`Tracer` -- nested spans with monotonic timing and a
  propagated :class:`TraceContext` for cross-process stitching
  (:mod:`repro.telemetry.tracing`),
* :class:`EventLog` -- structured JSONL events with a ring-buffer tail
  (:mod:`repro.telemetry.events`),
* run health -- :class:`ResourceSampler` resource snapshots
  (:mod:`repro.telemetry.health`) and :class:`ProgressReporter`
  throttled heartbeats (:mod:`repro.telemetry.progress`),
* declarative benchmark SLOs over the trajectory
  (:mod:`repro.telemetry.slo`),
* exporters -- Prometheus text format, JSON snapshots, and a human
  summary table (:mod:`repro.telemetry.export`),
* a process-wide opt-in runtime (:mod:`repro.telemetry.runtime`);
  disabled by default and no-op cheap when off.

See ``docs/observability.md`` for the metric catalog and span taxonomy.
"""

from .events import LEVELS, EventLog
from .export import (
    SNAPSHOT_SCHEMA,
    metrics_snapshot,
    summary_table,
    to_prometheus,
    write_snapshot,
)
from .ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    append_entry,
    artifacts_live,
    build_entry,
    diff_entries,
    filter_entries,
    find_entry,
    from_history_row,
    gc_entries,
    host_key,
    ledger_trend,
    load_ledger,
    lookup_config,
    render_diff,
    render_entries,
    render_entry,
    rewrite_ledger,
)
from .health import (
    RESOURCE_SUMMARY_SCHEMA,
    ResourceSampler,
    ResourceSnapshot,
    tracemalloc_holds,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import PathStat, Profiler, render_hot_table
from .progress import (
    ACCESS_LOG_SCHEMA,
    DEFAULT_HEARTBEAT_INTERVAL,
    HEALTH_STREAM_SCHEMA,
    AccessLog,
    HeartbeatWriter,
    ProgressReporter,
    Throttle,
    render_progress_line,
)
from .provenance import (
    MANIFEST_SCHEMA,
    artifact_digest,
    build_manifest,
    deterministic_metrics,
    host_date,
    host_fingerprint,
    manifest_digest,
    write_manifest,
)
from .schemas import (
    API_SURFACE_SCHEMA,
    DRIFT_REPORT_SCHEMA,
    EXPECTATIONS_SCHEMA,
    PROFILE_SCHEMA,
    STATUS_SCHEMA,
    STREAM_SCHEMA_PREFIX,
    TRACE_STREAM_SCHEMA,
    StreamSchema,
    all_schemas,
    get_schema,
    is_registered,
    schema_id,
)
from .runtime import (
    TelemetryRuntime,
    configure,
    disable,
    enable,
    enabled,
    get,
    get_events,
    get_registry,
    get_tracer,
    reset,
)
from .slo import (
    SLO_SCHEMA,
    TREND_SCHEMA,
    Slo,
    SloPolicyError,
    evaluate_slos,
    load_slo_policy,
    render_trend_report,
    render_verdicts,
    trend_report,
)
from .tracing import NULL_SPAN, Span, TraceContext, Tracer

__all__ = [
    "ACCESS_LOG_SCHEMA",
    "API_SURFACE_SCHEMA",
    "AccessLog",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_LEDGER_PATH",
    "DRIFT_REPORT_SCHEMA",
    "EXPECTATIONS_SCHEMA",
    "EventLog",
    "Gauge",
    "HEALTH_STREAM_SCHEMA",
    "HeartbeatWriter",
    "Histogram",
    "LEDGER_SCHEMA",
    "LEVELS",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROFILE_SCHEMA",
    "PathStat",
    "Profiler",
    "ProgressReporter",
    "RESOURCE_SUMMARY_SCHEMA",
    "ResourceSampler",
    "ResourceSnapshot",
    "SLO_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "STATUS_SCHEMA",
    "STREAM_SCHEMA_PREFIX",
    "Slo",
    "SloPolicyError",
    "Span",
    "StreamSchema",
    "TRACE_STREAM_SCHEMA",
    "TREND_SCHEMA",
    "TelemetryRuntime",
    "Throttle",
    "TraceContext",
    "Tracer",
    "all_schemas",
    "append_entry",
    "artifact_digest",
    "artifacts_live",
    "build_entry",
    "build_manifest",
    "diff_entries",
    "filter_entries",
    "find_entry",
    "from_history_row",
    "gc_entries",
    "get_schema",
    "host_date",
    "host_fingerprint",
    "host_key",
    "configure",
    "deterministic_metrics",
    "evaluate_slos",
    "is_registered",
    "ledger_trend",
    "load_ledger",
    "load_slo_policy",
    "lookup_config",
    "manifest_digest",
    "render_diff",
    "render_entries",
    "render_entry",
    "render_hot_table",
    "render_progress_line",
    "render_trend_report",
    "render_verdicts",
    "rewrite_ledger",
    "schema_id",
    "tracemalloc_holds",
    "trend_report",
    "write_manifest",
    "disable",
    "enable",
    "enabled",
    "get",
    "get_events",
    "get_registry",
    "get_tracer",
    "metrics_snapshot",
    "reset",
    "summary_table",
    "to_prometheus",
    "write_snapshot",
]
