"""Metric primitives: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns every metric by name.  Instruments are
get-or-create (``registry.counter("iotls_handshakes_total")`` returns
the same object on every call), carry free-form label sets per
observation, and degrade to no-ops when the owning registry is
disabled -- the single ``registry.enabled`` flag is the only check on
the write path, so disabled-mode overhead is one attribute lookup.

Everything here is dependency-free and wall-clock-free: the registry
stores pure numbers, and exporters (:mod:`repro.telemetry.export`)
decide how to render them.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Iterable, Iterator

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "Metric",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds (seconds): tuned for the
#: simulation's microsecond-to-second operation range.  A final +Inf
#: bucket is always implied.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

#: Prometheus-compatible identifier rules, enforced at registration so
#: every metric the registry holds renders as valid line protocol.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Canonical form of one observation's labels: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Metric:
    """Base class: a named instrument bound to its registry."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help_text
        self._registry = registry
        self._series: dict[LabelKey, object] = {}

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def label_sets(self) -> list[LabelKey]:
        return sorted(self._series)

    def clear(self) -> None:
        self._series.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, series={len(self._series)})"


class Counter(Metric):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> int | float:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> int | float:
        return sum(self._series.values())

    def series(self) -> dict[LabelKey, int | float]:
        return dict(self._series)


class Gauge(Metric):
    """A value that can go up and down (phase timings, throughput, ...)."""

    kind = "gauge"

    def set(self, value: int | float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._series[_label_key(labels)] = value

    def inc(self, amount: int | float = 1, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: int | float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> int | float:
        return self._series.get(_label_key(labels), 0)

    def series(self) -> dict[LabelKey, int | float]:
        return dict(self._series)


class HistogramSeries:
    """Per-label-set histogram state: bucket counts, sum, and count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        # One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0

    def cumulative(self) -> list[int]:
        """Bucket counts as Prometheus cumulative ``le`` counts."""
        out, running = [], 0
        for value in self.bucket_counts:
            running += value
            out.append(running)
        return out


class Histogram(Metric):
    """A fixed-bucket distribution (no dynamic resizing, no quantiles)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        registry: "MetricsRegistry",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, registry)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: int | float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = HistogramSeries(len(self.buckets))
        state.bucket_counts[bisect_left(self.buckets, value)] += 1
        state.sum += value
        state.count += 1

    def _state(self, **labels: object) -> HistogramSeries | None:
        return self._series.get(_label_key(labels))

    def count(self, **labels: object) -> int:
        state = self._state(**labels)
        return state.count if state else 0

    def sum(self, **labels: object) -> float:
        state = self._state(**labels)
        return state.sum if state else 0.0

    def bucket_counts(self, **labels: object) -> list[int]:
        """Raw (non-cumulative) per-bucket counts, +Inf slot last."""
        state = self._state(**labels)
        return list(state.bucket_counts) if state else [0] * (len(self.buckets) + 1)

    def series(self) -> dict[LabelKey, HistogramSeries]:
        return dict(self._series)


class MetricsRegistry:
    """A named collection of metrics with one shared enable switch."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Get-or-create instruments
    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help_text: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        metric = cls(name, help_text, self, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str = "", *, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)

    # ------------------------------------------------------------------
    # Snapshot merging (parallel workers)
    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold an exported snapshot into this registry.

        ``snapshot`` is the document produced by
        :func:`repro.telemetry.export.metrics_snapshot` -- the format
        worker processes ship their registries home in.  Semantics per
        kind:

        * **counters** -- series values *add*, so merging every worker's
          snapshot yields exactly the totals a serial run would count,
        * **histograms** -- bucket counts, sums, and counts add (bucket
          layouts must match),
        * **gauges** -- series values are *adopted* (last merge wins);
          gauges carry run-local readings like wall times, which have no
          meaningful cross-worker sum.

        Merging is an administrative operation: it applies even when the
        registry is disabled, so a parent can collect worker telemetry
        after switching its own instrumentation off.
        """
        for name, payload in snapshot.get("counters", {}).items():
            metric = self.counter(name, payload.get("help", ""))
            for series in payload.get("series", []):
                key = _label_key(series.get("labels", {}))
                metric._series[key] = metric._series.get(key, 0) + series["value"]
        for name, payload in snapshot.get("gauges", {}).items():
            metric = self.gauge(name, payload.get("help", ""))
            for series in payload.get("series", []):
                metric._series[_label_key(series.get("labels", {}))] = series["value"]
        for name, payload in snapshot.get("histograms", {}).items():
            metric = self.histogram(
                name, payload.get("help", ""), buckets=payload["buckets"]
            )
            if tuple(payload["buckets"]) != metric.buckets:
                raise ValueError(
                    f"histogram {name!r}: snapshot buckets {payload['buckets']} "
                    f"do not match registered buckets {list(metric.buckets)}"
                )
            for series in payload.get("series", []):
                key = _label_key(series.get("labels", {}))
                state = metric._series.get(key)
                if state is None:
                    state = metric._series[key] = HistogramSeries(len(metric.buckets))
                cumulative = series["cumulative_bucket_counts"]
                previous = 0
                for slot, running in enumerate(cumulative):
                    state.bucket_counts[slot] += running - previous
                    previous = running
                state.sum += series["sum"]
                state.count += series["count"]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> Iterator[Metric]:
        """All registered metrics, sorted by name (export order)."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def reset(self) -> None:
        """Zero every series, keeping registrations (and bucket layouts)."""
        for metric in self._metrics.values():
            metric.clear()

    def clear(self) -> None:
        """Drop every registration entirely."""
        self._metrics.clear()

    @staticmethod
    def validate_label(name: str) -> bool:
        return bool(_LABEL_RE.match(name))
