"""The central stream/document schema registry.

Every machine-readable contract the repo publishes carries a version
tag of the form ``iotls-<name>/<version>``.  Before this module those
identifiers were string literals scattered across telemetry, analysis,
serve, the CLI, and the tools -- nine-plus copies with nothing keeping
them in sync with each other or with the validators in
``tools/validate_streams.py``.  This registry is now the single source
of truth:

* every schema is declared **once** here, with its kind (JSONL stream
  vs. single JSON document), a one-line description, and -- when the
  contract is externally consumed -- the name of its validator function
  in ``tools/validate_streams.py``,
* every producer imports its identifier from here (the module-level
  ``*_SCHEMA`` constants keep the historical names), and
* reprolint rule **RL022** (``stream-schema-contract``) statically
  enforces both halves: an ``iotls-*/N`` literal anywhere else in
  ``src``/``tools`` is a violation, and a declared validator that
  ``tools/validate_streams.py`` does not define is a violation.

The registration calls below are deliberately **literal** (constant
name/version/validator arguments): RL022 reads this file's AST, so the
registry must be statically evaluable without importing the package.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ACCESS_LOG_SCHEMA",
    "API_SURFACE_SCHEMA",
    "DRIFT_REPORT_SCHEMA",
    "EXPECTATIONS_SCHEMA",
    "HEALTH_STREAM_SCHEMA",
    "LEDGER_SCHEMA",
    "MANIFEST_SCHEMA",
    "PROFILE_SCHEMA",
    "RESOURCE_SUMMARY_SCHEMA",
    "SLO_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "STATUS_SCHEMA",
    "STREAM_SCHEMA_PREFIX",
    "StreamSchema",
    "TRACE_STREAM_SCHEMA",
    "TREND_SCHEMA",
    "all_schemas",
    "get_schema",
    "is_registered",
    "schema_id",
]

#: Every published identifier starts with this prefix.
STREAM_SCHEMA_PREFIX = "iotls-"


@dataclass(frozen=True)
class StreamSchema:
    """One published contract: identity, shape, and validation hook."""

    #: Short name (the ``<name>`` in ``iotls-<name>/<version>``).
    name: str
    version: int
    #: ``jsonl-stream`` (line-delimited, header-first) or ``document``
    #: (one JSON object).
    kind: str
    description: str
    #: Name of the validator function in ``tools/validate_streams.py``
    #: (``None`` for internal documents validated by their own loaders).
    validator: str | None = None

    @property
    def id(self) -> str:
        """The full wire identifier, e.g. ``iotls-trace-stream/1``."""
        return f"{STREAM_SCHEMA_PREFIX}{self.name}/{self.version}"


#: The registry.  Keep registrations literal -- RL022 parses this file.
REGISTRY: tuple[StreamSchema, ...] = (
    StreamSchema(
        name="trace-stream",
        version=1,
        kind="jsonl-stream",
        description="chunked trace export: header, record/revocation-event "
        "lines, one trailing summary (iotls trace --stream-out, serve bodies)",
        validator="validate_trace_stream",
    ),
    StreamSchema(
        name="run-ledger",
        version=1,
        kind="jsonl-stream",
        description="append-only cross-run observability store; one "
        "self-contained entry per line (.iotls/ledger.jsonl)",
        validator="validate_run_ledger",
    ),
    StreamSchema(
        name="health-stream",
        version=1,
        kind="jsonl-stream",
        description="run-health heartbeat stream: header, seq-monotonic "
        "heartbeats, one trailing summary (--heartbeat-out)",
        validator="validate_health_stream",
    ),
    StreamSchema(
        name="serve-access",
        version=1,
        kind="jsonl-stream",
        description="fleet-service access log: header, seq-monotonic request "
        "lifecycle events, at most one trailing summary",
        validator="validate_access_log",
    ),
    StreamSchema(
        name="bench-trend",
        version=1,
        kind="document",
        description="benchmark trajectory report (iotls runs trend --json, "
        "iotls bench-report)",
        validator="validate_bench_trend",
    ),
    StreamSchema(
        name="slo",
        version=1,
        kind="document",
        description="declarative benchmark SLO policy (tools/slo.json)",
        validator="validate_slo_policy",
    ),
    StreamSchema(
        name="serve-status",
        version=1,
        kind="document",
        description="fleet-service GET /status snapshot: queue, pool, cache, "
        "resident state, access counters",
        validator="validate_serve_status",
    ),
    StreamSchema(
        name="resources",
        version=1,
        kind="document",
        description="ResourceSampler summary: peak heap/RSS, gc and CPU "
        "readings for one run",
        validator="validate_resource_summary",
    ),
    StreamSchema(
        name="manifest",
        version=1,
        kind="document",
        description="blake2s-named canonical run manifest, byte-identical "
        "across worker counts",
        validator=None,
    ),
    StreamSchema(
        name="telemetry",
        version=1,
        kind="document",
        description="metrics snapshot export (counters/gauges/histograms)",
        validator=None,
    ),
    StreamSchema(
        name="profile",
        version=1,
        kind="document",
        description="span-based profile aggregation (--profile-out)",
        validator=None,
    ),
    StreamSchema(
        name="paper-expectations",
        version=1,
        kind="document",
        description="calibrated paper cells the drift gate audits against "
        "(packaged expected/paper.json)",
        validator=None,
    ),
    StreamSchema(
        name="drift-report",
        version=1,
        kind="document",
        description="iotls check outcome: per-cell drift verdicts",
        validator=None,
    ),
    StreamSchema(
        name="api-surface",
        version=1,
        kind="document",
        description="public API surface baseline (tools/api_surface.json)",
        validator=None,
    ),
)

_BY_NAME = {schema.name: schema for schema in REGISTRY}
_BY_ID = {schema.id: schema for schema in REGISTRY}


def schema_id(name: str) -> str:
    """The full identifier registered under ``name`` (raises on unknown)."""
    try:
        return _BY_NAME[name].id
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unregistered schema name {name!r}; known: {known}") from None


def get_schema(identifier: str) -> StreamSchema:
    """The registry entry for a full ``iotls-<name>/<v>`` identifier."""
    try:
        return _BY_ID[identifier]
    except KeyError:
        known = ", ".join(sorted(_BY_ID))
        raise KeyError(
            f"unregistered schema id {identifier!r}; known: {known}"
        ) from None


def is_registered(identifier: str) -> bool:
    """True when ``identifier`` names a registered schema (full id)."""
    return identifier in _BY_ID


def all_schemas() -> tuple[StreamSchema, ...]:
    """Every registered schema, in registration order."""
    return REGISTRY


# ----------------------------------------------------------------------
# The historical constant names, now all derived from the registry.
# ----------------------------------------------------------------------
TRACE_STREAM_SCHEMA = schema_id("trace-stream")
LEDGER_SCHEMA = schema_id("run-ledger")
HEALTH_STREAM_SCHEMA = schema_id("health-stream")
ACCESS_LOG_SCHEMA = schema_id("serve-access")
TREND_SCHEMA = schema_id("bench-trend")
SLO_SCHEMA = schema_id("slo")
STATUS_SCHEMA = schema_id("serve-status")
RESOURCE_SUMMARY_SCHEMA = schema_id("resources")
MANIFEST_SCHEMA = schema_id("manifest")
SNAPSHOT_SCHEMA = schema_id("telemetry")
PROFILE_SCHEMA = schema_id("profile")
EXPECTATIONS_SCHEMA = schema_id("paper-expectations")
DRIFT_REPORT_SCHEMA = schema_id("drift-report")
API_SURFACE_SCHEMA = schema_id("api-surface")
