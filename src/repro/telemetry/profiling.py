"""Profiling over the span tracer: hot spans, phases, shards, flames.

The :class:`~repro.telemetry.tracing.Tracer` already records every
instrumented interval; this module turns those finished spans into a
profile after the run, so profiling adds **zero** hot-path cost beyond
the tracing that telemetry already pays -- and when telemetry is off,
the disabled path is still the tracer's single boolean read.

A :class:`Profiler` aggregates spans by *stack path* (the ``;``-joined
chain of span names from root to leaf, the classic collapsed-stack
key):

* **cumulative time** -- total wall time spent inside the span,
* **self time** -- cumulative minus the time spent in child spans,
* **calls / min / max** -- per-path call statistics.

Three render targets:

* :meth:`Profiler.hot_spans` / :func:`render_hot_table` -- the top-N
  table ``iotls trace --profile`` prints,
* :meth:`Profiler.collapsed_stacks` -- ``stack;path <microseconds>``
  lines, directly consumable by flamegraph tooling
  (``flamegraph.pl --countname us``),
* :meth:`Profiler.to_dict` -- the machine-readable document behind
  ``--profile-out``.

Parallel runs: worker processes aggregate their own spans
(:meth:`Profiler.to_payload`) and ship the pure-data result home with
the rest of the worker state; the parent folds every payload in with
:meth:`Profiler.merge_payload`, attributing each worker's ``shard.run``
root to its shard.  The benchmark harness records its timings through
the same path (``benchmarks/conftest.py --profile-out``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .runtime import TelemetryRuntime
    from .tracing import Span, Tracer

__all__ = ["PathStat", "Profiler", "render_hot_table"]

from .schemas import PROFILE_SCHEMA  # registered in repro.telemetry.schemas

#: Span names that root one worker's whole shard of work.  Their
#: cumulative time is the shard wall time, and on merge the worker's
#: paths are re-parented under the coordinator's dispatch path here.
SHARD_ROOT_SPANS = ("shard.run", "chunk.run")


class PathStat:
    """Aggregate statistics for one stack path."""

    __slots__ = ("path", "calls", "cumulative", "self_time", "min", "max")

    def __init__(self, path: str) -> None:
        self.path = path
        self.calls = 0
        self.cumulative = 0.0
        self.self_time = 0.0
        self.min = float("inf")
        self.max = 0.0

    @property
    def name(self) -> str:
        """The leaf span name of this path."""
        return self.path.rsplit(";", 1)[-1]

    @property
    def mean(self) -> float:
        return self.cumulative / self.calls if self.calls else 0.0

    def add(self, duration: float, self_time: float) -> None:
        self.calls += 1
        self.cumulative += duration
        self.self_time += self_time
        self.min = min(self.min, duration)
        self.max = max(self.max, duration)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "calls": self.calls,
            "cumulative_seconds": self.cumulative,
            "self_seconds": self.self_time,
            "min_seconds": self.min if self.calls else 0.0,
            "max_seconds": self.max,
        }


def _span_path(span: "Span") -> str:
    names = [span.name]
    node = span.parent
    while node is not None:
        names.append(node.name)
        node = node.parent
    return ";".join(reversed(names))


class Profiler:
    """Aggregates finished spans (local and worker-exported) by path."""

    def __init__(self) -> None:
        self._paths: dict[str, PathStat] = {}
        #: Per-shard wall times, keyed by worker id (parallel runs only).
        self.shards: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_spans(self, spans: Iterable["Span"]) -> "Profiler":
        """Fold finished spans in, computing self time from children."""
        for span in spans:
            if span.duration is None:
                continue
            child_time = sum(
                child.duration for child in span.children if child.duration is not None
            )
            stat = self._stat(_span_path(span))
            stat.add(span.duration, max(0.0, span.duration - child_time))
        return self

    @classmethod
    def from_tracer(cls, tracer: "Tracer") -> "Profiler":
        return cls().add_spans(tracer.finished)

    @classmethod
    def from_runtime(cls, runtime: "TelemetryRuntime") -> "Profiler":
        """The full picture of one run: the runtime's own spans plus any
        worker profiles merged in after a parallel run."""
        profiler = cls.from_tracer(runtime.tracer)
        for payload in runtime.worker_profiles:
            profiler.merge_payload(payload)
        return profiler

    def _stat(self, path: str) -> PathStat:
        stat = self._paths.get(path)
        if stat is None:
            stat = self._paths[path] = PathStat(path)
        return stat

    # ------------------------------------------------------------------
    # Worker transfer (pure data across the spawn boundary)
    # ------------------------------------------------------------------
    def to_payload(
        self, *, worker: int | None = None, context: Any | None = None
    ) -> dict[str, Any]:
        """Everything a worker ships home: path stats plus shard time.

        The shard wall time is the cumulative time of the worker's
        shard-root span (:data:`SHARD_ROOT_SPANS`), which wraps its
        whole work loop.  ``context`` is the coordinator's propagated
        :class:`~repro.telemetry.tracing.TraceContext`; when present it
        rides along so the merge side can re-parent this worker's paths
        under the coordinator's dispatch span.
        """
        shard_seconds = sum(
            stat.cumulative
            for stat in self._paths.values()
            if stat.path in SHARD_ROOT_SPANS
        )
        payload: dict[str, Any] = {
            "worker": worker,
            "shard_seconds": shard_seconds,
            "paths": [
                {
                    "path": stat.path,
                    "calls": stat.calls,
                    "cumulative": stat.cumulative,
                    "self": stat.self_time,
                    "min": stat.min if stat.calls else 0.0,
                    "max": stat.max,
                }
                for stat in sorted(self._paths.values(), key=lambda s: s.path)
            ],
        }
        if context is not None:
            payload["context"] = (
                context if isinstance(context, dict) else context.to_dict()
            )
        return payload

    def merge_payload(self, payload: dict[str, Any]) -> "Profiler":
        """Fold one worker's exported profile into this one.

        When the payload carries a propagated trace context, every
        worker path is re-parented under the context's ``parent_path``
        (the coordinator's open span path at dispatch), stitching the
        worker's spans into the coordinator's end-to-end trace -- a
        worker ``shard.run;trace.device`` becomes
        ``trace.generate;parallel.dispatch;shard.run;trace.device``.
        Merging is order-independent: path stats add commutatively and
        shard times key by worker id.
        """
        parent_path = (payload.get("context") or {}).get("parent_path", "")
        prefix = f"{parent_path};" if parent_path else ""
        for entry in payload.get("paths", []):
            stat = self._stat(prefix + entry["path"])
            stat.calls += entry["calls"]
            stat.cumulative += entry["cumulative"]
            stat.self_time += entry["self"]
            stat.min = min(stat.min, entry["min"])
            stat.max = max(stat.max, entry["max"])
        worker = payload.get("worker")
        if worker is not None:
            self.shards[int(worker)] = (
                self.shards.get(int(worker), 0.0) + payload.get("shard_seconds", 0.0)
            )
        return self

    def shard_skew(self) -> dict[str, Any] | None:
        """Straggler attribution across shard wall times.

        ``max_over_mean`` is the skew figure: 1.0 means perfectly even
        shards, 2.0 means the slowest worker took twice the mean (the
        run's critical path is that straggler).  ``None`` with fewer
        than two shards -- skew needs a comparison.
        """
        if len(self.shards) < 2:
            return None
        times = list(self.shards.values())
        mean = sum(times) / len(times)
        slowest = max(self.shards, key=lambda worker: self.shards[worker])
        return {
            "workers": len(times),
            "max_seconds": round(max(times), 6),
            "min_seconds": round(min(times), 6),
            "mean_seconds": round(mean, 6),
            "max_over_mean": round(max(times) / mean, 4) if mean > 0 else 0.0,
            "slowest_worker": slowest,
        }

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._paths)

    def paths(self) -> list[PathStat]:
        return sorted(self._paths.values(), key=lambda s: s.path)

    def hot_spans(self, n: int = 10, *, by: str = "cumulative") -> list[PathStat]:
        """The top-N paths by ``cumulative`` (default) or ``self`` time."""
        if by not in ("cumulative", "self"):
            raise ValueError(f"unknown sort key {by!r}; expected cumulative or self")
        key = (lambda s: s.cumulative) if by == "cumulative" else (lambda s: s.self_time)
        return sorted(self._paths.values(), key=key, reverse=True)[:n]

    def phases(self) -> dict[str, float]:
        """Cumulative seconds per leaf span name (the phase view)."""
        totals: dict[str, float] = {}
        for stat in self._paths.values():
            totals[stat.name] = totals.get(stat.name, 0.0) + stat.cumulative
        return dict(sorted(totals.items()))

    def collapsed_stacks(self) -> str:
        """Collapsed-stack lines (``path <microseconds>``), flamegraph-ready.

        Self time, not cumulative -- the flamegraph convention, so parent
        frames don't double-count their children."""
        lines = [
            f"{stat.path} {max(0, round(stat.self_time * 1e6))}"
            for stat in self.paths()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self, *, top: int = 10) -> dict[str, Any]:
        """The machine-readable profile document (``--profile-out``)."""
        return {
            "schema": PROFILE_SCHEMA,
            "spans": [stat.to_dict() for stat in self.paths()],
            "hot": [stat.to_dict() for stat in self.hot_spans(top)],
            "phases": self.phases(),
            "shards": {str(worker): seconds for worker, seconds in sorted(self.shards.items())},
            "shard_skew": self.shard_skew(),
            "collapsed_stacks": self.collapsed_stacks(),
        }


def render_hot_table(profiler: Profiler, *, top: int = 10) -> str:
    """The aligned top-N hot-span table ``--profile`` prints."""
    stats = profiler.hot_spans(top)
    if not stats:
        return "(no spans recorded -- was telemetry enabled?)"
    headers = ("span path", "calls", "cum (s)", "self (s)", "mean (ms)")
    rows = [
        (
            stat.path,
            str(stat.calls),
            f"{stat.cumulative:.4f}",
            f"{stat.self_time:.4f}",
            f"{stat.mean * 1e3:.3f}",
        )
        for stat in stats
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) for i in range(len(headers))
    ]

    def fmt(row: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [fmt(headers), fmt(tuple("-" * width for width in widths))]
    lines.extend(fmt(row) for row in rows)
    if profiler.shards:
        lines.append("")
        lines.append("per-shard wall time:")
        for worker, seconds in sorted(profiler.shards.items()):
            lines.append(f"  shard {worker}: {seconds:.4f}s")
        skew = profiler.shard_skew()
        if skew is not None:
            lines.append(
                f"  skew: {skew['max_over_mean']:.2f}x "
                f"(slowest worker {skew['slowest_worker']}: "
                f"{skew['max_seconds']:.4f}s vs mean {skew['mean_seconds']:.4f}s)"
            )
    return "\n".join(lines)
