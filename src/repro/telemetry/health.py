"""Resource telemetry: RSS, traced-heap peak, GC, and CPU sampling.

:class:`ResourceSampler` snapshots process resource facts -- max RSS via
``resource.getrusage``, the Python-heap peak via ``tracemalloc``, GC
collection counts, and user/system CPU seconds -- at stage boundaries
and on demand (the progress heartbeat calls :meth:`ResourceSampler.sample`
per emission).  It is stdlib-only and lives inside the telemetry clock
boundary, so its monotonic clock reads keep RL002 clean.

Determinism: every fact the sampler produces is wall-clock- or
host-dependent, so results surface **only** as registry gauges and as
the ``resources`` summary section -- never as counters.  Gauges are
excluded from the deterministic metrics slice
(:func:`repro.telemetry.provenance.deterministic_metrics`), which keeps
run manifests byte-identical whether sampling is on or off.

``tracemalloc`` is process-global state, so the sampler acquires it
through a module-level reference count: nested harnesses (the api
facade calling into a bench harness that also samples) share one
activation, the last release stops tracing, and tracing that something
*else* started (e.g. ``PYTHONTRACEMALLOC``) is never stopped by us.
Release happens in ``finally`` paths so an exception mid-run cannot
leak a global tracer.
"""

from __future__ import annotations

import gc
import resource
import sys
import tracemalloc
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from .metrics import MetricsRegistry

__all__ = [
    "RESOURCE_SUMMARY_SCHEMA",
    "ResourceSampler",
    "ResourceSnapshot",
    "tracemalloc_holds",
]

#: Schema tag of the ``resources`` section in run summaries.
from .schemas import RESOURCE_SUMMARY_SCHEMA  # noqa: E402

# ---------------------------------------------------------------------------
# Reference-counted tracemalloc ownership (process-global state).
# ---------------------------------------------------------------------------
_TRACEMALLOC_HOLDS = 0
_TRACEMALLOC_STARTED_BY_US = False


def tracemalloc_holds() -> int:
    """The current number of sampler holds on tracemalloc (for tests)."""
    return _TRACEMALLOC_HOLDS


def _acquire_tracemalloc() -> None:
    """Take one hold; start tracing only on the first hold, and only if
    no one else (e.g. ``PYTHONTRACEMALLOC``) is already tracing."""
    global _TRACEMALLOC_HOLDS, _TRACEMALLOC_STARTED_BY_US
    if _TRACEMALLOC_HOLDS == 0:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            _TRACEMALLOC_STARTED_BY_US = True
        else:
            _TRACEMALLOC_STARTED_BY_US = False
    _TRACEMALLOC_HOLDS += 1


def _release_tracemalloc() -> None:
    """Drop one hold; the last release stops tracing iff we started it."""
    global _TRACEMALLOC_HOLDS, _TRACEMALLOC_STARTED_BY_US
    if _TRACEMALLOC_HOLDS == 0:
        return
    _TRACEMALLOC_HOLDS -= 1
    if _TRACEMALLOC_HOLDS == 0 and _TRACEMALLOC_STARTED_BY_US:
        if tracemalloc.is_tracing():
            tracemalloc.stop()
        _TRACEMALLOC_STARTED_BY_US = False


def _max_rss_kib() -> int:
    """Peak resident set size in KiB (``ru_maxrss`` is KiB on Linux but
    bytes on macOS)."""
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return raw // 1024
    return raw


@dataclass(frozen=True)
class ResourceSnapshot:
    """One resource reading, taken at a stage boundary or heartbeat."""

    stage: str
    elapsed_seconds: float
    max_rss_kib: int
    traced_bytes: int
    traced_peak_bytes: int
    gc_collections: int
    gc_counts: tuple[int, ...]
    cpu_user_seconds: float
    cpu_system_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "max_rss_kib": self.max_rss_kib,
            "traced_bytes": self.traced_bytes,
            "traced_peak_bytes": self.traced_peak_bytes,
            "gc_collections": self.gc_collections,
            "gc_counts": list(self.gc_counts),
            "cpu_user_seconds": round(self.cpu_user_seconds, 4),
            "cpu_system_seconds": round(self.cpu_system_seconds, 4),
        }


@dataclass
class ResourceSampler:
    """Samples process resources between :meth:`start` and :meth:`stop`.

    Use as a context manager (the recommended form -- release is then
    exception-safe)::

        with ResourceSampler() as sampler:
            ...
            sampler.stage("parse")      # snapshot at a stage boundary
            ...
        summary = sampler.summary()     # schema iotls-resources/1

    ``interval`` rate-limits :meth:`maybe_sample` for use inside loops;
    explicit :meth:`sample`/:meth:`stage` calls are never throttled.
    When a ``registry`` is attached, :meth:`stop` folds the peaks into
    manifest-safe gauges (``iotls_resource_*``).

    ``trace_heap=False`` skips the tracemalloc hold entirely: the
    sampler then reports RSS/CPU/GC only and ``peak_traced_bytes`` stays
    0.  Timing-sensitive harnesses use this -- tracemalloc instruments
    every allocation and can dominate a hot loop's wall time -- and take
    heap readings in a separate traced pass.
    """

    interval: float = 1.0
    registry: MetricsRegistry | None = None
    trace_heap: bool = True
    clock: Callable[[], float] = perf_counter
    snapshots: list[ResourceSnapshot] = field(default_factory=list)
    _started_at: float | None = field(default=None, repr=False)
    _stopped_at: float | None = field(default=None, repr=False)
    _last_sample_at: float = field(default=0.0, repr=False)
    _holding: bool = field(default=False, repr=False)
    _gc_base: int = field(default=0, repr=False)

    def start(self) -> "ResourceSampler":
        if self._started_at is not None:
            return self
        if self.trace_heap:
            _acquire_tracemalloc()
            self._holding = True
        self._gc_base = sum(stat["collections"] for stat in gc.get_stats())
        self._started_at = self.clock()
        self._last_sample_at = self._started_at
        self.sample("start")
        return self

    def _snapshot(self, stage: str, now: float) -> ResourceSnapshot:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        traced, traced_peak = (
            tracemalloc.get_traced_memory() if tracemalloc.is_tracing() else (0, 0)
        )
        collections = sum(stat["collections"] for stat in gc.get_stats())
        return ResourceSnapshot(
            stage=stage,
            elapsed_seconds=now - (self._started_at or now),
            max_rss_kib=_max_rss_kib(),
            traced_bytes=traced,
            traced_peak_bytes=traced_peak,
            gc_collections=collections - self._gc_base,
            gc_counts=tuple(gc.get_count()),
            cpu_user_seconds=usage.ru_utime,
            cpu_system_seconds=usage.ru_stime,
        )

    def sample(self, stage: str = "sample") -> ResourceSnapshot:
        """Take one snapshot unconditionally and record it."""
        if self._started_at is None:
            self.start()
        now = self.clock()
        self._last_sample_at = now
        snapshot = self._snapshot(stage, now)
        self.snapshots.append(snapshot)
        return snapshot

    def maybe_sample(self, stage: str = "interval") -> ResourceSnapshot | None:
        """Snapshot only if ``interval`` seconds have passed (loop-safe)."""
        if self._started_at is None:
            self.start()
        if (self.clock() - self._last_sample_at) < self.interval:
            return None
        return self.sample(stage)

    def stage(self, name: str) -> ResourceSnapshot:
        """Snapshot at a named stage boundary (never throttled)."""
        return self.sample(name)

    def stop(self) -> None:
        """Final snapshot, release the tracemalloc hold, fold gauges.
        Idempotent; safe on error paths (also called by ``__exit__``)."""
        if self._started_at is None or self._stopped_at is not None:
            return
        self._stopped_at = self.clock()
        self.snapshots.append(self._snapshot("stop", self._stopped_at))
        if self._holding:
            _release_tracemalloc()
            self._holding = False
        if self.registry is not None:
            self._fold_gauges()

    def _fold_gauges(self) -> None:
        assert self.registry is not None
        last = self.snapshots[-1]
        self.registry.gauge(
            "iotls_resource_peak_rss_kib", "Peak resident set size (KiB)"
        ).set(max(snap.max_rss_kib for snap in self.snapshots))
        self.registry.gauge(
            "iotls_resource_peak_traced_bytes", "Peak tracemalloc heap (bytes)"
        ).set(max(snap.traced_peak_bytes for snap in self.snapshots))
        cpu = self.registry.gauge(
            "iotls_resource_cpu_seconds", "CPU seconds consumed by the run"
        )
        cpu.set(round(last.cpu_user_seconds, 4), mode="user")
        cpu.set(round(last.cpu_system_seconds, 4), mode="system")
        self.registry.gauge(
            "iotls_resource_gc_collections", "GC collections during the run"
        ).set(last.gc_collections)

    def summary(self) -> dict[str, Any]:
        """The ``resources`` section of the run summary."""
        if self._started_at is not None and self._stopped_at is None:
            self.stop()
        if not self.snapshots:
            return {"schema": RESOURCE_SUMMARY_SCHEMA, "samples": 0}
        last = self.snapshots[-1]
        return {
            "schema": RESOURCE_SUMMARY_SCHEMA,
            "samples": len(self.snapshots),
            "seconds": round(last.elapsed_seconds, 6),
            "peak_rss_kib": max(snap.max_rss_kib for snap in self.snapshots),
            "peak_traced_bytes": max(
                snap.traced_peak_bytes for snap in self.snapshots
            ),
            "gc_collections": last.gc_collections,
            "cpu_user_seconds": round(last.cpu_user_seconds, 4),
            "cpu_system_seconds": round(last.cpu_system_seconds, 4),
            "stages": [snap.to_dict() for snap in self.snapshots],
        }

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
