"""Attacker certificate forging toolbox.

Everything an on-path attacker without CA compromise can present
(Table 2 of the paper, plus the spoofed-CA probe of §4.2):

* a **self-signed** certificate for the target hostname (NoValidation),
* a **valid chain for the attacker's own domain** -- the paper used a
  free ZeroSSL certificate for a domain under their control; here the
  testbed plays the public CA and issues the attacker a genuine chain
  for ``attacker-owned.example`` (WrongHostname),
* a chain whose **issuer is that (non-CA) attacker leaf**
  (InvalidBasicConstraints),
* a **spoofed CA**: a self-signed root whose Subject Name, Issuer Name
  and Serial Number match a legitimate root but whose key is the
  attacker's (the root-store probing primitive),
* an **arbitrary-subject CA** (the unknown-CA baseline probe).

The attacker holds only its own keys; the signature oracle guarantees
that spoofed chains fail verification exactly as they would with real
cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..pki.certificate import (
    BasicConstraints,
    Certificate,
    CertificateAuthority,
    CertificateBuilder,
    KeyUsage,
)
from ..pki.name import DistinguishedName
from ..pki.simcrypto import KeyPair, generate_keypair

__all__ = ["AttackerToolbox", "ATTACKER_DOMAIN"]

ATTACKER_DOMAIN = "attacker-owned.example"


@dataclass
class AttackerToolbox:
    """Forged-credential factory bound to one attacker identity.

    ``issuing_ca`` is the public CA the attacker legitimately obtained a
    certificate from (it must chain to a root the victim trusts for the
    WrongHostname / InvalidBasicConstraints attacks to be meaningful).
    """

    issuing_ca: CertificateAuthority

    def __post_init__(self) -> None:
        self._keypair: KeyPair = generate_keypair(seed=b"attacker-toolbox")
        # The attacker's genuine certificate for its own domain, with the
        # full chain linking to a trusted root (sent during handshake).
        self._own_leaf, self._own_keypair = self.issuing_ca.issue_leaf(
            ATTACKER_DOMAIN, seed=b"attacker-own-leaf"
        )

    # ------------------------------------------------------------------
    # Table 2 attack credentials
    # ------------------------------------------------------------------
    def self_signed_for(self, hostname: str) -> tuple[Certificate, ...]:
        """NoValidation: a self-signed certificate for the target name."""
        certificate, _ = CertificateAuthority.self_signed_leaf(
            hostname, seed=f"selfsigned:{hostname}".encode()
        )
        return (certificate,)

    def wrong_hostname_chain(self) -> tuple[Certificate, ...]:
        """WrongHostname: the attacker's *valid* chain for its own domain."""
        return (self._own_leaf, self.issuing_ca.certificate)

    def invalid_basic_constraints_chain(self, hostname: str) -> tuple[Certificate, ...]:
        """InvalidBasicConstraints: the attacker's leaf used as an issuer.

        The attacker signs a certificate for the *target* hostname with
        the private key of its own (non-CA) leaf certificate.  Clients
        that skip the BasicConstraints check accept the chain: every
        signature verifies and the hostname matches.
        """
        builder = CertificateBuilder(
            subject=DistinguishedName(common_name=hostname),
            issuer=self._own_leaf.subject,
            public_key=generate_keypair(seed=f"ibc-leaf:{hostname}".encode()).public,
            subject_alt_names=(hostname,),
            not_before=self._own_leaf.not_before,
            not_after=self._own_leaf.not_after,
        )
        forged_leaf = builder.sign(self._own_keypair.private)
        return (forged_leaf, self._own_leaf, self.issuing_ca.certificate)

    # ------------------------------------------------------------------
    # Root-store probing credentials (§4.2)
    # ------------------------------------------------------------------
    def spoofed_ca_chain(
        self, target_root: Certificate, hostname: str
    ) -> tuple[Certificate, ...]:
        """A chain under a spoofed copy of ``target_root``.

        Subject, issuer and serial match the legitimate root; the key is
        the attacker's, so the leaf signature cannot verify against the
        *trusted* root's key.  A validating client that has the root
        fails with a signature error; one that lacks it fails with an
        unknown-CA error -- the observable side channel.
        """
        spoofed_root = CertificateBuilder.spoof_from(target_root, self._keypair.public).sign(
            self._keypair.private
        )
        leaf = CertificateBuilder(
            subject=DistinguishedName(common_name=hostname),
            issuer=spoofed_root.subject,
            public_key=generate_keypair(seed=f"spoof-leaf:{hostname}".encode()).public,
            subject_alt_names=(hostname,),
            not_before=target_root.not_before,
            not_after=target_root.not_after,
        ).sign(self._keypair.private)
        return (leaf, spoofed_root)

    def unknown_ca_chain(self, hostname: str) -> tuple[Certificate, ...]:
        """A chain under a self-signed root with an arbitrary subject."""
        root = _arbitrary_root(self._keypair)
        leaf = CertificateBuilder(
            subject=DistinguishedName(common_name=hostname),
            issuer=root.subject,
            public_key=generate_keypair(seed=f"unk-leaf:{hostname}".encode()).public,
            subject_alt_names=(hostname,),
        ).sign(self._keypair.private)
        return (leaf, root)


@lru_cache(maxsize=8)
def _arbitrary_root(keypair: KeyPair) -> Certificate:
    return CertificateBuilder(
        subject=DistinguishedName(
            common_name="IoTLS Probe Arbitrary Root", organization="IoTLS Reproduction"
        ),
        public_key=keypair.public,
        basic_constraints=BasicConstraints(ca=True),
        key_usage=KeyUsage(key_cert_sign=True),
    ).sign(keypair.private)
