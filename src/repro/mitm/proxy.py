"""The interception proxy (the study's mitmproxy role).

:class:`InterceptionProxy` sits on-path and answers ClientHellos with
forged credentials according to an :class:`AttackMode`.  It implements
the :class:`~repro.tls.engine.Responder` protocol, so devices cannot
distinguish it from a genuine cloud server -- the paper's in-network
adversary model.

Supported modes cover Table 2 (NoValidation, WrongHostname,
InvalidBasicConstraints), the two §5.1 downgrade triggers
(IncompleteHandshake, FailedHandshake), the §4.2 root-store probes
(SpoofedCA, UnknownCA) and an old-version negotiation probe (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum

from .. import telemetry as _telemetry
from ..pki.certificate import Certificate
from ..tls.ciphersuites import REGISTRY
from ..tls.engine import negotiate
from ..tls.messages import ClientHello, ServerResponse
from ..tls.versions import ProtocolVersion
from .forge import AttackerToolbox

__all__ = ["AttackMode", "InterceptionProxy", "VersionProbeResponder"]

#: Everything an attacker's TLS stack can negotiate (all legacy + 1.3).
_ATTACKER_VERSIONS = frozenset(
    {
        ProtocolVersion.SSL_3_0,
        ProtocolVersion.TLS_1_0,
        ProtocolVersion.TLS_1_1,
        ProtocolVersion.TLS_1_2,
        ProtocolVersion.TLS_1_3,
    }
)
_ATTACKER_CIPHERS = tuple(sorted(REGISTRY))

_TELEMETRY = _telemetry.get()


class AttackMode(Enum):
    """What the proxy presents in place of the genuine server."""

    NO_VALIDATION = "NoValidation"
    WRONG_HOSTNAME = "WrongHostname"
    INVALID_BASIC_CONSTRAINTS = "InvalidBasicConstraints"
    INCOMPLETE_HANDSHAKE = "IncompleteHandshake"
    FAILED_HANDSHAKE = "FailedHandshake"
    SPOOFED_CA = "SpoofedCA"
    UNKNOWN_CA = "UnknownCA"


@dataclass
class InterceptionProxy:
    """An on-path TLS interceptor."""

    toolbox: AttackerToolbox
    mode: AttackMode
    #: Target root for SPOOFED_CA mode.
    target_root: Certificate | None = None
    #: ClientHellos seen (interception tooling logs these).
    observed_hellos: list[ClientHello] = field(default_factory=list)

    def respond(self, client_hello: ClientHello, *, when: datetime) -> ServerResponse:
        self.observed_hellos.append(client_hello)
        if _TELEMETRY.enabled:
            _TELEMETRY.registry.counter(
                "iotls_interception_attempts_total",
                "ClientHellos answered by the interception proxy, by attack mode.",
            ).inc(mode=self.mode.value)

        if self.mode is AttackMode.INCOMPLETE_HANDSHAKE:
            return ServerResponse(incomplete=True)

        hostname = client_hello.server_name or "unknown.host"
        chain = self._chain_for(hostname)
        server_hello = negotiate(client_hello, _ATTACKER_VERSIONS, _ATTACKER_CIPHERS)
        if server_hello is None:
            # The attacker supports everything; reaching here means the
            # hello offered no suites we recognise.
            return ServerResponse(incomplete=True)
        return ServerResponse(server_hello=server_hello, certificate_chain=chain)

    def _chain_for(self, hostname: str) -> tuple[Certificate, ...]:
        if self.mode in (AttackMode.NO_VALIDATION, AttackMode.FAILED_HANDSHAKE):
            return self.toolbox.self_signed_for(hostname)
        if self.mode is AttackMode.WRONG_HOSTNAME:
            return self.toolbox.wrong_hostname_chain()
        if self.mode is AttackMode.INVALID_BASIC_CONSTRAINTS:
            return self.toolbox.invalid_basic_constraints_chain(hostname)
        if self.mode is AttackMode.SPOOFED_CA:
            if self.target_root is None:
                raise ValueError("SPOOFED_CA mode requires target_root")
            return self.toolbox.spoofed_ca_chain(self.target_root, hostname)
        if self.mode is AttackMode.UNKNOWN_CA:
            return self.toolbox.unknown_ca_chain(hostname)
        raise AssertionError(f"unhandled mode {self.mode}")  # pragma: no cover


@dataclass
class VersionProbeResponder:
    """A responder that negotiates at most ``version`` with valid credentials.

    Used for the Table 6 experiment: will the device *establish* a
    connection over an old protocol version when a (legitimate) server
    picks it?  The genuine server's chain is reused so certificate
    validation passes and only version acceptance is being tested.
    """

    version: ProtocolVersion
    chain: tuple[Certificate, ...]

    def respond(self, client_hello: ClientHello, *, when: datetime) -> ServerResponse:
        server_hello = negotiate(client_hello, frozenset({self.version}), _ATTACKER_CIPHERS)
        if server_hello is None:
            return ServerResponse(incomplete=True)
        return ServerResponse(server_hello=server_hello, certificate_chain=self.chain)
