"""On-path interception: forged credentials, attack proxy, passthrough."""

from .forge import ATTACKER_DOMAIN, AttackerToolbox
from .passthrough import PassthroughResponder
from .proxy import AttackMode, InterceptionProxy, VersionProbeResponder

__all__ = [
    "ATTACKER_DOMAIN",
    "AttackMode",
    "AttackerToolbox",
    "InterceptionProxy",
    "PassthroughResponder",
    "VersionProbeResponder",
]
