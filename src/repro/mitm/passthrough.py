"""TrafficPassthrough: selective non-interception re-runs (§4.2).

The paper's concern: attacking a connection can break device
functionality and suppress *later* connections, hiding vulnerabilities.
The mitigation (borrowed from mitmproxy's ``tls_passthrough`` example)
re-runs every experiment while passing through -- not intercepting --
any connection that previously failed under attack.

:class:`PassthroughResponder` implements the selector: hostnames on the
pass-list are answered by their genuine cloud server, everything else by
the attack proxy.  The paper found passthrough surfaced ≈20.4% more
destinations (likely post-login follow-up traffic) but no new
certificate-validation failures; the follow-up mechanism is modelled in
:mod:`repro.core.passthrough`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from ..tls.engine import Responder
from ..tls.messages import ClientHello, ServerResponse

__all__ = ["PassthroughResponder"]


@dataclass
class PassthroughResponder:
    """Route hellos to the genuine server or the attack proxy by SNI."""

    attack_proxy: Responder
    genuine: Responder
    passthrough_hostnames: frozenset[str]
    passed_through: list[str] = field(default_factory=list)
    intercepted: list[str] = field(default_factory=list)

    def respond(self, client_hello: ClientHello, *, when: datetime) -> ServerResponse:
        hostname = client_hello.server_name or ""
        if hostname in self.passthrough_hostnames:
            self.passed_through.append(hostname)
            return self.genuine.respond(client_hello, when=when)
        self.intercepted.append(hostname)
        return self.attack_proxy.respond(client_hello, when=when)
