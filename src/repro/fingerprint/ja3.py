"""JA3-style TLS client fingerprinting.

A fingerprint is computed from exactly the ClientHello features the JA3
convention (and the Kotzias et al. database the paper matched against)
uses:

``SSLVersion , CipherSuites , ExtensionTypes , EllipticCurves , PointFormats``

joined with ``-`` within fields and ``,`` between fields, then hashed.
GREASE values are skipped, and extension *values* (e.g. the SNI
hostname) do not participate -- only types and the two curve/format
lists -- so the same TLS instance produces the same fingerprint for
every destination.
"""

from __future__ import annotations

import hashlib

from ..tls.ciphersuites import GREASE_CODEPOINTS
from ..tls.extensions import ExtensionType
from ..tls.messages import ClientHello

__all__ = ["ja3_string", "fingerprint"]


def _extension_code(ext) -> int:
    """An extension's wire codepoint; GREASE types are raw ints rather
    than :class:`ExtensionType` members."""
    extension_type = ext.extension_type
    if isinstance(extension_type, ExtensionType):
        return extension_type.value
    return int(extension_type)


def ja3_string(hello: ClientHello) -> str:
    """The canonical pre-hash JA3 string for a ClientHello."""
    version = hello.legacy_version.wire[0] * 256 + hello.legacy_version.wire[1]
    ciphers = "-".join(
        str(code) for code in hello.cipher_codes if code not in GREASE_CODEPOINTS
    )
    extensions = "-".join(
        str(code)
        for code in (_extension_code(ext) for ext in hello.extensions)
        if code not in GREASE_CODEPOINTS
    )

    groups = ""
    formats = ""
    for ext in hello.extensions:
        if ext.extension_type is ExtensionType.SUPPORTED_GROUPS:
            groups = "-".join(
                str(value) for value in ext.data if value not in GREASE_CODEPOINTS
            )
        elif ext.extension_type is ExtensionType.EC_POINT_FORMATS:
            formats = "-".join(str(value) for value in ext.data)
    return f"{version},{ciphers},{extensions},{groups},{formats}"


def fingerprint(hello: ClientHello) -> str:
    """The fingerprint digest (hex MD5, as JA3 specifies)."""
    return hashlib.md5(ja3_string(hello).encode()).hexdigest()
