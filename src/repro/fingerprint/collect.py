"""Collecting device fingerprints from active experiments (§5.3).

Fingerprints are generated "in the same way as done during the database
compilation": each active device is rebooted against the genuine cloud
servers and every boot-time ClientHello is fingerprinted.  Because
libraries can be updated over time, only the active-experiment snapshot
(March 2021) is used -- exactly the paper's scoping.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..devices.catalog import active_devices
from ..devices.profile import ACTIVE_EXPERIMENT_MONTH
from ..testbed.infrastructure import Testbed
from .ja3 import fingerprint

__all__ = ["DeviceFingerprints", "collect_device_fingerprints"]


@dataclass
class DeviceFingerprints:
    """Fingerprint usage counts for one device's active-experiment traffic."""

    device: str
    usage: Counter = field(default_factory=Counter)

    @property
    def distinct(self) -> set[str]:
        return set(self.usage)

    @property
    def multiple_instances(self) -> bool:
        """More than one fingerprint => likely multiple TLS instances."""
        return len(self.usage) > 1

    @property
    def dominant(self) -> str | None:
        """The most-used fingerprint (the thick edge in Figure 5)."""
        if not self.usage:
            return None
        return self.usage.most_common(1)[0][0]


def collect_device_fingerprints(
    testbed: Testbed, *, reboots: int = 3
) -> list[DeviceFingerprints]:
    """Fingerprint every active device's boot traffic."""
    results = []
    for profile in active_devices():
        device = testbed.device(profile)
        collected = DeviceFingerprints(device=profile.name)
        for _ in range(reboots):
            connections = device.boot(
                lambda destination: testbed.server_for(destination),
                month=ACTIVE_EXPERIMENT_MONTH,
            )
            for connection in connections:
                weight = connection.destination.monthly_weight
                hello = connection.attempt.attempts[0].client_hello
                collected.usage[fingerprint(hello)] += max(1, round(weight))
        results.append(collected)
    return results
