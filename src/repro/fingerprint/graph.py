"""The shared-fingerprint graph (Figure 5) and its analyses.

Three node kinds, as in the paper's figure:

* **devices** (from the active experiments),
* **applications** (labelled entries of the reference database), and
* **fingerprints** shared between them.

An edge connects a device/application to a fingerprint it produced.
Only fingerprints shared by at least two distinct devices/applications
are kept (non-shared fingerprints are removed for readability, exactly
as the paper does).  Device->fingerprint edges carry a ``dominant`` flag
(the paper's thick edges); application edges are the "dashed" ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .collect import DeviceFingerprints
from .database import FingerprintDatabase

__all__ = ["SharedFingerprintGraph", "build_shared_graph"]


@dataclass
class SharedFingerprintGraph:
    """The Figure 5 graph plus the §5.3 summary statistics."""

    graph: nx.Graph
    device_names: set[str]
    application_labels: set[str]

    # ------------------------------------------------------------------
    # §5.3 statistics
    # ------------------------------------------------------------------
    def sharing_devices(self) -> set[str]:
        """Devices that share >=1 fingerprint with another device/app."""
        return {
            name
            for name in self.device_names
            if self.graph.has_node(("device", name)) and self.graph.degree(("device", name)) > 0
        }

    def devices_sharing_with_application(self, label: str) -> set[str]:
        """Devices sharing a fingerprint with a labelled application."""
        app_node = ("application", label)
        if not self.graph.has_node(app_node):
            return set()
        devices = set()
        for fp_node in self.graph.neighbors(app_node):
            for neighbor in self.graph.neighbors(fp_node):
                kind, name = neighbor
                if kind == "device":
                    devices.add(name)
        return devices

    def device_clusters(self) -> list[set[str]]:
        """Connected groups of devices (manufacturer clusters in Fig 5)."""
        clusters = []
        for component in nx.connected_components(self.graph):
            devices = {name for kind, name in component if kind == "device"}
            if len(devices) >= 2:
                clusters.append(devices)
        return clusters

    def dominant_fingerprint_label(self, device: str) -> set[str]:
        """Application labels matching a device's dominant fingerprint."""
        device_node = ("device", device)
        if not self.graph.has_node(device_node):
            return set()
        labels = set()
        for fp_node in self.graph.neighbors(device_node):
            if not self.graph.edges[device_node, fp_node].get("dominant"):
                continue
            for neighbor in self.graph.neighbors(fp_node):
                kind, name = neighbor
                if kind == "application":
                    labels.add(name)
        return labels


def build_shared_graph(
    collected: list[DeviceFingerprints], database: FingerprintDatabase
) -> SharedFingerprintGraph:
    """Assemble the Figure 5 graph from collected device fingerprints."""
    # Who produced each fingerprint?
    producers: dict[str, set[tuple[str, str]]] = {}
    for device in collected:
        for digest in device.distinct:
            producers.setdefault(digest, set()).add(("device", device.device))
    for digest, labels in database.entries.items():
        for label in labels:
            producers.setdefault(digest, set()).add(("application", label))

    graph = nx.Graph()
    used_labels: set[str] = set()
    for digest, nodes in producers.items():
        if len(nodes) < 2:
            continue  # non-shared fingerprints are dropped, as in Fig 5
        # A fingerprint shared only among synthetic DB applications is
        # noise for this analysis; require at least one device producer.
        if not any(kind == "device" for kind, _ in nodes):
            continue
        fp_node = ("fingerprint", digest)
        graph.add_node(fp_node)
        for node in nodes:
            graph.add_node(node)
            kind, name = node
            if kind == "application":
                used_labels.add(name)
            graph.add_edge(node, fp_node)

    # Flag dominant edges (the paper's thick edges).
    for device in collected:
        dominant = device.dominant
        if dominant is None:
            continue
        device_node = ("device", device.device)
        fp_node = ("fingerprint", dominant)
        if graph.has_edge(device_node, fp_node):
            graph.edges[device_node, fp_node]["dominant"] = True

    return SharedFingerprintGraph(
        graph=graph,
        device_names={device.device for device in collected},
        application_labels=used_labels,
    )
