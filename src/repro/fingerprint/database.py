"""The labelled fingerprint database (the paper's Kotzias et al. match set).

The paper compared device fingerprints against a public database of
1,684 fingerprints labelled with the generating *application* (OpenSSL,
curl, android-sdk, browsers, malware families, ...).  We rebuild the
equivalent: reference entries are computed by running the actual
simulated libraries under their stock configurations (so matches against
device traffic are genuine hello-level equality, not name tricks), and
the database is padded with synthetic labelled entries to the published
size.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

from ..devices.configs import (
    FS_MODERN,
    RSA_PLAIN,
    android_sdk_config,
    openssl_stock_config,
)
from ..devices.instance import InstanceConfigSpec, TLSInstanceSpec
from ..devices.profile import ACTIVE_EXPERIMENT_MONTH
from ..devices.rootstores import build_device_store
from ..devices.profile import StoreProfile
from ..roothistory.universe import build_default_universe
from ..tlslib import OPENSSL, ORACLE_JAVA, SECURE_TRANSPORT, WOLFSSL
from .ja3 import fingerprint

__all__ = ["FingerprintDatabase", "build_reference_database", "DATABASE_SIZE"]

#: Size of the Kotzias et al. database the paper used.
DATABASE_SIZE = 1684

_REFERENCE_HOSTNAME = "reference.example"


@dataclass
class FingerprintDatabase:
    """fingerprint digest -> set of application labels."""

    entries: dict[str, set[str]] = field(default_factory=dict)

    def add(self, digest: str, label: str) -> None:
        self.entries.setdefault(digest, set()).add(label)

    def labels_for(self, digest: str) -> set[str]:
        return set(self.entries.get(digest, ()))

    def __contains__(self, digest: object) -> bool:
        return digest in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def labels(self) -> set[str]:
        return set().union(*self.entries.values()) if self.entries else set()


def _config_fingerprint(library, config: InstanceConfigSpec) -> str:
    """Fingerprint of a library+config pair, via a real ClientHello."""
    from ..devices.instance import TLSInstance

    universe = build_default_universe()
    store = build_device_store("fingerprint-reference", StoreProfile(), universe)
    spec = TLSInstanceSpec.static("reference", library, config)
    instance = TLSInstance(spec, store)
    hello = instance.spec.library.client(
        instance.client_config(ACTIVE_EXPERIMENT_MONTH)
    ).build_client_hello(_REFERENCE_HOSTNAME)
    return fingerprint(hello)


@lru_cache(maxsize=1)
def build_reference_database() -> FingerprintDatabase:
    """Build the labelled database.

    Genuine entries cover the stock library shapes the paper's devices
    matched (several OpenSSL variants, android-sdk, curl, Apple's Secure
    Transport dialect, a Microsoft stack); synthetic entries pad the
    database to the published 1,684-fingerprint size with labels that
    mirror the original's diversity (browsers, tools, malware families).
    """
    db = FingerprintDatabase()

    # Stock OpenSSL ships many configurations; the label covers them all.
    for legacy in (True, False):
        for staple in (True, False):
            for weak in (True, False):
                digest = _config_fingerprint(
                    OPENSSL,
                    openssl_stock_config(legacy_versions=legacy, staple=staple, weak=weak),
                )
                db.add(digest, "openssl")
    # curl links OpenSSL; it matches the legacy no-staple shape.
    db.add(
        _config_fingerprint(OPENSSL, openssl_stock_config(legacy_versions=True, staple=False)),
        "curl",
    )

    db.add(_config_fingerprint(ORACLE_JAVA, android_sdk_config()), "android-sdk")
    db.add(
        _config_fingerprint(
            ORACLE_JAVA,
            InstanceConfigSpec(
                versions=openssl_stock_config(legacy_versions=False, staple=False).versions,
                cipher_codes=FS_MODERN + RSA_PLAIN,
                alpn=("h2",),
            ),
        ),
        "microsoft-cortana",
    )

    # Apple's Secure Transport dialect: the catalog's Apple TV / HomePod
    # configurations both match this label (the Fig 5 Apple cluster).
    from ..devices.catalog import device_by_name

    for device_name in ("Apple TV", "Apple HomePod"):
        profile = device_by_name(device_name)
        for spec in profile.instances:
            if spec.library is SECURE_TRANSPORT:
                digest = _config_fingerprint(
                    SECURE_TRANSPORT, spec.config_at(ACTIVE_EXPERIMENT_MONTH)
                )
                db.add(digest, "apple-securetransport")

    # Embedded WolfSSL stock shape (matches D-Link / GE Microwave).
    from ..devices.configs import wolfssl_stock_config

    db.add(_config_fingerprint(WOLFSSL, wolfssl_stock_config()), "embedded-wolfssl")

    # Synthetic padding to the published database size.
    filler_labels = (
        "chrome", "firefox", "safari", "edge", "tor-browser",
        "python-requests", "golang-tls", "java-http", "wget",
        "trickbot", "emotet", "dridex", "gozi", "qakbot",
    )
    index = 0
    while len(db) < DATABASE_SIZE:
        digest = hashlib.md5(f"synthetic-fingerprint:{index}".encode()).hexdigest()
        db.add(digest, f"{filler_labels[index % len(filler_labels)]}-v{index // len(filler_labels)}")
        index += 1
    return db
