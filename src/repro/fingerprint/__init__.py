"""TLS fingerprinting: JA3-style digests, labelled database, Fig 5 graph."""

from .collect import DeviceFingerprints, collect_device_fingerprints
from .database import DATABASE_SIZE, FingerprintDatabase, build_reference_database
from .graph import SharedFingerprintGraph, build_shared_graph
from .ja3 import fingerprint, ja3_string

__all__ = [
    "DATABASE_SIZE",
    "DeviceFingerprints",
    "FingerprintDatabase",
    "SharedFingerprintGraph",
    "build_reference_database",
    "build_shared_graph",
    "collect_device_fingerprints",
    "fingerprint",
    "ja3_string",
]
