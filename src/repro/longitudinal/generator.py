"""Passive-trace generation: the two-year uncontrolled dataset (§4.1).

The study recorded testbed traffic from January 2018 through March 2020
(≈17M TLS connections; every device active for at least 6 months).  The
generator replays that period: for every (device, destination, month)
triple inside the device's activity window it performs a *real*
handshake against the genuine cloud server -- with the instance and
server configurations in effect that month -- and records the outcome
with a connection count drawn from the destination's weight.

Everything is seeded, so two runs yield identical captures.  ``scale``
sets connections-per-weight-unit-per-month; the default keeps analyses
fast, while benchmarks raise it toward the study's full volume.
"""

from __future__ import annotations

import random
from time import perf_counter

from .. import telemetry as _telemetry
from ..devices.catalog import passive_devices
from ..devices.device import Device
from ..devices.profile import STUDY_MONTHS, DestinationSpec, DeviceProfile, month_to_date
from ..pki.revocation import RevocationMethod
from ..roothistory.universe import RootStoreUniverse
from ..testbed.capture import (
    CaptureSink,
    FlowRecordChunker,
    GatewayCapture,
    RecordChunk,
    RevocationEvent,
    sink_add_batch,
)
from ..testbed.infrastructure import Testbed

__all__ = ["PassiveTraceGenerator", "DEFAULT_SCALE"]

#: Connections per unit of destination weight per month.
DEFAULT_SCALE = 40

_TELEMETRY = _telemetry.get()


class PassiveTraceGenerator:
    """Seeded generator of the longitudinal passive capture."""

    def __init__(
        self,
        testbed: Testbed | None = None,
        *,
        scale: int = DEFAULT_SCALE,
        seed: str = "iotls-passive",
        flow_cap: int | None = None,
    ) -> None:
        if flow_cap is not None and flow_cap < 1:
            raise ValueError(f"flow_cap must be >= 1 or None, got {flow_cap}")
        self.testbed = testbed or Testbed()
        self.scale = scale
        self.seed = seed
        #: Maximum connections per emitted flow record.  ``None`` keeps
        #: the classic batching (one record per device/destination/month
        #: handshake attempt); a cap splits batched flows via
        #: :class:`~repro.testbed.capture.FlowRecordChunker` so record
        #: volume tracks connection volume -- the paper-scale axis the
        #: streaming path is built for.
        self.flow_cap = flow_cap

    # ------------------------------------------------------------------
    def _flow_count(self, device: str, hostname: str, month: int, weight: float) -> int:
        rng = random.Random(f"{self.seed}:{device}:{hostname}:{month}")
        jitter = 0.7 + 0.6 * rng.random()
        return max(1, round(weight * self.scale * jitter))

    def _destination_active(self, destination: DestinationSpec, month: int) -> bool:
        if destination.active_months is None:
            return True
        first, last = destination.active_months
        return first <= month <= last

    # ------------------------------------------------------------------
    def generate_device_chunk(self, profile: DeviceProfile) -> RecordChunk:
        """Replay one device and return its columnar record chunk.

        This is the single copy of the month loop: handshakes happen
        here, base-record fields land in column lists (no per-flow
        :class:`~repro.testbed.capture.TrafficRecord` construction), and
        revocation side effects (CRL regeneration, OCSP responses) fire
        at the same month boundaries as always.  Every record-consuming
        path -- materialise, stream, parallel workers -- folds or
        expands the returned chunk.
        """
        device = self.testbed.device(profile)
        window = profile.longitudinal
        telemetry_on = _TELEMETRY.enabled
        hostnames: list[str] = []
        parties: list = []
        months: list[int] = []
        whens: list = []
        client_hellos: list = []
        establisheds: list[bool] = []
        established_versions: list = []
        established_cipher_codes: list = []
        client_alerts: list = []
        downgradeds: list[bool] = []
        counts: list[int] = []
        events: list[RevocationEvent] = []
        for month in range(STUDY_MONTHS):
            if not window.active_in(month):
                continue
            if telemetry_on:
                _TELEMETRY.registry.counter(
                    "iotls_trace_device_months_total",
                    "Active (device, month) cells replayed by the trace generator.",
                ).inc()
            when = month_to_date(month)
            for destination in profile.destinations:
                if not self._destination_active(destination, month):
                    continue
                server = self.testbed.server_for(destination)
                connection = device.connect_destination(
                    destination, server, month=month, when=when
                )
                count = self._flow_count(
                    profile.name, destination.hostname, month, destination.monthly_weight
                )
                hostname = destination.hostname
                party = destination.party
                for index, result in enumerate(connection.attempt.attempts):
                    alert = result.client_alert
                    hostnames.append(hostname)
                    parties.append(party)
                    months.append(month)
                    whens.append(when)
                    client_hellos.append(result.client_hello)
                    establisheds.append(result.established)
                    established_versions.append(result.established_version)
                    established_cipher_codes.append(result.established_cipher_code)
                    client_alerts.append(
                        alert.description.name.lower() if alert else None
                    )
                    downgradeds.append(index > 0)
                    counts.append(count)
            self._collect_revocation_events(profile, month, events)
        return RecordChunk(
            profile.name,
            hostnames=hostnames,
            parties=parties,
            months=months,
            whens=whens,
            client_hellos=client_hellos,
            establisheds=establisheds,
            established_versions=established_versions,
            established_cipher_codes=established_cipher_codes,
            client_alerts=client_alerts,
            downgradeds=downgradeds,
            counts=counts,
            revocation_events=events,
        )

    def generate_device(self, profile: DeviceProfile, capture: CaptureSink) -> None:
        """Replay one device into ``capture`` (records, then events)."""
        sink_add_batch(capture, self.generate_device_chunk(profile))

    def _collect_revocation_events(
        self, profile: DeviceProfile, month: int, events: list[RevocationEvent]
    ) -> None:
        """CRL fetches / OCSP queries the device's checking produces."""
        behavior = profile.revocation
        if behavior.uses_crl:
            registry = self.testbed.registry(0)
            registry.current_crl(when=month_to_date(month))
            events.append(
                RevocationEvent(
                    device=profile.name,
                    method=RevocationMethod.CRL,
                    url=registry.crl_url,
                    month=month,
                )
            )
        if behavior.uses_ocsp:
            registry = self.testbed.registry(0)
            registry.ocsp.respond(serial=1, when=month_to_date(month))
            events.append(
                RevocationEvent(
                    device=profile.name,
                    method=RevocationMethod.OCSP,
                    url=registry.ocsp_url,
                    month=month,
                )
            )

    def generate_device_instrumented(
        self, profile: DeviceProfile, capture: CaptureSink
    ) -> None:
        """:meth:`generate_device` inside the per-device telemetry envelope.

        The serial loop and the parallel workers both route through this
        method, so the span, counter, and event a device produces are
        identical whichever process replays it -- the property that makes
        merged parallel counter totals equal the serial ones.
        """
        if not _TELEMETRY.enabled:
            self.generate_device(profile, capture)
            return
        before = capture.records_seen
        with _TELEMETRY.tracer.span("trace.device", device=profile.name) as span:
            self.generate_device(profile, capture)
            span.annotate(flow_records=capture.records_seen - before)
        _TELEMETRY.registry.counter(
            "iotls_trace_devices_total", "Devices replayed by the trace generator."
        ).inc()
        _TELEMETRY.events.debug(
            "trace.device_complete",
            device=profile.name,
            flow_records=capture.records_seen - before,
        )

    def _device_chunk_instrumented(self, profile: DeviceProfile) -> RecordChunk:
        """:meth:`generate_device_chunk` in the per-device telemetry envelope.

        The streaming counterpart of :meth:`generate_device_instrumented`:
        same span, counter, and debug event, with ``flow_records`` equal
        to the chunk's base-record count -- exactly what the old staging
        capture would have reported before any flow-cap splitting.
        """
        if not _TELEMETRY.enabled:
            return self.generate_device_chunk(profile)
        with _TELEMETRY.tracer.span("trace.device", device=profile.name) as span:
            chunk = self.generate_device_chunk(profile)
            span.annotate(flow_records=len(chunk))
        _TELEMETRY.registry.counter(
            "iotls_trace_devices_total", "Devices replayed by the trace generator."
        ).inc()
        _TELEMETRY.events.debug(
            "trace.device_complete",
            device=profile.name,
            flow_records=len(chunk),
        )
        return chunk

    # ------------------------------------------------------------------
    def generate(self, *, workers: int = 1) -> GatewayCapture:
        """The full 27-month capture for all 40 devices.

        ``workers=1`` (the default) replays every device in-process,
        exactly as before.  ``workers>1`` shards the catalog across that
        many worker processes via :class:`repro.parallel.ShardedExecutor`
        and merges the per-device captures in catalog order; because
        every flow's RNG is keyed by ``(seed, device, hostname, month)``,
        the merged capture is byte-identical to the serial one.  Parallel
        workers rebuild the *default* testbed, so a generator constructed
        over a custom universe must run serially.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not _TELEMETRY.enabled:
            return self._generate(workers)

        tracer, registry, events = (
            _TELEMETRY.tracer,
            _TELEMETRY.registry,
            _TELEMETRY.events,
        )
        started = perf_counter()
        with tracer.span(
            "trace.generate", scale=self.scale, seed=self.seed, workers=workers
        ) as root:
            capture = self._generate(workers)
            root.annotate(flow_records=len(capture.records))
        elapsed = perf_counter() - started
        connections = sum(record.count for record in capture.records)
        registry.gauge(
            "iotls_trace_last_run_seconds", "Wall time of the last full trace generation."
        ).set(elapsed)
        throughput = len(capture.records) / elapsed if elapsed > 0 else 0.0
        registry.gauge(
            "iotls_trace_records_per_second",
            "Flow-record throughput of the last full trace generation.",
        ).set(throughput)
        events.info(
            "trace.complete",
            flow_records=len(capture.records),
            connections=connections,
            devices=len(capture.devices()),
            seconds=round(elapsed, 6),
            records_per_second=round(throughput, 1),
        )
        return capture

    def _generate(self, workers: int) -> GatewayCapture:
        if workers == 1:
            capture = GatewayCapture()
            target: CaptureSink = (
                capture
                if self.flow_cap is None
                else FlowRecordChunker(capture, self.flow_cap)
            )
            progress = _TELEMETRY.progress
            for profile in passive_devices():
                before = target.records_seen
                self.generate_device_instrumented(profile, target)
                if progress is not None:
                    progress.advance(
                        target.records_seen - before, stage="trace.device"
                    )
            return capture
        return self._generate_parallel(workers)

    def _generate_parallel(self, workers: int) -> GatewayCapture:
        """Shard the catalog across worker processes and merge in order."""
        from ..parallel import ShardedExecutor, TraceShardTask, run_trace_shard

        order = [profile.name for profile in passive_devices()]
        executor = ShardedExecutor(workers)
        # The dispatch span is the stitching anchor: the propagated
        # context snapshots the open span path (trace.generate;
        # parallel.dispatch), and merge re-parents worker spans there.
        with _TELEMETRY.tracer.span(
            "parallel.dispatch", workers=workers, devices=len(order)
        ):
            context = _TELEMETRY.tracer.propagation_context(
                "trace.generate", self.seed, self.scale, workers
            )
            tasks = [
                TraceShardTask(
                    worker_id=worker_id,
                    device_names=tuple(shard),
                    seed=self.seed,
                    scale=self.scale,
                    telemetry=_TELEMETRY.enabled,
                    event_level=_TELEMETRY.events.level,
                    # With a flow cap the parent re-ingests (and counts) the
                    # records post-split; workers must stage uncounted.
                    count_records=self.flow_cap is None,
                    trace_context=context.to_dict() if context is not None else None,
                )
                for worker_id, shard in enumerate(executor.shard(order))
            ]
            results = executor.map_tasks(run_trace_shard, tasks)
        if _TELEMETRY.enabled:
            _TELEMETRY.merge_worker_states([result.telemetry for result in results])
        shards = {
            device: capture for result in results for device, capture in result.captures
        }
        progress = _TELEMETRY.progress
        if progress is not None:
            for device in order:
                progress.advance(len(shards[device].records), stage="trace.device")
        if self.flow_cap is None:
            return GatewayCapture.merged(shards, order)
        capture = GatewayCapture()
        chunker = FlowRecordChunker(capture, self.flow_cap)
        for device in order:
            shard = shards[device]
            for record in shard.records:
                chunker.add(record)
            for event in shard.revocation_events:
                capture.add_revocation_event(event)
        return capture

    # ------------------------------------------------------------------
    def stream_into(self, sink: CaptureSink, *, workers: int = 1) -> None:
        """Stream the full capture into ``sink`` record by record.

        The streaming counterpart of :meth:`generate`: nothing is
        materialised here -- each device is replayed into one columnar
        :class:`~repro.testbed.capture.RecordChunk` (so the per-device
        span/event telemetry stays identical to the materialised path),
        folded into ``sink`` in records-then-events order via
        :func:`~repro.testbed.capture.sink_add_batch`, and dropped.
        Peak memory is one device's chunk, O(devices x months) cells,
        independent of ``scale`` and ``flow_cap``.

        ``workers>1`` runs one task per device on a persistent process
        pool (:meth:`repro.parallel.ShardedExecutor.imap_tasks`) and
        folds chunks home in catalog order, so the sink observes exactly
        the serial arrival order -- streaming output and run manifests
        are invariant under ``workers``, and match the materialised
        path's byte for byte.

        A ``flow_cap`` splits batched records just before ``sink`` --
        *virtually* on the columnar path: the chunker stamps the cap on
        each chunk and batch-aware sinks account for split
        multiplicities arithmetically, while record-by-record sinks see
        bounded-``count`` records expanded lazily.  Chunks hold
        pre-split base records and stay scale-independent either way.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        target: CaptureSink = (
            sink if self.flow_cap is None else FlowRecordChunker(sink, self.flow_cap)
        )
        if not _TELEMETRY.enabled:
            self._stream(target, workers)
            return

        tracer, registry, events = (
            _TELEMETRY.tracer,
            _TELEMETRY.registry,
            _TELEMETRY.events,
        )
        before = sink.records_seen
        started = perf_counter()
        with tracer.span(
            "trace.stream", scale=self.scale, seed=self.seed, workers=workers
        ) as root:
            peak_staged = self._stream(target, workers)
            root.annotate(flow_records=sink.records_seen - before)
        elapsed = perf_counter() - started
        streamed = sink.records_seen - before
        throughput = streamed / elapsed if elapsed > 0 else 0.0
        # Streaming instrumentation is gauges only: gauges are excluded
        # from the manifest's deterministic-metrics slice, which is what
        # keeps streaming and materialised manifests byte-identical.
        registry.gauge(
            "iotls_trace_last_run_seconds", "Wall time of the last full trace generation."
        ).set(elapsed)
        registry.gauge(
            "iotls_stream_records_per_second",
            "Flow-record throughput of the last streaming trace run.",
        ).set(throughput)
        registry.gauge(
            "iotls_stream_peak_staged_records",
            "Largest per-device staging buffer of the last streaming run "
            "(the stream's memory high-water mark, in records).",
        ).set(float(peak_staged))
        events.info(
            "trace.stream_complete",
            flow_records=streamed,
            seconds=round(elapsed, 6),
            records_per_second=round(throughput, 1),
            peak_staged_records=peak_staged,
        )

    def _stream(self, target: CaptureSink, workers: int) -> int:
        """Feed ``target`` device by device; returns the peak staging depth."""
        if workers > 1:
            return self._stream_parallel(target, workers)
        peak = 0
        progress = _TELEMETRY.progress
        for profile in passive_devices():
            chunk = self._device_chunk_instrumented(profile)
            peak = max(peak, len(chunk))
            sink_add_batch(target, chunk)
            # Record counts flow through the stream's ProgressSink; here
            # only the per-device staging stage is tallied.
            if progress is not None:
                progress.advance(0, stage="trace.device")
        return peak

    def _stream_parallel(self, target: CaptureSink, workers: int) -> int:
        """One task per device on a persistent pool, folded in catalog order."""
        from ..parallel import ShardedExecutor, TraceChunkTask, run_trace_chunk

        order = [profile.name for profile in passive_devices()]
        executor = ShardedExecutor(workers)
        states = []
        peak = 0
        progress = _TELEMETRY.progress
        # The dispatch span wraps task fan-out *and* the fold loop (the
        # coordinator streams chunks home as they finish); the context it
        # anchors re-parents every chunk.run under trace.stream;
        # parallel.dispatch on merge.
        with _TELEMETRY.tracer.span(
            "parallel.dispatch", workers=workers, devices=len(order)
        ):
            context = _TELEMETRY.tracer.propagation_context(
                "trace.stream", self.seed, self.scale, workers
            )
            tasks = [
                TraceChunkTask(
                    index=index,
                    device_name=name,
                    seed=self.seed,
                    scale=self.scale,
                    telemetry=_TELEMETRY.enabled,
                    event_level=_TELEMETRY.events.level,
                    trace_context=context.to_dict() if context is not None else None,
                )
                for index, name in enumerate(order)
            ]
            for result in executor.imap_tasks(run_trace_chunk, tasks):
                chunk = result.chunk
                peak = max(peak, len(chunk))
                sink_add_batch(target, chunk)
                if result.telemetry is not None:
                    states.append(result.telemetry)
                if progress is not None:
                    progress.advance(0, stage="trace.device")
        if _TELEMETRY.enabled and states:
            _TELEMETRY.merge_worker_states(states)
        return peak
