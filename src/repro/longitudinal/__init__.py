"""Longitudinal passive-trace generation and monthly analyses."""

from .adoption import (
    AdoptionEvent,
    AdoptionKind,
    detect_adoption_events,
    detect_adoption_events_from_heatmaps,
    month_label,
)
from .generator import DEFAULT_SCALE, PassiveTraceGenerator
from .heatmaps import (
    DeviceMonthSeries,
    FractionHeatmap,
    FractionHeatmapAccumulator,
    FractionSeriesAccumulator,
    VersionHeatmap,
    VersionHeatmapAccumulator,
    build_insecure_advertised_heatmap,
    build_strong_established_heatmap,
    build_version_heatmap,
    insecure_advertised_accumulator,
    strong_established_accumulator,
)

__all__ = [
    "AdoptionEvent",
    "AdoptionKind",
    "DEFAULT_SCALE",
    "DeviceMonthSeries",
    "FractionHeatmap",
    "FractionHeatmapAccumulator",
    "FractionSeriesAccumulator",
    "PassiveTraceGenerator",
    "VersionHeatmap",
    "VersionHeatmapAccumulator",
    "build_insecure_advertised_heatmap",
    "build_strong_established_heatmap",
    "build_version_heatmap",
    "detect_adoption_events",
    "detect_adoption_events_from_heatmaps",
    "insecure_advertised_accumulator",
    "month_label",
    "strong_established_accumulator",
]
