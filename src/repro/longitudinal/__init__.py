"""Longitudinal passive-trace generation and monthly analyses."""

from .adoption import AdoptionEvent, AdoptionKind, detect_adoption_events, month_label
from .generator import DEFAULT_SCALE, PassiveTraceGenerator
from .heatmaps import (
    DeviceMonthSeries,
    FractionHeatmap,
    VersionHeatmap,
    build_insecure_advertised_heatmap,
    build_strong_established_heatmap,
    build_version_heatmap,
)

__all__ = [
    "AdoptionEvent",
    "AdoptionKind",
    "DEFAULT_SCALE",
    "DeviceMonthSeries",
    "FractionHeatmap",
    "PassiveTraceGenerator",
    "VersionHeatmap",
    "build_insecure_advertised_heatmap",
    "build_strong_established_heatmap",
    "build_version_heatmap",
    "detect_adoption_events",
    "month_label",
]
