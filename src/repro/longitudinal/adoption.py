"""Adoption/deprecation event detection over the longitudinal capture.

§5.1 dates several behaviour changes (Apple TV and Google Home Mini
moving to TLS 1.3 in 5/2019; Blink Hub to TLS 1.2 in 7/2018; Blink Hub
and SmartThings dropping weak ciphers in 5/2019 and 3/2020; five devices
adopting forward secrecy).  This module re-detects those events from the
capture alone: a change event is the first month where a device's
fraction series crosses a threshold and stays across it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..testbed.capture import GatewayCapture
from ..tls.versions import VersionBand
from .heatmaps import (
    DeviceMonthSeries,
    FractionHeatmap,
    VersionHeatmap,
    build_insecure_advertised_heatmap,
    build_strong_established_heatmap,
    build_version_heatmap,
)

__all__ = [
    "AdoptionKind",
    "AdoptionEvent",
    "detect_adoption_events",
    "detect_adoption_events_from_heatmaps",
    "month_label",
]

_CROSS = 0.5  # a change of majority behaviour
# Hysteresis: monthly connection mixes jitter, so an adoption event must
# move from clearly-low to clearly-high (or vice versa), not just wobble
# around the majority line.
_LOW = 0.35
_HIGH = 0.65


def month_label(month: int) -> str:
    """Render a study month index as the paper's M/YYYY style."""
    return f"{month % 12 + 1}/{2018 + month // 12}"


class AdoptionKind(Enum):
    TLS13_ADOPTED = "advertises TLS 1.3"
    TLS12_ADOPTED = "advertises TLS 1.2 (was older)"
    WEAK_CIPHERS_DROPPED = "stops advertising insecure ciphersuites"
    WEAK_CIPHERS_ADDED = "increases insecure-ciphersuite advertisement"
    FORWARD_SECRECY_ADOPTED = "establishes forward-secret connections"


@dataclass(frozen=True)
class AdoptionEvent:
    device: str
    kind: AdoptionKind
    month: int

    def describe(self) -> str:
        return f"{self.device}: {self.kind.value} from {month_label(self.month)}"


def _sustained_crossing(series: DeviceMonthSeries, *, rising: bool) -> int | None:
    """First month the series moves decisively across 0.5 for good.

    The crossing must (a) start from the clearly-opposite side
    (hysteresis against month-to-month volume jitter), (b) reach the
    clearly-new side, and (c) never return across the majority line.
    """
    values = series.values
    was_opposite = False
    crossing = None
    for month, value in enumerate(values):
        if value is None:
            continue
        if rising:
            if value <= _LOW:
                was_opposite = True
                crossing = None
            elif value >= _HIGH and was_opposite and crossing is None:
                crossing = month
            elif value < _CROSS:
                crossing = None
        else:
            if value >= 1 - _LOW:
                was_opposite = True
                crossing = None
            elif value <= 1 - _HIGH and was_opposite and crossing is None:
                crossing = month
            elif value > _CROSS:
                crossing = None
    return crossing


def detect_adoption_events(capture: GatewayCapture) -> list[AdoptionEvent]:
    """All sustained majority-behaviour changes in the capture."""
    return detect_adoption_events_from_heatmaps(
        build_version_heatmap(capture),
        build_insecure_advertised_heatmap(capture),
        build_strong_established_heatmap(capture),
    )


def detect_adoption_events_from_heatmaps(
    versions: VersionHeatmap,
    insecure: FractionHeatmap,
    strong: FractionHeatmap,
) -> list[AdoptionEvent]:
    """Detect events from already-built heatmaps.

    The streaming pipeline builds all three heatmaps incrementally and
    finalizes them once; this entry point lets it share the detection
    logic without re-materialising the capture.
    """
    events: list[AdoptionEvent] = []

    for device, series in versions.advertised[VersionBand.TLS_1_3].items():
        month = _sustained_crossing(series, rising=True)
        if month is not None:
            events.append(AdoptionEvent(device, AdoptionKind.TLS13_ADOPTED, month))
    for device, series in versions.advertised[VersionBand.TLS_1_2].items():
        month = _sustained_crossing(series, rising=True)
        if month is not None and not any(
            e.device == device and e.kind is AdoptionKind.TLS13_ADOPTED for e in events
        ):
            events.append(AdoptionEvent(device, AdoptionKind.TLS12_ADOPTED, month))

    for device, series in insecure.series.items():
        month = _sustained_crossing(series, rising=False)
        if month is not None:
            events.append(AdoptionEvent(device, AdoptionKind.WEAK_CIPHERS_DROPPED, month))
        month_up = _sustained_crossing(series, rising=True)
        if month_up is not None:
            events.append(AdoptionEvent(device, AdoptionKind.WEAK_CIPHERS_ADDED, month_up))

    for device, series in strong.series.items():
        month = _sustained_crossing(series, rising=True)
        if month is not None:
            events.append(AdoptionEvent(device, AdoptionKind.FORWARD_SECRECY_ADOPTED, month))

    return sorted(events, key=lambda e: (e.month, e.device))
