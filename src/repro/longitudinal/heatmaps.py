"""Monthly heatmap matrices for Figures 1, 2 and 3.

Each figure is a (device x month) grid of connection fractions:

* Figure 1 -- for each device, *three* rows (TLS 1.3 / TLS 1.2 / older),
  separately for versions **advertised** in ClientHellos and versions
  **established** in ServerHellos,
* Figure 2 -- fraction of connections whose ClientHello advertises an
  insecure ciphersuite (DES / 3DES / RC4 / EXPORT); lower is better,
* Figure 3 -- fraction of established connections using a forward-secret
  (DHE / ECDHE / TLS 1.3) suite; higher is better.

Cells for months where a device produced no traffic are ``None`` (the
paper's gray cells).  The "not shown" filters reproduce the figures'
device-selection rules (e.g. the 28 devices that used TLS 1.2 for the
vast majority of advertised *and* established connections are omitted
from Figure 1).

Every heatmap is built by an *incremental accumulator*
(:class:`FractionSeriesAccumulator` and the figure-specific wrappers):
state is O(devices x months) integer tallies, fed one record at a time
in any order.  The batch ``build_*`` entry points are one-pass folds
over a materialised capture's record stream, so the streaming pipeline
and the batch API are equivalent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..devices.profile import STUDY_MONTHS
from ..testbed.capture import GatewayCapture, TrafficRecord
from ..tls.ciphersuites import REGISTRY
from ..tls.versions import VersionBand

__all__ = [
    "DeviceMonthSeries",
    "VersionHeatmap",
    "FractionHeatmap",
    "FractionSeriesAccumulator",
    "VersionHeatmapAccumulator",
    "FractionHeatmapAccumulator",
    "insecure_advertised_accumulator",
    "strong_established_accumulator",
    "month_tally",
    "build_version_heatmap",
    "build_insecure_advertised_heatmap",
    "build_strong_established_heatmap",
]

#: Threshold for "vast majority" when filtering devices out of a figure.
_VAST_MAJORITY = 0.95

#: Exact residual fraction at which a device becomes "shown": computing
#: it as ``1 - _VAST_MAJORITY`` leaves a float residue
#: (0.05000000000000004) that silently excludes exact-boundary devices.
_SHOWN_RESIDUAL = 0.05


def _crosses(value: float, threshold: float, *, from_below: bool = True) -> bool:
    """The shared, *inclusive* shown-side comparison for figure filters.

    Every figure hides devices that stay strictly on the "good" side of
    its threshold; a device sitting exactly on the threshold is shown.
    """
    return value >= threshold if from_below else value <= threshold


def month_tally(months, counts, mask=None) -> np.ndarray:
    """Count-weighted per-month sums: int64, length ``STUDY_MONTHS``.

    ``months``/``counts`` are parallel int64 arrays (one slot per base
    record); ``mask`` restricts the tally to the records it selects.
    Integer scatter-adds, so the sums are exact -- the vectorised
    equivalent of the accumulators' dict tallies.
    """
    tally = np.zeros(STUDY_MONTHS, dtype=np.int64)
    if mask is not None:
        months = months[mask]
        counts = counts[mask]
    np.add.at(tally, months, counts)
    return tally


@dataclass
class DeviceMonthSeries:
    """One device's monthly fraction series (None = no traffic)."""

    device: str
    values: list[float | None] = field(default_factory=lambda: [None] * STUDY_MONTHS)

    def active_values(self) -> list[float]:
        return [v for v in self.values if v is not None]

    def max_fraction(self) -> float:
        active = self.active_values()
        return max(active) if active else 0.0

    def first_month_reaching(self, threshold: float) -> int | None:
        """First month where the fraction reaches ``threshold`` (event
        detection for the adoption analyses)."""
        for month, value in enumerate(self.values):
            if value is not None and value >= threshold:
                return month
        return None

    def last_month_reaching(self, threshold: float) -> int | None:
        last = None
        for month, value in enumerate(self.values):
            if value is not None and value >= threshold:
                last = month
        return last


class FractionSeriesAccumulator:
    """Incremental per-device monthly fraction of records satisfying
    ``predicate``.

    Order-independent: tallies are count-weighted integer sums per
    (device, month), so feeding records in any order yields the same
    series.  A device that produced traffic but never passed the
    ``denominator_predicate`` still appears, with an all-``None``
    series -- exactly what a grouped pass over a materialised capture
    produces.
    """

    def __init__(self, predicate, *, denominator_predicate=None) -> None:
        self._predicate = predicate
        self._denominator = denominator_predicate
        self._totals: dict[tuple[str, int], int] = {}
        self._hits: dict[tuple[str, int], int] = {}
        self._device_names: set[str] = set()

    def add(self, record: TrafficRecord) -> None:
        self._device_names.add(record.device)
        if self._denominator is not None and not self._denominator(record):
            return
        key = (record.device, record.month)
        self._totals[key] = self._totals.get(key, 0) + record.count
        if self._predicate(record):
            self._hits[key] = self._hits.get(key, 0) + record.count

    def bulk_tally(self, device: str, totals, hits) -> None:
        """Fold one device's per-month weight arrays in one call.

        ``totals`` and ``hits`` are length-``STUDY_MONTHS`` integer
        arrays of count-weighted sums, already filtered through this
        accumulator's denominator and predicate by the caller (the
        vectorised chunk path).  Months with zero total leave their
        cell untouched, exactly like a run of :meth:`add` calls that
        never passed the denominator.
        """
        self._device_names.add(device)
        t, h = self._totals, self._hits
        for month in np.flatnonzero(totals):
            key = (device, int(month))
            t[key] = t.get(key, 0) + int(totals[month])
            hit = int(hits[month])
            if hit:
                h[key] = h.get(key, 0) + hit

    @property
    def devices(self) -> list[str]:
        return sorted(self._device_names)

    def series(self) -> dict[str, DeviceMonthSeries]:
        series = {
            device: DeviceMonthSeries(device=device) for device in self._device_names
        }
        for (device, month), total in self._totals.items():
            series[device].values[month] = self._hits.get((device, month), 0) / total
        return series


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

@dataclass
class VersionHeatmap:
    """Figure 1's data: per-band advertised and established series."""

    advertised: dict[VersionBand, dict[str, DeviceMonthSeries]]
    established: dict[VersionBand, dict[str, DeviceMonthSeries]]
    devices: list[str]

    def shown_devices(self) -> list[str]:
        """Devices that did NOT use TLS 1.2 (near-)exclusively."""
        shown = []
        for device in self.devices:
            non12 = 0.0
            for band in (VersionBand.TLS_1_3, VersionBand.OLDER):
                for table in (self.advertised, self.established):
                    series = table[band].get(device)
                    if series is not None:
                        non12 = max(non12, series.max_fraction())
            if _crosses(non12, _SHOWN_RESIDUAL):
                shown.append(device)
        return shown

    def hidden_devices(self) -> list[str]:
        """The paper's "28 devices ... not shown in this figure"."""
        shown = set(self.shown_devices())
        return [device for device in self.devices if device not in shown]

    def matrix(self, band: VersionBand, *, established: bool) -> np.ndarray:
        """(device x month) array with NaN for no-traffic cells."""
        table = self.established if established else self.advertised
        rows = []
        for device in self.devices:
            series = table[band].get(device, DeviceMonthSeries(device))
            rows.append([np.nan if v is None else v for v in series.values])
        return np.array(rows, dtype=float)


def _is_established(record: TrafficRecord) -> bool:
    return record.established


class VersionHeatmapAccumulator:
    """Single-pass incremental builder for Figure 1's version heatmap."""

    def __init__(self) -> None:
        self._advertised = {
            band: FractionSeriesAccumulator(
                lambda r, b=band: r.advertised_max_version.band is b
            )
            for band in VersionBand
        }
        self._established = {
            band: FractionSeriesAccumulator(
                lambda r, b=band: r.established_version is not None
                and r.established_version.band is b,
                denominator_predicate=_is_established,
            )
            for band in VersionBand
        }
        self._device_names: set[str] = set()

    def add(self, record: TrafficRecord) -> None:
        self._device_names.add(record.device)
        for accumulator in self._advertised.values():
            accumulator.add(record)
        for accumulator in self._established.values():
            accumulator.add(record)

    def add_batch(
        self, device: str, months, counts, adv_band, est_mask, est_band
    ) -> None:
        """Fold one device chunk's worth of pre-extracted version features.

        ``adv_band``/``est_band`` hold each base record's advertised /
        established :class:`VersionBand` as an index into
        ``list(VersionBand)`` (-1 for not-established); ``est_mask`` is
        the established denominator.  Tallies land exactly where
        per-record :meth:`add` calls would put them.
        """
        self._device_names.add(device)
        adv_totals = month_tally(months, counts)
        est_totals = month_tally(months, counts, est_mask)
        for index, band in enumerate(VersionBand):
            self._advertised[band].bulk_tally(
                device, adv_totals, month_tally(months, counts, adv_band == index)
            )
            self._established[band].bulk_tally(
                device,
                est_totals,
                month_tally(months, counts, est_mask & (est_band == index)),
            )

    def finalize(self) -> VersionHeatmap:
        return VersionHeatmap(
            advertised={band: acc.series() for band, acc in self._advertised.items()},
            established={band: acc.series() for band, acc in self._established.items()},
            devices=sorted(self._device_names),
        )


def build_version_heatmap(capture: GatewayCapture) -> VersionHeatmap:
    accumulator = VersionHeatmapAccumulator()
    for record in capture.iter_records():
        accumulator.add(record)
    return accumulator.finalize()


# ---------------------------------------------------------------------------
# Figures 2 and 3
# ---------------------------------------------------------------------------

@dataclass
class FractionHeatmap:
    """A single (device x month) fraction grid with a shown/hidden rule."""

    series: dict[str, DeviceMonthSeries]
    devices: list[str]
    #: Devices are hidden when their max monthly fraction stays on the
    #: "good" side of this threshold...
    threshold: float
    #: ...where "good" means below the threshold (Fig 2) or above it (Fig 3).
    hide_when_low: bool

    def shown_devices(self) -> list[str]:
        shown = []
        for device in self.devices:
            series = self.series.get(device)
            if series is None:
                continue
            active = series.active_values()
            if not active:
                continue
            extreme = max(active) if self.hide_when_low else min(active)
            if _crosses(extreme, self.threshold, from_below=self.hide_when_low):
                shown.append(device)
        return shown

    def hidden_devices(self) -> list[str]:
        shown = set(self.shown_devices())
        return [device for device in self.devices if device not in shown]

    def matrix(self) -> np.ndarray:
        rows = []
        for device in self.devices:
            series = self.series.get(device, DeviceMonthSeries(device))
            rows.append([np.nan if v is None else v for v in series.values])
        return np.array(rows, dtype=float)


def _advertises_insecure(record: TrafficRecord) -> bool:
    return record.client_hello.advertises_insecure_cipher


def _established_strong(record: TrafficRecord) -> bool:
    code = record.established_cipher_code
    return code is not None and REGISTRY[code].forward_secret


class FractionHeatmapAccumulator:
    """Incremental builder for a single-fraction heatmap (Figures 2/3)."""

    def __init__(
        self, predicate, *, denominator_predicate=None, threshold: float, hide_when_low: bool
    ) -> None:
        self._accumulator = FractionSeriesAccumulator(
            predicate, denominator_predicate=denominator_predicate
        )
        self.threshold = threshold
        self.hide_when_low = hide_when_low

    def add(self, record: TrafficRecord) -> None:
        self._accumulator.add(record)

    def bulk_tally(self, device: str, totals, hits) -> None:
        """See :meth:`FractionSeriesAccumulator.bulk_tally`."""
        self._accumulator.bulk_tally(device, totals, hits)

    def finalize(self) -> FractionHeatmap:
        return FractionHeatmap(
            series=self._accumulator.series(),
            devices=self._accumulator.devices,
            threshold=self.threshold,
            hide_when_low=self.hide_when_low,
        )


def insecure_advertised_accumulator() -> FractionHeatmapAccumulator:
    """Figure 2's accumulator (see :func:`build_insecure_advertised_heatmap`)."""
    return FractionHeatmapAccumulator(
        _advertises_insecure, threshold=0.05, hide_when_low=True
    )


def strong_established_accumulator() -> FractionHeatmapAccumulator:
    """Figure 3's accumulator (see :func:`build_strong_established_heatmap`)."""
    return FractionHeatmapAccumulator(
        _established_strong,
        denominator_predicate=_is_established,
        threshold=_VAST_MAJORITY,
        hide_when_low=False,
    )


def _fold(accumulator, capture: GatewayCapture) -> FractionHeatmap:
    for record in capture.iter_records():
        accumulator.add(record)
    return accumulator.finalize()


def build_insecure_advertised_heatmap(capture: GatewayCapture) -> FractionHeatmap:
    """Figure 2: devices *advertising* insecure suites (lower is better).

    Devices that rarely advertise such suites (max monthly fraction
    under 5%) are not shown, matching the figure's "6 devices ... not
    shown" rule.
    """
    return _fold(insecure_advertised_accumulator(), capture)


def build_strong_established_heatmap(capture: GatewayCapture) -> FractionHeatmap:
    """Figure 3: devices *establishing* forward-secret suites (higher is
    better).  Devices whose connections are virtually always strong are
    not shown ("18 devices ... not shown")."""
    return _fold(strong_established_accumulator(), capture)
