"""Monthly heatmap matrices for Figures 1, 2 and 3.

Each figure is a (device x month) grid of connection fractions:

* Figure 1 -- for each device, *three* rows (TLS 1.3 / TLS 1.2 / older),
  separately for versions **advertised** in ClientHellos and versions
  **established** in ServerHellos,
* Figure 2 -- fraction of connections whose ClientHello advertises an
  insecure ciphersuite (DES / 3DES / RC4 / EXPORT); lower is better,
* Figure 3 -- fraction of established connections using a forward-secret
  (DHE / ECDHE / TLS 1.3) suite; higher is better.

Cells for months where a device produced no traffic are ``None`` (the
paper's gray cells).  The "not shown" filters reproduce the figures'
device-selection rules (e.g. the 28 devices that used TLS 1.2 for the
vast majority of advertised *and* established connections are omitted
from Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..devices.profile import STUDY_MONTHS
from ..testbed.capture import GatewayCapture, TrafficRecord
from ..tls.ciphersuites import REGISTRY
from ..tls.versions import VersionBand

__all__ = [
    "DeviceMonthSeries",
    "VersionHeatmap",
    "FractionHeatmap",
    "build_version_heatmap",
    "build_insecure_advertised_heatmap",
    "build_strong_established_heatmap",
]

#: Threshold for "vast majority" when filtering devices out of a figure.
_VAST_MAJORITY = 0.95

#: Exact residual fraction at which a device becomes "shown": computing
#: it as ``1 - _VAST_MAJORITY`` leaves a float residue
#: (0.05000000000000004) that silently excludes exact-boundary devices.
_SHOWN_RESIDUAL = 0.05


def _crosses(value: float, threshold: float, *, from_below: bool = True) -> bool:
    """The shared, *inclusive* shown-side comparison for figure filters.

    Every figure hides devices that stay strictly on the "good" side of
    its threshold; a device sitting exactly on the threshold is shown.
    """
    return value >= threshold if from_below else value <= threshold


@dataclass
class DeviceMonthSeries:
    """One device's monthly fraction series (None = no traffic)."""

    device: str
    values: list[float | None] = field(default_factory=lambda: [None] * STUDY_MONTHS)

    def active_values(self) -> list[float]:
        return [v for v in self.values if v is not None]

    def max_fraction(self) -> float:
        active = self.active_values()
        return max(active) if active else 0.0

    def first_month_reaching(self, threshold: float) -> int | None:
        """First month where the fraction reaches ``threshold`` (event
        detection for the adoption analyses)."""
        for month, value in enumerate(self.values):
            if value is not None and value >= threshold:
                return month
        return None

    def last_month_reaching(self, threshold: float) -> int | None:
        last = None
        for month, value in enumerate(self.values):
            if value is not None and value >= threshold:
                last = month
        return last


def _group_by_device_month(
    capture: GatewayCapture,
) -> dict[str, dict[int, list[TrafficRecord]]]:
    grouped: dict[str, dict[int, list[TrafficRecord]]] = {}
    for record in capture.records:
        grouped.setdefault(record.device, {}).setdefault(record.month, []).append(record)
    return grouped


def _fraction_series(
    capture: GatewayCapture,
    predicate,
    *,
    denominator_predicate=None,
) -> dict[str, DeviceMonthSeries]:
    """Per-device monthly fraction of records satisfying ``predicate``."""
    series: dict[str, DeviceMonthSeries] = {}
    for device, months in _group_by_device_month(capture).items():
        device_series = DeviceMonthSeries(device=device)
        for month, records in months.items():
            if denominator_predicate is not None:
                records = [r for r in records if denominator_predicate(r)]
            total = sum(r.count for r in records)
            if total == 0:
                continue
            hits = sum(r.count for r in records if predicate(r))
            device_series.values[month] = hits / total
        series[device] = device_series
    return series


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

@dataclass
class VersionHeatmap:
    """Figure 1's data: per-band advertised and established series."""

    advertised: dict[VersionBand, dict[str, DeviceMonthSeries]]
    established: dict[VersionBand, dict[str, DeviceMonthSeries]]
    devices: list[str]

    def shown_devices(self) -> list[str]:
        """Devices that did NOT use TLS 1.2 (near-)exclusively."""
        shown = []
        for device in self.devices:
            non12 = 0.0
            for band in (VersionBand.TLS_1_3, VersionBand.OLDER):
                for table in (self.advertised, self.established):
                    series = table[band].get(device)
                    if series is not None:
                        non12 = max(non12, series.max_fraction())
            if _crosses(non12, _SHOWN_RESIDUAL):
                shown.append(device)
        return shown

    def hidden_devices(self) -> list[str]:
        """The paper's "28 devices ... not shown in this figure"."""
        shown = set(self.shown_devices())
        return [device for device in self.devices if device not in shown]

    def matrix(self, band: VersionBand, *, established: bool) -> np.ndarray:
        """(device x month) array with NaN for no-traffic cells."""
        table = self.established if established else self.advertised
        rows = []
        for device in self.devices:
            series = table[band].get(device, DeviceMonthSeries(device))
            rows.append([np.nan if v is None else v for v in series.values])
        return np.array(rows, dtype=float)


def build_version_heatmap(capture: GatewayCapture) -> VersionHeatmap:
    advertised = {}
    established = {}
    for band in VersionBand:
        advertised[band] = _fraction_series(
            capture, lambda r, b=band: r.advertised_max_version.band is b
        )
        established[band] = _fraction_series(
            capture,
            lambda r, b=band: r.established_version is not None
            and r.established_version.band is b,
            denominator_predicate=lambda r: r.established,
        )
    return VersionHeatmap(
        advertised=advertised, established=established, devices=capture.devices()
    )


# ---------------------------------------------------------------------------
# Figures 2 and 3
# ---------------------------------------------------------------------------

@dataclass
class FractionHeatmap:
    """A single (device x month) fraction grid with a shown/hidden rule."""

    series: dict[str, DeviceMonthSeries]
    devices: list[str]
    #: Devices are hidden when their max monthly fraction stays on the
    #: "good" side of this threshold...
    threshold: float
    #: ...where "good" means below the threshold (Fig 2) or above it (Fig 3).
    hide_when_low: bool

    def shown_devices(self) -> list[str]:
        shown = []
        for device in self.devices:
            series = self.series.get(device)
            if series is None:
                continue
            active = series.active_values()
            if not active:
                continue
            extreme = max(active) if self.hide_when_low else min(active)
            if _crosses(extreme, self.threshold, from_below=self.hide_when_low):
                shown.append(device)
        return shown

    def hidden_devices(self) -> list[str]:
        shown = set(self.shown_devices())
        return [device for device in self.devices if device not in shown]

    def matrix(self) -> np.ndarray:
        rows = []
        for device in self.devices:
            series = self.series.get(device, DeviceMonthSeries(device))
            rows.append([np.nan if v is None else v for v in series.values])
        return np.array(rows, dtype=float)


def _advertises_insecure(record: TrafficRecord) -> bool:
    return record.client_hello.advertises_insecure_cipher


def _established_strong(record: TrafficRecord) -> bool:
    code = record.established_cipher_code
    return code is not None and REGISTRY[code].forward_secret


def build_insecure_advertised_heatmap(capture: GatewayCapture) -> FractionHeatmap:
    """Figure 2: devices *advertising* insecure suites (lower is better).

    Devices that rarely advertise such suites (max monthly fraction
    under 5%) are not shown, matching the figure's "6 devices ... not
    shown" rule.
    """
    return FractionHeatmap(
        series=_fraction_series(capture, _advertises_insecure),
        devices=capture.devices(),
        threshold=0.05,
        hide_when_low=True,
    )


def build_strong_established_heatmap(capture: GatewayCapture) -> FractionHeatmap:
    """Figure 3: devices *establishing* forward-secret suites (higher is
    better).  Devices whose connections are virtually always strong are
    not shown ("18 devices ... not shown")."""
    return FractionHeatmap(
        series=_fraction_series(
            capture, _established_strong, denominator_predicate=lambda r: r.established
        ),
        devices=capture.devices(),
        threshold=_VAST_MAJORITY,
        hide_when_low=False,
    )
