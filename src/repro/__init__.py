"""IoTLS reproduction library.

A full, simulation-backed reproduction of *IoTLS: Understanding TLS Usage
in Consumer IoT Devices* (Paracha et al., ACM IMC 2021): simulated PKI and
TLS substrates, behavioural models of the paper's 40-device testbed, an
interception proxy, the TLS-alert root-store probing technique, TLS
fingerprinting, and a longitudinal analysis pipeline that regenerates
every table and figure in the paper's evaluation.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"


def __getattr__(name):
    """Lazy top-level conveniences: ``repro.Testbed``, ``repro.Device``,
    ``repro.ActiveExperimentCampaign``, ``repro.RootStoreProber``,
    ``repro.PassiveTraceGenerator`` -- imported on first use so that
    ``import repro`` stays instant."""
    lazy = {
        "Testbed": ("repro.testbed", "Testbed"),
        "SmartPlug": ("repro.testbed", "SmartPlug"),
        "Device": ("repro.devices", "Device"),
        "ActiveExperimentCampaign": ("repro.core", "ActiveExperimentCampaign"),
        "RootStoreProber": ("repro.core", "RootStoreProber"),
        "InterceptionAuditor": ("repro.core", "InterceptionAuditor"),
        "DowngradeAuditor": ("repro.core", "DowngradeAuditor"),
        "PassiveTraceGenerator": ("repro.longitudinal", "PassiveTraceGenerator"),
        "build_catalog": ("repro.devices", "build_catalog"),
        "build_default_universe": ("repro.roothistory", "build_default_universe"),
        "RunConfig": ("repro.api", "RunConfig"),
        "run_trace": ("repro.api", "run_trace"),
        "run_audit": ("repro.api", "run_audit"),
        "run_probe": ("repro.api", "run_probe"),
        "run_report": ("repro.api", "run_report"),
        "run_pcap": ("repro.api", "run_pcap"),
    }
    if name in lazy:
        import importlib

        module_name, attribute = lazy[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
