"""Catalog of the six simulated TLS libraries measured in Table 4.

| Library                        | known CA, invalid signature | unknown CA          | amenable |
|--------------------------------|-----------------------------|---------------------|----------|
| MbedTLS (v2.21.0)              | Bad Certificate             | Unknown CA          | yes      |
| OpenSSL (v1.1.1i)              | Decrypt Error               | Unknown CA          | yes      |
| Oracle Java (v18.0)            | Certificate Unknown         | Certificate Unknown | no       |
| WolfSSL (v4.1.0)               | Bad Certificate             | Bad Certificate     | no       |
| GNU TLS (v3.6.15)              | (no alert)                  | (no alert)          | no       |
| Secure Transport (macOS 11.3)  | (no alert)                  | (no alert)          | no       |

The extension dialects differ per library so that hellos -- and hence
fingerprints -- are library-distinctive, mirroring how the Kotzias et al.
database can label traffic with the generating application.
"""

from __future__ import annotations

from ..tls.alerts import AlertDescription
from ..tls.extensions import ExtensionType
from .library import AlertPolicy, TLSLibrary

__all__ = [
    "MBEDTLS",
    "OPENSSL",
    "ORACLE_JAVA",
    "WOLFSSL",
    "GNUTLS",
    "SECURE_TRANSPORT",
    "ALL_LIBRARIES",
    "by_name",
]

MBEDTLS = TLSLibrary(
    name="MbedTLS",
    version="2.21.0",
    alert_policy=AlertPolicy(
        on_unknown_ca=AlertDescription.UNKNOWN_CA,
        on_bad_signature=AlertDescription.BAD_CERTIFICATE,
    ),
    extension_dialect=(
        ExtensionType.SUPPORTED_GROUPS,
        ExtensionType.EC_POINT_FORMATS,
        ExtensionType.SIGNATURE_ALGORITHMS,
        ExtensionType.ENCRYPT_THEN_MAC,
        ExtensionType.EXTENDED_MASTER_SECRET,
    ),
)

OPENSSL = TLSLibrary(
    name="OpenSSL",
    version="1.1.1i",
    alert_policy=AlertPolicy(
        on_unknown_ca=AlertDescription.UNKNOWN_CA,
        on_bad_signature=AlertDescription.DECRYPT_ERROR,
    ),
    extension_dialect=(
        ExtensionType.EC_POINT_FORMATS,
        ExtensionType.SUPPORTED_GROUPS,
        ExtensionType.SESSION_TICKET,
        ExtensionType.SIGNATURE_ALGORITHMS,
        ExtensionType.EXTENDED_MASTER_SECRET,
        ExtensionType.RENEGOTIATION_INFO,
    ),
)

ORACLE_JAVA = TLSLibrary(
    name="Oracle Java",
    version="18.0",
    alert_policy=AlertPolicy(
        on_unknown_ca=AlertDescription.CERTIFICATE_UNKNOWN,
        on_bad_signature=AlertDescription.CERTIFICATE_UNKNOWN,
        on_hostname_mismatch=AlertDescription.CERTIFICATE_UNKNOWN,
        on_bad_constraints=AlertDescription.CERTIFICATE_UNKNOWN,
    ),
    extension_dialect=(
        ExtensionType.SUPPORTED_GROUPS,
        ExtensionType.EC_POINT_FORMATS,
        ExtensionType.SIGNATURE_ALGORITHMS,
        ExtensionType.SIGNED_CERTIFICATE_TIMESTAMP,
    ),
)

WOLFSSL = TLSLibrary(
    name="WolfSSL",
    version="4.1.0",
    alert_policy=AlertPolicy(
        on_unknown_ca=AlertDescription.BAD_CERTIFICATE,
        on_bad_signature=AlertDescription.BAD_CERTIFICATE,
    ),
    extension_dialect=(
        ExtensionType.SUPPORTED_GROUPS,
        ExtensionType.SIGNATURE_ALGORITHMS,
    ),
)

GNUTLS = TLSLibrary(
    name="GNU TLS",
    version="3.6.15",
    alert_policy=AlertPolicy(
        on_unknown_ca=None,
        on_bad_signature=None,
        on_expired=None,
        on_hostname_mismatch=None,
        on_bad_constraints=None,
        on_other=None,
    ),
    sends_alerts=False,
    extension_dialect=(
        ExtensionType.SUPPORTED_GROUPS,
        ExtensionType.EC_POINT_FORMATS,
        ExtensionType.SIGNATURE_ALGORITHMS,
        ExtensionType.SESSION_TICKET,
        ExtensionType.ENCRYPT_THEN_MAC,
    ),
)

SECURE_TRANSPORT = TLSLibrary(
    name="Secure Transport",
    version="macOS 11.3",
    alert_policy=AlertPolicy(
        on_unknown_ca=None,
        on_bad_signature=None,
        on_expired=None,
        on_hostname_mismatch=None,
        on_bad_constraints=None,
        on_other=None,
    ),
    sends_alerts=False,
    extension_dialect=(
        ExtensionType.EC_POINT_FORMATS,
        ExtensionType.SUPPORTED_GROUPS,
        ExtensionType.SIGNATURE_ALGORITHMS,
        ExtensionType.ALPN,
        ExtensionType.SIGNED_CERTIFICATE_TIMESTAMP,
    ),
)

ALL_LIBRARIES: tuple[TLSLibrary, ...] = (
    MBEDTLS,
    OPENSSL,
    ORACLE_JAVA,
    WOLFSSL,
    GNUTLS,
    SECURE_TRANSPORT,
)

_BY_NAME = {library.name: library for library in ALL_LIBRARIES}


def by_name(name: str) -> TLSLibrary:
    """Look a library up by name; raises ``KeyError`` for unknown names."""
    return _BY_NAME[name]
