"""Simulated TLS client libraries (Table 4 behaviours)."""

from .catalog import (
    ALL_LIBRARIES,
    GNUTLS,
    MBEDTLS,
    OPENSSL,
    ORACLE_JAVA,
    SECURE_TRANSPORT,
    WOLFSSL,
    by_name,
)
from .library import AlertPolicy, ClientConfig, LibraryClient, TLSLibrary

__all__ = [
    "ALL_LIBRARIES",
    "AlertPolicy",
    "ClientConfig",
    "GNUTLS",
    "LibraryClient",
    "MBEDTLS",
    "OPENSSL",
    "ORACLE_JAVA",
    "SECURE_TRANSPORT",
    "TLSLibrary",
    "WOLFSSL",
    "by_name",
]
