"""Simulated TLS client libraries.

A *library* bundles the two behaviours the paper's techniques key on:

1. **Alert policy** -- which TLS alert (if any) the client emits for each
   certificate-validation failure.  Table 4 of the paper measures this
   for six real libraries; the catalog (:mod:`repro.tlslib.catalog`)
   reproduces those exact behaviours.  The ``unknown_ca`` vs
   ``bad-signature`` distinction is the side channel the root-store
   prober exploits.
2. **ClientHello shaping** -- version offers, ciphersuite ordering and
   extension lists.  Two clients built from the same library with the
   same configuration produce byte-identical hellos and therefore the
   same fingerprint, which drives the Figure 5 shared-instance analysis.

A (library, configuration) pair is a *TLS instance* in the paper's
terminology; devices host one or more instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import Callable

from ..pki.revocation import RevocationMethod, RevocationStatus
from ..pki.store import RootStore
from ..pki.validation import ValidationErrorCode, ValidationResult, validate_chain
from ..tls.alerts import Alert, AlertDescription
from ..tls.engine import ClientBehavior, ClientVerdict
from ..tls.extensions import (
    ECPointFormat,
    Extension,
    ExtensionType,
    NamedGroup,
    SignatureScheme,
    ec_point_formats_ext,
    signature_algorithms_ext,
    sni,
    status_request,
    supported_groups_ext,
    supported_versions_ext,
)
from ..tls.messages import ClientHello, ServerResponse
from ..tls.versions import ProtocolVersion

__all__ = ["AlertPolicy", "ClientConfig", "TLSLibrary", "LibraryClient"]


@dataclass(frozen=True)
class AlertPolicy:
    """Which alert a library sends for each validation failure.

    ``None`` means the library closes the connection silently (GnuTLS and
    SecureTransport in Table 4).  ``on_unknown_ca != on_bad_signature``
    is precisely the amenability condition for root-store probing.
    """

    on_unknown_ca: AlertDescription | None
    on_bad_signature: AlertDescription | None
    on_expired: AlertDescription | None = AlertDescription.CERTIFICATE_EXPIRED
    on_hostname_mismatch: AlertDescription | None = AlertDescription.BAD_CERTIFICATE
    on_bad_constraints: AlertDescription | None = AlertDescription.BAD_CERTIFICATE
    on_other: AlertDescription | None = AlertDescription.CERTIFICATE_UNKNOWN

    def alert_for(self, code: ValidationErrorCode) -> AlertDescription | None:
        """Map a typed validation failure to this library's alert choice."""
        mapping = {
            ValidationErrorCode.UNKNOWN_CA: self.on_unknown_ca,
            ValidationErrorCode.BAD_SIGNATURE: self.on_bad_signature,
            ValidationErrorCode.EXPIRED: self.on_expired,
            ValidationErrorCode.NOT_YET_VALID: self.on_expired,
            ValidationErrorCode.HOSTNAME_MISMATCH: self.on_hostname_mismatch,
            ValidationErrorCode.INVALID_BASIC_CONSTRAINTS: self.on_bad_constraints,
            ValidationErrorCode.PATHLEN_EXCEEDED: self.on_bad_constraints,
            ValidationErrorCode.KEY_USAGE: self.on_bad_constraints,
        }
        return mapping.get(code, self.on_other)

    @property
    def distinguishes_unknown_ca(self) -> bool:
        """True when the unknown-CA and bad-signature alerts differ --
        the amenability condition of §4.2 (root-stores analysis)."""
        return (
            self.on_unknown_ca is not None
            and self.on_bad_signature is not None
            and self.on_unknown_ca is not self.on_bad_signature
        ) or (self.on_unknown_ca is None) != (self.on_bad_signature is None)


@dataclass(frozen=True)
class ClientConfig:
    """Configuration of one TLS instance (library settings a device picks).

    ``validate`` / ``check_hostname`` are the Table 7 vulnerability knobs:
    ``validate=False`` reproduces the seven no-validation devices, and
    ``check_hostname=False`` the four Amazon-family devices.
    """

    versions: tuple[ProtocolVersion, ...]
    cipher_codes: tuple[int, ...]
    root_store: RootStore
    validate: bool = True
    check_hostname: bool = True
    check_validity: bool = True
    check_basic_constraints: bool = True
    request_ocsp_staple: bool = False
    send_sni: bool = True
    signature_schemes: tuple[SignatureScheme, ...] = (
        SignatureScheme.RSA_PKCS1_SHA256,
        SignatureScheme.ECDSA_SECP256R1_SHA256,
        SignatureScheme.RSA_PKCS1_SHA1,
    )
    groups: tuple[NamedGroup, ...] = (NamedGroup.X25519, NamedGroup.SECP256R1)
    alpn: tuple[str, ...] = ()
    session_tickets: bool = False
    #: How this instance checks certificate revocation (Table 8).  CRL
    #: and OCSP need a ``revocation_transport`` to reach the endpoints
    #: named in the certificate; stapling consults the handshake itself.
    revocation_method: RevocationMethod = RevocationMethod.NONE
    #: Out-of-band fetch: ``(url, serial) -> RevocationStatus``.  Soft-fail
    #: (accept) when None or when the fetch cannot decide -- matching
    #: deployed client behaviour.
    revocation_transport: Callable[[str, int], RevocationStatus] | None = None

    @property
    def max_version(self) -> ProtocolVersion:
        return max(self.versions)

    def downgraded(self, **changes) -> "ClientConfig":
        """A modified copy (used by device fallback policies)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class TLSLibrary:
    """A simulated TLS library: identity, alert policy, hello dialect.

    ``extension_dialect`` is an ordered tuple of extension-type names the
    library emits (beyond SNI/status_request which are config-driven);
    it is what differentiates fingerprints across libraries.
    """

    name: str
    version: str
    alert_policy: AlertPolicy
    extension_dialect: tuple[ExtensionType, ...] = (
        ExtensionType.SUPPORTED_GROUPS,
        ExtensionType.EC_POINT_FORMATS,
        ExtensionType.SIGNATURE_ALGORITHMS,
    )
    sends_alerts: bool = True

    @property
    def label(self) -> str:
        return f"{self.name} ({self.version})"

    def client(self, config: ClientConfig) -> "LibraryClient":
        """Instantiate a TLS instance: this library with ``config``."""
        return LibraryClient(library=self, config=config)


@dataclass
class LibraryClient(ClientBehavior):
    """A concrete TLS instance (library + configuration)."""

    library: TLSLibrary
    config: ClientConfig

    # ------------------------------------------------------------------
    # ClientHello construction
    # ------------------------------------------------------------------
    def build_client_hello(self, hostname: str | None) -> ClientHello:
        config = self.config
        extensions: list[Extension] = []
        if config.send_sni and hostname:
            extensions.append(sni(hostname))
        if config.request_ocsp_staple:
            extensions.append(status_request())

        for ext_type in self.library.extension_dialect:
            if ext_type is ExtensionType.SUPPORTED_GROUPS:
                extensions.append(supported_groups_ext(config.groups))
            elif ext_type is ExtensionType.EC_POINT_FORMATS:
                extensions.append(ec_point_formats_ext((ECPointFormat.UNCOMPRESSED,)))
            elif ext_type is ExtensionType.SIGNATURE_ALGORITHMS:
                extensions.append(signature_algorithms_ext(config.signature_schemes))
            elif ext_type is ExtensionType.SESSION_TICKET:
                if config.session_tickets:
                    extensions.append(Extension(ExtensionType.SESSION_TICKET))
            elif ext_type is ExtensionType.ALPN:
                if config.alpn:
                    extensions.append(Extension(ExtensionType.ALPN, config.alpn))
            else:
                extensions.append(Extension(ext_type))

        max_version = config.max_version
        if ProtocolVersion.TLS_1_3 in config.versions:
            # RFC 8446: legacy_version pins at 1.2; real offer in extension.
            legacy = ProtocolVersion.TLS_1_2
            wire_codes = tuple(
                v.wire for v in sorted(config.versions, reverse=True)
            )
            extensions.append(supported_versions_ext(wire_codes))
        else:
            legacy = max_version

        return ClientHello(
            legacy_version=legacy,
            cipher_codes=config.cipher_codes,
            extensions=tuple(extensions),
        )

    # ------------------------------------------------------------------
    # Server-credential evaluation
    # ------------------------------------------------------------------
    def evaluate_response(
        self, response: ServerResponse, *, hostname: str | None, when: datetime
    ) -> ClientVerdict:
        config = self.config
        server_hello = response.server_hello
        if server_hello is None:
            return ClientVerdict(accept=False)

        # Refuse versions/ciphers the instance never offered; a correct
        # client does not let a ServerHello pick parameters unilaterally.
        if server_hello.version not in self._acceptable_versions():
            return ClientVerdict(
                accept=False,
                alert=self._alert(AlertDescription.PROTOCOL_VERSION),
            )
        if server_hello.cipher_code not in config.cipher_codes:
            return ClientVerdict(
                accept=False,
                alert=self._alert(AlertDescription.ILLEGAL_PARAMETER),
            )

        if not config.validate:
            # Table 7 NoValidation devices: accept anything.
            return ClientVerdict(accept=True, validation=None)

        result = validate_chain(
            response.chain,
            config.root_store,
            when=when,
            hostname=hostname,
            check_hostname=config.check_hostname,
            check_validity=config.check_validity,
            check_basic_constraints=config.check_basic_constraints,
        )
        if result.ok:
            if self._revoked(response):
                return ClientVerdict(
                    accept=False,
                    validation=result,
                    alert=self._alert(AlertDescription.CERTIFICATE_REVOKED),
                )
            return ClientVerdict(accept=True, validation=result)
        return ClientVerdict(
            accept=False,
            validation=result,
            alert=self._alert_for_validation(result),
        )

    def _revoked(self, response: ServerResponse) -> bool:
        """Revocation check per the instance's Table 8 method.

        Mirrors deployed semantics: stapling trusts a presented staple
        and soft-fails when none arrives; CRL/OCSP fetch out of band via
        the URLs the leaf certificate names, soft-failing when the
        endpoint is unreachable (no transport configured).
        """
        config = self.config
        method = config.revocation_method
        if method is RevocationMethod.NONE or not response.chain:
            return False
        leaf = response.chain[0]

        if method is RevocationMethod.OCSP_STAPLING:
            staple = response.ocsp_staple
            return (
                staple is not None
                and staple.serial == leaf.serial
                and staple.status is RevocationStatus.REVOKED
            )

        transport = config.revocation_transport
        if transport is None:
            return False  # endpoint unreachable: soft-fail
        url = (
            leaf.crl_distribution_point
            if method is RevocationMethod.CRL
            else leaf.ocsp_responder_url
        )
        if not url:
            return False
        return transport(url, leaf.serial) is RevocationStatus.REVOKED

    def _acceptable_versions(self) -> set[ProtocolVersion]:
        """Versions this instance will let a server choose.

        Pre-1.3 TLS semantics: offering a maximum implies accepting
        anything at or below it that the stack still compiles in; we
        model "compiled in" as the instance's configured version list
        plus everything between its min and max.
        """
        versions = set(self.config.versions)
        if ProtocolVersion.TLS_1_3 in versions:
            return versions
        low, high = min(versions), max(versions)
        return {v for v in ProtocolVersion if low <= v <= high}

    def _alert(self, description: AlertDescription | None) -> Alert | None:
        if description is None or not self.library.sends_alerts:
            return None
        return Alert.fatal(description)

    def _alert_for_validation(self, result: ValidationResult) -> Alert | None:
        return self._alert(self.library.alert_policy.alert_for(result.code))
