"""Derivation of the probe certificate sets (§4.2 of the paper).

Two sets are extracted from the platform histories:

* :func:`derive_common_names` -- intersection of the **latest** store
  version of every platform, restricted to certificates unexpired at the
  probe date.  These are "likely trustworthy".
* :func:`derive_deprecated_names` -- for each platform, certificates in
  the **earliest** store version that a successor version removed, still
  unexpired at the probe date, excluding any certificate re-added by the
  latest version.  These are "questionable".

Both functions work purely on snapshot membership plus certificate
expiry, exactly as the paper's pipeline does; they do not peek at the
life-cycle records' removal annotations (those exist for ground truth in
tests and for the Figure 4 staleness analysis).
"""

from __future__ import annotations

from .platforms import PlatformHistory
from .records import RootCARecord

__all__ = ["derive_common_names", "derive_deprecated_names"]


def derive_common_names(
    histories: dict[str, PlatformHistory],
    records: dict[str, RootCARecord],
    *,
    probe_year: float,
) -> set[str]:
    """Certificates common to the latest version of every platform store."""
    if not histories:
        return set()
    latest_sets = [set(history.latest.members) for history in histories.values()]
    common = set.intersection(*latest_sets)
    return {name for name in common if records[name].unexpired_at(probe_year)}


def derive_deprecated_names(
    histories: dict[str, PlatformHistory],
    records: dict[str, RootCARecord],
    *,
    probe_year: float,
) -> set[str]:
    """Certificates retired before expiry, per the paper's algorithm."""
    deprecated: set[str] = set()
    for history in histories.values():
        removed = history.removed_names()
        for name in removed:
            # "Exclude any certificate if it was once removed but is
            # still present in the latest version of the root store."
            if name in history.latest.members:
                continue
            if not records[name].unexpired_at(probe_year):
                continue
            deprecated.add(name)
    return deprecated
