"""The default root-CA universe: every CA record plus platform histories.

Calibrated so the paper's derivation yields the paper's set sizes at the
March-2021 probe date:

* 122 *common* certificates (latest version of all four platforms,
  unexpired),
* 87 *deprecated* certificates (earliest-version members later removed,
  unexpired, never re-added), with a removal-year distribution matching
  Figure 4's population (mass in 2018/2019, tail back to 2013),
* the four explicitly distrusted CAs the paper names -- TurkTrust (2013,
  Mozilla), CNNIC (2015, Google blocklist), WoSign (2016, Google
  blocklist), Certinomis (2019, Mozilla) -- plus the administratively
  rotated Visa eCommerce Root,
* distractor populations that exercise the derivation's filters:
  expired-after-removal roots, removed-then-re-added roots, and roots
  added after the earliest snapshot then removed (invisible to the
  paper's method, as §4.2 notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .derive import derive_common_names, derive_deprecated_names
from .platforms import PLATFORM_SPECS, PlatformHistory, build_history
from .records import DistrustEvent, RemovalReason, RootCARecord

__all__ = ["RootStoreUniverse", "build_default_universe", "PROBE_YEAR"]

#: The bulk of the paper's active experiments ran in March 2021.
PROBE_YEAR = 2021.2

ALL_PLATFORMS = frozenset(spec[0] for spec in PLATFORM_SPECS)

# Removal-year distribution for the 87 deprecated roots (Figure 4 shape).
_REMOVAL_YEAR_COUNTS: tuple[tuple[int, int], ...] = (
    (2013, 4),
    (2014, 5),
    (2015, 6),
    (2016, 8),
    (2017, 10),
    (2018, 22),
    (2019, 24),
    (2020, 8),
)

# Named CAs the paper discusses, with their (real) distrust events.
_NAMED_DISTRUSTED: tuple[tuple[str, str, str, int, str, str], ...] = (
    # (common name, organization, country, removal year, acting platform, reason)
    (
        "TURKTRUST Elektronik Sertifika Hizmet Saglayicisi",
        "TurkTrust",
        "TR",
        2013,
        "Mozilla",
        "unauthorized google.com certificate",
    ),
    (
        "CNNIC ROOT",
        "CNNIC",
        "CN",
        2015,
        "Google blocklist",
        "unauthorized MCS Holdings intermediate",
    ),
    (
        "Certification Authority of WoSign",
        "WoSign CA Limited",
        "CN",
        2016,
        "Google blocklist",
        "backdated SHA-1 certificates, undisclosed control of StartCom",
    ),
    (
        "Certinomis - Root CA",
        "Certinomis",
        "FR",
        2019,
        "Mozilla",
        "failure to comply with CA guidelines",
    ),
)

# Administrative removals the paper cites as benign ("key rotations").
_NAMED_ADMINISTRATIVE: tuple[tuple[str, str, str, int], ...] = (
    ("Visa eCommerce Root", "VISA", "US", 2018),
)

# A sample of realistic common-root names; the remainder are synthetic.
_REAL_COMMON_NAMES: tuple[tuple[str, str, str], ...] = (
    ("DigiCert Global Root CA", "DigiCert Inc", "US"),
    ("DigiCert High Assurance EV Root CA", "DigiCert Inc", "US"),
    ("GlobalSign Root CA", "GlobalSign nv-sa", "BE"),
    ("Baltimore CyberTrust Root", "Baltimore", "IE"),
    ("ISRG Root X1", "Internet Security Research Group", "US"),
    ("Amazon Root CA 1", "Amazon", "US"),
    ("GTS Root R1", "Google Trust Services LLC", "US"),
    ("USERTrust RSA Certification Authority", "The USERTRUST Network", "US"),
    ("COMODO RSA Certification Authority", "COMODO CA Limited", "GB"),
    ("Entrust Root Certification Authority - G2", "Entrust, Inc.", "US"),
    ("VeriSign Class 3 Public Primary CA - G5", "VeriSign, Inc.", "US"),
    ("AddTrust External CA Root", "AddTrust AB", "SE"),
    ("QuoVadis Root CA 2", "QuoVadis Limited", "BM"),
    ("SecureTrust CA", "SecureTrust Corporation", "US"),
    ("Starfield Root Certificate Authority - G2", "Starfield Technologies", "US"),
    ("Go Daddy Root Certificate Authority - G2", "GoDaddy.com, Inc.", "US"),
    ("T-TeleSec GlobalRoot Class 2", "T-Systems Enterprise Services", "DE"),
    ("SwissSign Gold CA - G2", "SwissSign AG", "CH"),
    ("Actalis Authentication Root CA", "Actalis S.p.A.", "IT"),
    ("Hellenic Academic and Research Institutions RootCA 2015", "HARICA", "GR"),
)

_SYNTH_ORG_STEMS = (
    "TrustBridge", "SecureAnchor", "CertPath", "RootWorks", "KeySpire",
    "AssureNet", "PrimeTrust", "CipherGate", "VeriPath", "SignumLabs",
    "TrustFabric", "AnchorPoint", "CertiCore", "SafeRoute", "KeyHaven",
)
_SYNTH_COUNTRIES = ("US", "GB", "DE", "FR", "JP", "NL", "ES", "CA", "CH", "SE")


def _synthetic_name(kind: str, index: int) -> tuple[str, str, str]:
    stem = _SYNTH_ORG_STEMS[index % len(_SYNTH_ORG_STEMS)]
    country = _SYNTH_COUNTRIES[index % len(_SYNTH_COUNTRIES)]
    generation = index // len(_SYNTH_ORG_STEMS) + 1
    return (f"{stem} {kind} Root CA G{generation}", f"{stem} Inc", country)


@dataclass
class RootStoreUniverse:
    """All root-CA records, platform histories, and the derived sets."""

    records: dict[str, RootCARecord]
    histories: dict[str, PlatformHistory]
    probe_year: float

    def record(self, name: str) -> RootCARecord:
        return self.records[name]

    @property
    def common_names(self) -> set[str]:
        return derive_common_names(self.histories, self.records, probe_year=self.probe_year)

    @property
    def deprecated_names(self) -> set[str]:
        return derive_deprecated_names(self.histories, self.records, probe_year=self.probe_year)

    def common_records(self) -> list[RootCARecord]:
        return sorted(
            (self.records[name] for name in self.common_names), key=lambda r: r.name
        )

    def deprecated_records(self) -> list[RootCARecord]:
        return sorted(
            (self.records[name] for name in self.deprecated_names), key=lambda r: r.name
        )

    def distrusted_records(self) -> list[RootCARecord]:
        return sorted(
            (record for record in self.records.values() if record.is_distrusted),
            key=lambda r: r.name,
        )

    def history(self, platform: str) -> PlatformHistory:
        return self.histories[platform]


def _build_records() -> list[RootCARecord]:
    records: list[RootCARecord] = []

    # ------------------------------------------------------------------
    # 122 common roots: carried everywhere, never removed, long-lived.
    # ------------------------------------------------------------------
    common_identities = list(_REAL_COMMON_NAMES)
    index = 0
    while len(common_identities) < 122:
        common_identities.append(_synthetic_name("Global", index))
        index += 1
    for i, (name, org, country) in enumerate(common_identities):
        records.append(
            RootCARecord(
                name=name,
                organization=org,
                country=country,
                added_year=2008,
                expiry_year=2028 + (i % 10),
                carriers=ALL_PLATFORMS,
            )
        )

    # ------------------------------------------------------------------
    # 87 deprecated roots with the Figure 4 removal-year distribution.
    # ------------------------------------------------------------------
    named_distrusted = {
        removal_year: (name, org, country, platform, reason)
        for (name, org, country, removal_year, platform, reason) in _NAMED_DISTRUSTED
    }
    named_admin = {year: (name, org, country) for (name, org, country, year) in _NAMED_ADMINISTRATIVE}

    synth_index = 0
    for removal_year, count in _REMOVAL_YEAR_COUNTS:
        for slot in range(count):
            distrust: DistrustEvent | None = None
            reason = RemovalReason.ADMINISTRATIVE
            if slot == 0 and removal_year in named_distrusted:
                name, org, country, platform, why = named_distrusted[removal_year]
                distrust = DistrustEvent(year=removal_year, platform=platform, reason=why)
                reason = RemovalReason.DISTRUSTED
            elif slot == 1 and removal_year in named_admin:
                name, org, country = named_admin[removal_year]
            else:
                name, org, country = _synthetic_name("Legacy", synth_index)
                synth_index += 1
            carriers = {"Android", "Ubuntu", "Mozilla"}
            if removal_year >= 2018:
                carriers.add("Microsoft")
            records.append(
                RootCARecord(
                    name=name,
                    organization=org,
                    country=country,
                    added_year=2008,
                    expiry_year=2022 + ((removal_year + slot) % 8),
                    carriers=frozenset(carriers),
                    removal_year=removal_year,
                    removal_reason=reason,
                    distrust=distrust,
                )
            )

    # ------------------------------------------------------------------
    # Distractors exercising the derivation's filters.
    # ------------------------------------------------------------------
    # (a) Removed *and* already expired at probe time -> filtered out.
    for i in range(12):
        name, org, country = _synthetic_name("Expired", i)
        records.append(
            RootCARecord(
                name=name,
                organization=org,
                country=country,
                added_year=2008,
                expiry_year=2019 + (i % 2),  # expires before the 2021 probe
                carriers=frozenset({"Android", "Ubuntu", "Mozilla"}),
                removal_year=2015 + (i % 4),
                removal_reason=RemovalReason.ADMINISTRATIVE,
            )
        )
    # (b) Removed but re-added by the latest version -> excluded from the
    #     deprecated set; not a Microsoft carrier so it cannot slip into
    #     the common (all-platform) intersection either.
    for i in range(4):
        name, org, country = _synthetic_name("Restored", i)
        records.append(
            RootCARecord(
                name=name,
                organization=org,
                country=country,
                added_year=2008,
                expiry_year=2030,
                carriers=frozenset({"Android", "Ubuntu", "Mozilla"}),
                removal_year=2016,
                removal_reason=RemovalReason.ADMINISTRATIVE,
                readded_year=2018,
            )
        )
    # (c) Added after the earliest snapshot (Mozilla's is 2013), then
    #     removed: the paper's earliest-version baseline cannot see these.
    for i in range(6):
        name, org, country = _synthetic_name("LateCycle", i)
        records.append(
            RootCARecord(
                name=name,
                organization=org,
                country=country,
                added_year=2015,
                expiry_year=2030,
                carriers=frozenset({"Mozilla"}),
                removal_year=2019,
                removal_reason=RemovalReason.ADMINISTRATIVE,
            )
        )
    return records


@lru_cache(maxsize=1)
def build_default_universe(probe_year: float = PROBE_YEAR) -> RootStoreUniverse:
    """Build (once) the default universe used across the library."""
    records = _build_records()
    by_name = {record.name: record for record in records}
    if len(by_name) != len(records):
        raise RuntimeError("duplicate root-CA names in universe construction")
    histories = {
        platform: build_history(
            platform,
            records,
            version_count=version_count,
            earliest_year=earliest,
            latest_year=latest,
        )
        for platform, version_count, earliest, latest in PLATFORM_SPECS
    }
    return RootStoreUniverse(records=by_name, histories=histories, probe_year=probe_year)
