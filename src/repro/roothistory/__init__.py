"""Historical platform root-store substrate (Table 3, §4.2 derivations)."""

from .derive import derive_common_names, derive_deprecated_names
from .platforms import PLATFORM_SPECS, PlatformHistory, PlatformSnapshot, build_history
from .records import DistrustEvent, RemovalReason, RootCARecord
from .universe import PROBE_YEAR, RootStoreUniverse, build_default_universe

__all__ = [
    "DistrustEvent",
    "PLATFORM_SPECS",
    "PROBE_YEAR",
    "PlatformHistory",
    "PlatformSnapshot",
    "RemovalReason",
    "RootCARecord",
    "RootStoreUniverse",
    "build_default_universe",
    "build_history",
    "derive_common_names",
    "derive_deprecated_names",
]
