"""Root-CA records: the identity and life cycle of one root certificate.

The paper probes devices for two derived certificate sets (§4.2):

* *Common CA certificates* -- unexpired roots present in the **latest**
  root-store version of all four reference platforms (122 certificates),
* *Deprecated CA certificates* -- unexpired roots present in a platform's
  **earliest** store version that were removed by a successor version and
  never re-added (87 certificates).

A :class:`RootCARecord` carries everything needed to place one CA in that
history: when it was added, when (if ever) it was removed, which platforms
carried it, whether the removal was an explicit *distrust* (TurkTrust,
CNNIC, WoSign, Certinomis) or administrative (key rotation), and a lazily
constructed :class:`~repro.pki.certificate.CertificateAuthority` whose
self-signed certificate is the actual store member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property

from ..pki.certificate import CertificateAuthority, Certificate, utc
from ..pki.name import DistinguishedName

__all__ = ["RemovalReason", "DistrustEvent", "RootCARecord"]


class RemovalReason(Enum):
    """Why a root left a platform store."""

    DISTRUSTED = "distrusted"  # CA misbehaviour (unauthorized certs, ...)
    ADMINISTRATIVE = "administrative"  # key rotation, CA request, expiry prep
    NOT_REMOVED = "not_removed"


@dataclass(frozen=True)
class DistrustEvent:
    """An explicit distrust action by a browser/OS vendor."""

    year: int
    platform: str  # who acted first (e.g. "Mozilla", "Google blocklist")
    reason: str


@dataclass(frozen=True)
class RootCARecord:
    """One root CA's identity and store life cycle."""

    name: str  # Common Name of the root certificate
    organization: str
    country: str
    added_year: int  # first appears in carrying platforms' stores
    expiry_year: int  # certificate notAfter year
    carriers: frozenset[str]  # platform names that ever shipped it
    removal_year: int | None = None  # None => still present everywhere
    removal_reason: RemovalReason = RemovalReason.NOT_REMOVED
    distrust: DistrustEvent | None = None
    readded_year: int | None = None  # removed but later restored

    def __post_init__(self) -> None:
        if self.removal_year is not None and self.removal_year < self.added_year:
            raise ValueError(f"{self.name}: removal_year precedes added_year")
        if self.readded_year is not None and self.removal_year is None:
            raise ValueError(f"{self.name}: readded_year without removal_year")

    @property
    def distinguished_name(self) -> DistinguishedName:
        return DistinguishedName(
            common_name=self.name,
            organization=self.organization,
            country=self.country,
        )

    @cached_property
    def authority(self) -> CertificateAuthority:
        """The CA key pair + self-signed root, built deterministically.

        The seed is derived from the CA's identity so every run of the
        simulation produces bit-identical stores and probe targets.
        """
        return CertificateAuthority(
            self.distinguished_name,
            not_before=utc(self.added_year),
            not_after=utc(self.expiry_year),
            seed=f"rootca:{self.name}:{self.organization}".encode(),
        )

    @property
    def certificate(self) -> Certificate:
        return self.authority.certificate

    def in_store_at(self, platform: str, year: float) -> bool:
        """Whether a snapshot of ``platform`` taken at ``year`` carries it.

        A removal in year Y means snapshots dated >= Y no longer include
        the certificate; a re-addition restores it from ``readded_year``.
        """
        if platform not in self.carriers:
            return False
        if year < self.added_year:
            return False
        if self.removal_year is None or year < self.removal_year:
            return True
        if self.readded_year is not None and year >= self.readded_year:
            return True
        return False

    def unexpired_at(self, year: float) -> bool:
        return year < self.expiry_year

    @property
    def is_distrusted(self) -> bool:
        return self.distrust is not None
