"""Versioned platform root-store histories (Table 3).

| Platform  | Versions | Earliest year | Source modelled                     |
|-----------|----------|---------------|-------------------------------------|
| Ubuntu    | 9        | 2012          | ca-certificates package snapshots   |
| Android   | 10       | 2010          | AOSP ca-certificates commits        |
| Mozilla   | 47       | 2013          | NSS certdata.txt history            |
| Microsoft | 15       | 2017          | published trusted-root program data |

A snapshot is the set of root-CA names a platform shipped at a dated
version; membership is computed from each CA's life cycle record, so the
common / deprecated set derivations (:mod:`repro.roothistory.derive`)
operate on exactly the structures the paper scraped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .records import RootCARecord

__all__ = ["PlatformSnapshot", "PlatformHistory", "PLATFORM_SPECS", "build_history"]

#: (platform name, number of versions, earliest year, latest year)
PLATFORM_SPECS: tuple[tuple[str, int, float, float], ...] = (
    ("Ubuntu", 9, 2012.0, 2020.5),
    ("Android", 10, 2010.0, 2019.5),
    ("Mozilla", 47, 2013.0, 2021.1),
    ("Microsoft", 15, 2017.0, 2021.0),
)


@dataclass(frozen=True)
class PlatformSnapshot:
    """One dated version of a platform's root store."""

    platform: str
    version_tag: str
    year: float  # fractional year, e.g. 2018.5 ~ mid-2018
    members: frozenset[str]  # root-CA record names

    def __contains__(self, name: object) -> bool:
        return name in self.members

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class PlatformHistory:
    """All versioned snapshots of one platform, oldest first."""

    platform: str
    snapshots: list[PlatformSnapshot] = field(default_factory=list)

    @property
    def earliest(self) -> PlatformSnapshot:
        return self.snapshots[0]

    @property
    def latest(self) -> PlatformSnapshot:
        return self.snapshots[-1]

    @property
    def version_count(self) -> int:
        return len(self.snapshots)

    def removed_names(self) -> set[str]:
        """Names present in the earliest version but absent from a
        successor at some point (the raw material of the deprecated set)."""
        removed: set[str] = set()
        baseline = self.earliest.members
        for snapshot in self.snapshots[1:]:
            removed |= baseline - snapshot.members
        return removed

    def removal_year_of(self, name: str) -> float | None:
        """Year of the first snapshot that no longer carries ``name``."""
        present = False
        for snapshot in self.snapshots:
            if name in snapshot.members:
                present = True
            elif present:
                return snapshot.year
        return None


def _version_years(count: int, first: float, last: float) -> list[float]:
    if count == 1:
        return [first]
    step = (last - first) / (count - 1)
    return [round(first + i * step, 3) for i in range(count)]


def build_history(
    platform: str,
    records: list[RootCARecord],
    *,
    version_count: int,
    earliest_year: float,
    latest_year: float,
) -> PlatformHistory:
    """Materialise a platform's snapshot history from CA life cycles."""
    history = PlatformHistory(platform=platform)
    for index, year in enumerate(_version_years(version_count, earliest_year, latest_year)):
        members = frozenset(
            record.name for record in records if record.in_store_at(platform, year)
        )
        history.snapshots.append(
            PlatformSnapshot(
                platform=platform,
                version_tag=f"{platform.lower()}-v{index + 1}",
                year=year,
                members=members,
            )
        )
    return history
