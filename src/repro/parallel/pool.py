"""A persistent warm worker pool, amortised across shards and phases.

Every parallel dispatch used to build a fresh ``spawn`` pool: each run
paid ``workers`` interpreter starts plus a full :mod:`repro` import and
testbed rebuild *per phase*, which is why ``--workers 2`` could lose to
serial outright on small workloads.  :class:`WarmWorkerPool` keeps one
spawn pool alive for the duration of a run session: processes are
started once, warmed by an initializer that preloads the device catalog
and the default testbed (the two expensive pure-function caches worker
tasks need), and then reused by every ``map``/``imap`` batch -- the
trace, audit, and report phases of one run all dispatch onto the same
processes.

:func:`pool_session` is the ambient activation point, mirroring the run
facade's progress session: the API layer opens one session per run and
:class:`~repro.parallel.executor.ShardedExecutor` transparently routes
through the active pool.  Nested sessions reuse the outer pool, so
``run_report`` (campaign + trace) warms exactly once.

Determinism is untouched: ``Pool.map``/``Pool.imap`` return results in
task order regardless of which process finishes first, and pooled task
functions already reset their telemetry runtime at task start (see
:mod:`repro.parallel.workers`), so per-task exports stay per-task
increments whether the process is fresh or reused.
"""

from __future__ import annotations

import multiprocessing
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator, Sequence, TypeVar

__all__ = ["WarmWorkerPool", "pool_session", "active_pool"]

Task = TypeVar("Task")
Result = TypeVar("Result")

#: The session-scoped pool :class:`ShardedExecutor` routes through.
_ACTIVE_POOL: "WarmWorkerPool | None" = None

#: Guards session creation/teardown: concurrent server request threads
#: entering :func:`pool_session` must agree on one pool rather than
#: racing to spawn several.  (``multiprocessing.Pool`` itself is safe
#: to dispatch onto from several threads at once.)
_SESSION_LOCK = threading.Lock()


def _warm_worker() -> None:
    """Pool-process initializer: preload the caches every task needs.

    Runs once per spawned process.  Building the default testbed and the
    passive-device catalog here moves their cost out of the first task's
    critical path and guarantees later tasks find them hot.  Both are
    pure functions of fixed seeds, so warming changes no results.
    """
    from . import workers as worker_module

    worker_module._worker_testbed()
    worker_module._passive_profiles()


class WarmWorkerPool:
    """A reusable ``spawn`` pool with warm, preloaded worker processes.

    Tracks dispatch statistics so the spawn-amortisation claim is
    auditable: ``tasks_dispatched`` across ``batches`` batches landed on
    just ``workers`` processes -- every task beyond the first per
    process rode a warm interpreter instead of paying a cold start.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(f"a worker pool needs >= 2 workers, got {workers}")
        self.workers = workers
        context = multiprocessing.get_context("spawn")
        self._pool = context.Pool(processes=workers, initializer=_warm_worker)
        self.batches = 0
        self.tasks_dispatched = 0
        #: Wall seconds spent blocked on pool dispatches (map barriers
        #: plus imap item waits).  Monotonic-clock accounting for the
        #: run ledger's pool stats; never feeds a manifest.
        self.dispatch_seconds = 0.0
        #: Several serve executor threads dispatch onto one session pool
        #: concurrently (Pool itself is thread-safe); the counters above
        #: need the same protection or concurrent += updates lose bumps.
        self._stats_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def map(
        self, worker_fn: Callable[[Task], Result], tasks: Sequence[Task]
    ) -> list[Result]:
        """``Pool.map`` on the warm processes; results in task order."""
        with self._stats_lock:
            self.batches += 1
            self.tasks_dispatched += len(tasks)
        started = perf_counter()
        try:
            return self._pool.map(worker_fn, tasks)
        finally:
            elapsed = perf_counter() - started
            with self._stats_lock:
                self.dispatch_seconds += elapsed

    def imap(
        self, worker_fn: Callable[[Task], Result], tasks: Sequence[Task]
    ) -> Iterator[Result]:
        """``Pool.imap`` on the warm processes; yields in task order."""
        with self._stats_lock:
            self.batches += 1
            self.tasks_dispatched += len(tasks)
        started = perf_counter()
        iterator = self._pool.imap(worker_fn, tasks, chunksize=1)
        elapsed = perf_counter() - started
        with self._stats_lock:
            self.dispatch_seconds += elapsed

        def _timed() -> Iterator[Result]:
            # Only the time spent *waiting* on the pool counts as
            # dispatch; the consumer's per-item work happens between
            # next() calls and stays out of the tally.
            while True:
                begin = perf_counter()
                try:
                    item = next(iterator)
                except StopIteration:
                    waited = perf_counter() - begin
                    with self._stats_lock:
                        self.dispatch_seconds += waited
                    return
                waited = perf_counter() - begin
                with self._stats_lock:
                    self.dispatch_seconds += waited
                yield item

        return _timed()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Reuse accounting for benchmark documents and telemetry.

        ``dispatches`` aliases ``tasks_dispatched``: it is the number
        cache-effectiveness checks watch (a served-from-cache request
        must leave it unchanged), published under the name the serve
        acceptance contract uses.
        """
        with self._stats_lock:
            return {
                "workers": self.workers,
                "batches": self.batches,
                "tasks_dispatched": self.tasks_dispatched,
                "dispatches": self.tasks_dispatched,
                "reused_dispatches": max(0, self.tasks_dispatched - self.workers),
                "dispatch_seconds": round(self.dispatch_seconds, 4),
            }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()

    def __enter__(self) -> "WarmWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def active_pool() -> WarmWorkerPool | None:
    """The pool of the innermost active :func:`pool_session`, if any."""
    return _ACTIVE_POOL


@contextmanager
def pool_session(workers: int, *, enabled: bool = True):
    """Hold one warm pool open for a run's worth of parallel dispatches.

    Yields the active :class:`WarmWorkerPool` (or ``None`` when
    ``workers < 2`` or ``enabled=False`` -- dispatches then fall back to
    ephemeral pools exactly as before).  A nested session reuses the
    outer session's pool rather than spawning a second one.
    """
    global _ACTIVE_POOL
    with _SESSION_LOCK:
        if not enabled or workers < 2 or _ACTIVE_POOL is not None:
            owns = False
            pool = _ACTIVE_POOL
        else:
            owns = True
            pool = WarmWorkerPool(workers)
            _ACTIVE_POOL = pool
    if not owns:
        yield pool
        return
    try:
        yield pool
    finally:
        with _SESSION_LOCK:
            _ACTIVE_POOL = None
        pool.close()
