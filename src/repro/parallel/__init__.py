"""Deterministic parallel execution for the heavy pipelines.

``repro.parallel`` shards device-keyed workloads across worker
processes and merges the results in catalog order, so a ``workers=N``
run produces byte-identical artifacts to the serial one (see
``docs/architecture.md`` for the sharding/merge model and the
determinism argument).
"""

from .executor import ShardedExecutor
from .pool import WarmWorkerPool, active_pool, pool_session
from .workers import (
    CampaignDeviceOutcome,
    CampaignShardResult,
    CampaignShardTask,
    TraceChunkResult,
    TraceChunkTask,
    TraceShardResult,
    TraceShardTask,
    run_campaign_shard,
    run_trace_chunk,
    run_trace_shard,
)

__all__ = [
    "ShardedExecutor",
    "WarmWorkerPool",
    "CampaignDeviceOutcome",
    "CampaignShardResult",
    "CampaignShardTask",
    "TraceChunkResult",
    "TraceChunkTask",
    "TraceShardResult",
    "TraceShardTask",
    "active_pool",
    "pool_session",
    "run_campaign_shard",
    "run_trace_chunk",
    "run_trace_shard",
]
