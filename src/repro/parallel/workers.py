"""Spawn-safe worker entry points for the sharded execution layer.

Everything in this module crosses a process boundary: task payloads go
out, result payloads come back, and both must pickle under the ``spawn``
start method (which re-imports :mod:`repro` in a fresh interpreter, so
the worker functions must be importable module-level callables).

Each worker rebuilds its own default :class:`~repro.testbed.Testbed`.
That is safe because the testbed is a pure function of the default CA
universe -- anchors, intermediates, servers, and device stores are all
derived from fixed seeds -- so a worker's handshakes are bit-identical
to the ones the parent process would have performed.  Telemetry runs in
the worker's own runtime (enabled to mirror the parent) and is exported
as plain data for the parent to merge, keyed by worker id.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from .. import telemetry as _telemetry

__all__ = [
    "TraceShardTask",
    "TraceShardResult",
    "TraceChunkTask",
    "TraceChunkResult",
    "CampaignShardTask",
    "CampaignDeviceOutcome",
    "CampaignShardResult",
    "run_trace_shard",
    "run_trace_chunk",
    "run_campaign_shard",
]

#: Per-process caches for pooled workers.  A pool process serves many
#: tasks; the default testbed and the device catalog are pure functions
#: of fixed seeds/data, so rebuilding them per task would cost time and
#: change nothing.
_WORKER_TESTBED = None
_WORKER_PROFILES: dict | None = None


def _passive_profiles() -> dict:
    """The passive-device catalog, keyed by name, cached per process."""
    global _WORKER_PROFILES
    if _WORKER_PROFILES is None:
        from ..devices.catalog import passive_devices

        _WORKER_PROFILES = {profile.name: profile for profile in passive_devices()}
    return _WORKER_PROFILES


def _worker_testbed():
    """The default testbed, built once per worker process and reused.

    A pure function of fixed seeds, so a pooled process serving many
    tasks (or phases) performs bit-identical handshakes with one shared
    instance -- the serial path already audits every device against a
    single testbed.
    """
    global _WORKER_TESTBED
    if _WORKER_TESTBED is None:
        from ..testbed.infrastructure import Testbed

        _WORKER_TESTBED = Testbed()
    return _WORKER_TESTBED


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _configure_worker_telemetry(enabled: bool, event_level: str) -> None:
    """Reset this worker's telemetry runtime to mirror the parent's switch.

    Only ever touches a *worker* process's runtime.  Pool processes are
    reused across tasks, so the reset at task start is what turns every
    exported payload into a per-task increment.  When a task runs
    in-process (single-task dispatch), the parent's already-configured
    runtime must be left alone -- resetting it mid-run would wipe the
    coordinator's own counters and spans, and re-exporting it would
    double-count them on merge.
    """
    if not _in_worker():
        return
    _telemetry.configure(enabled=enabled, level=event_level)


def _export_worker_telemetry(
    enabled: bool, worker_id: int, context: object | None = None
) -> dict | None:
    """Export this worker's runtime for the parent to merge.

    Returns ``None`` in-process for the same reason
    :func:`_configure_worker_telemetry` is a no-op there: the task's
    metrics already live in the parent runtime, so merging an export of
    it onto itself would double every total.
    """
    if not enabled or not _in_worker():
        return None
    return _telemetry.get().export_worker_state(worker_id, context=context)


# ----------------------------------------------------------------------
# Passive-trace generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceShardTask:
    """One worker's slice of the passive-trace workload.

    ``count_records=False`` builds the shard captures as *staging*
    captures (no gateway-ingest counting): the parent process will
    re-ingest the records through a counting sink -- the flow-cap
    materialised path splits records at the parent, and counting must
    happen once, after splitting.
    """

    worker_id: int
    device_names: tuple[str, ...]
    seed: str
    scale: int
    telemetry: bool
    event_level: str = "info"
    count_records: bool = True
    #: The coordinator's propagated trace context (a
    #: ``TraceContext.to_dict()`` document); rides home in the profile
    #: payload so merge stitches this shard under the dispatch span.
    trace_context: dict | None = None


@dataclass(frozen=True)
class TraceShardResult:
    """Per-device captures (in shard order) plus exported telemetry."""

    worker_id: int
    captures: tuple[tuple[str, object], ...]  # (device name, GatewayCapture)
    telemetry: dict | None


def run_trace_shard(task: TraceShardTask) -> TraceShardResult:
    """Generate one shard of the 27-month capture in a worker process."""
    from ..longitudinal.generator import PassiveTraceGenerator
    from ..testbed.capture import GatewayCapture

    _configure_worker_telemetry(task.telemetry, task.event_level)
    profiles = _passive_profiles()
    generator = PassiveTraceGenerator(
        _worker_testbed(), scale=task.scale, seed=task.seed
    )
    captures = []
    # The shard.run span times the whole shard; its wall time travels
    # home inside the profile payload as the shard's per-worker reading.
    with _telemetry.get().tracer.span(
        "shard.run", worker=task.worker_id, devices=len(task.device_names)
    ):
        for name in task.device_names:
            capture = GatewayCapture(counted=task.count_records)
            generator.generate_device_instrumented(profiles[name], capture)
            captures.append((name, capture))
    return TraceShardResult(
        worker_id=task.worker_id,
        captures=tuple(captures),
        telemetry=_export_worker_telemetry(
            task.telemetry, task.worker_id, task.trace_context
        ),
    )


# ----------------------------------------------------------------------
# Streaming passive-trace generation (one task per device)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceChunkTask:
    """One device's worth of the streaming trace workload.

    ``index`` is the device's catalog position; it doubles as the
    telemetry worker id, so merged worker payloads sort into catalog
    order.
    """

    index: int
    device_name: str
    seed: str
    scale: int
    telemetry: bool
    event_level: str = "info"
    #: See :attr:`TraceShardTask.trace_context`.
    trace_context: dict | None = None


@dataclass(frozen=True)
class TraceChunkResult:
    """One device's columnar record chunk, streamed home as one value."""

    index: int
    device: str
    chunk: object  # RecordChunk (records + revocation events, columnar)
    telemetry: dict | None


def run_trace_chunk(task: TraceChunkTask) -> TraceChunkResult:
    """Replay one device and ship its chunk of the stream home.

    Unlike :func:`run_trace_shard` (fresh process per shard), chunk
    tasks run on a *persistent* pool whose processes each serve many
    tasks, so per-task telemetry is reset at task start -- every
    exported payload is then a per-chunk increment and the parent's
    merge sums to exactly the serial totals.  When the task happens to
    run in the parent process (``workers=1`` fallback), telemetry is
    neither reset nor exported: metrics accrue directly in the parent
    runtime, which is already correct.

    The chunk crosses the process boundary in columnar form -- no
    per-record objects are pickled -- and carries no gateway-ingest
    counts: the parent's terminal sink counts after any flow-cap
    splitting.
    """
    from ..longitudinal.generator import PassiveTraceGenerator

    _configure_worker_telemetry(task.telemetry, task.event_level)
    generator = PassiveTraceGenerator(
        _worker_testbed(), scale=task.scale, seed=task.seed
    )
    with _telemetry.get().tracer.span(
        "chunk.run", worker=task.index, device=task.device_name
    ):
        chunk = generator._device_chunk_instrumented(
            _passive_profiles()[task.device_name]
        )
    payload = _export_worker_telemetry(task.telemetry, task.index, task.trace_context)
    return TraceChunkResult(
        index=task.index,
        device=task.device_name,
        chunk=chunk,
        telemetry=payload,
    )


# ----------------------------------------------------------------------
# Active-experiment campaign
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignShardTask:
    """One worker's slice of the active-device roster."""

    worker_id: int
    device_names: tuple[str, ...]
    include_passthrough: bool
    telemetry: bool
    event_level: str = "info"
    #: See :attr:`TraceShardTask.trace_context`.
    trace_context: dict | None = None


@dataclass(frozen=True)
class CampaignDeviceOutcome:
    """Everything the campaign produced for one device.

    The serial campaign iterates phase-by-phase over all devices; a
    worker iterates device-by-device over all phases.  The two orders
    are equivalent because every phase's state is per-device -- the
    parent reassembles the serial phase-major lists from these
    device-major bundles.
    """

    device: str
    interception: object  # DeviceInterceptionReport
    downgrade: object  # DeviceDowngradeReport
    old_versions: object  # OldVersionSupport
    probe_eligible: bool
    probe: object | None  # DeviceProbeReport
    passthrough: object | None  # PassthroughOutcome


@dataclass(frozen=True)
class CampaignShardResult:
    worker_id: int
    devices: tuple[CampaignDeviceOutcome, ...]
    telemetry: dict | None


def run_campaign_shard(task: CampaignShardTask) -> CampaignShardResult:
    """Run every campaign phase for one shard of active devices."""
    from ..core.downgrade import DowngradeAuditor
    from ..core.interception import InterceptionAuditor
    from ..core.passthrough import PassthroughExperiment
    from ..core.prober import RootStoreProber
    from ..devices.catalog import active_devices

    _configure_worker_telemetry(task.telemetry, task.event_level)
    runtime = _telemetry.get()
    testbed = _worker_testbed()
    profiles = {profile.name: profile for profile in active_devices()}
    interception_auditor = InterceptionAuditor(testbed)
    downgrade_auditor = DowngradeAuditor(testbed)
    prober = RootStoreProber(testbed)
    experiment = PassthroughExperiment(testbed) if task.include_passthrough else None

    outcomes = []
    with runtime.tracer.span(
        "shard.run", worker=task.worker_id, devices=len(task.device_names)
    ):
        outcomes.extend(
            _campaign_device_outcome(
                profiles[name],
                testbed,
                runtime,
                interception_auditor,
                downgrade_auditor,
                prober,
                experiment,
            )
            for name in task.device_names
        )
    return CampaignShardResult(
        worker_id=task.worker_id,
        devices=tuple(outcomes),
        telemetry=_export_worker_telemetry(
            task.telemetry, task.worker_id, task.trace_context
        ),
    )


def _campaign_device_outcome(
    profile, testbed, runtime, interception_auditor, downgrade_auditor, prober, experiment
) -> CampaignDeviceOutcome:
    """All campaign phases for one device (the body of a shard's loop)."""
    from ..mitm.proxy import AttackMode

    device = testbed.device(profile)
    interception = interception_auditor.audit_device(device)
    downgrade = downgrade_auditor.audit_device_downgrade(device)
    old_versions = downgrade_auditor.audit_device_old_versions(device)
    if runtime.enabled:
        runtime.registry.counter(
            "iotls_campaign_devices_total",
            "Devices processed by the active campaign's audit phase.",
        ).inc()

    # Probe eligibility per §5.2, evaluated exactly as the serial
    # campaign does -- it only reads this device's own audit.
    eligible = profile.rebootable and not all(
        destination.intercepted_by(AttackMode.NO_VALIDATION)
        for destination in interception.destinations
    )
    probe = prober.probe_device(device) if eligible else None
    passthrough = (
        experiment.run_device(device, interception) if experiment is not None else None
    )
    return CampaignDeviceOutcome(
        device=profile.name,
        interception=interception,
        downgrade=downgrade,
        old_versions=old_versions,
        probe_eligible=eligible,
        probe=probe,
        passthrough=passthrough,
    )
