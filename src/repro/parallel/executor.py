"""Deterministic sharded execution across worker processes.

The two heaviest workloads -- the 27-month passive-trace generation and
the active-experiment campaign -- are embarrassingly parallel at device
granularity: every flow's RNG is keyed by ``(seed, device, hostname,
month)`` and every audit is keyed by the device profile, so no work item
ever reads another's state.  :class:`ShardedExecutor` exploits exactly
that structure:

1. **Shard.**  The device list is split round-robin into at most
   ``workers`` shards (:meth:`ShardedExecutor.shard`), so long-running
   devices spread evenly instead of clustering in one contiguous chunk.
2. **Execute.**  One task per shard runs in a worker process.  Workers
   use the ``spawn`` start method -- the only one that is safe on every
   platform and under every threading configuration -- so worker
   functions must be importable module-level callables with picklable
   task payloads (see :mod:`repro.parallel.workers`).
3. **Merge deterministically.**  Results come back in *task order*
   (never completion order), and the callers reassemble outputs in
   catalog order.  Combined with the per-device seeding, a merged
   parallel run is byte-identical to the serial one.

``workers=1`` bypasses multiprocessing entirely: tasks run in-process,
preserving today's serial path exactly (same telemetry runtime, same
object identity, zero process overhead).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Sequence, TypeVar

from .pool import active_pool

__all__ = ["ShardedExecutor"]

Task = TypeVar("Task")
Result = TypeVar("Result")


class ShardedExecutor:
    """Runs per-shard tasks in worker processes with ordered results."""

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    # ------------------------------------------------------------------
    def shard(self, items: Sequence) -> list[list]:
        """Partition ``items`` round-robin into at most ``workers`` shards.

        Shard ``i`` holds ``items[i::n]``; within a shard the original
        order is preserved, which keeps per-shard processing order
        deterministic.  Empty shards are never produced.
        """
        count = max(1, min(self.workers, len(items)))
        return [list(items[index::count]) for index in range(count)]

    # ------------------------------------------------------------------
    def map_tasks(
        self, worker_fn: Callable[[Task], Result], tasks: Sequence[Task]
    ) -> list[Result]:
        """Run one task per worker process; results in **task order**.

        With one task (or ``workers=1`` the callers never get here), the
        task runs in-process.  ``multiprocessing.Pool.map`` already
        guarantees result order matches input order regardless of which
        worker finishes first -- the first half of the determinism
        contract; the callers' catalog-order reassembly is the second.

        Inside a :func:`repro.parallel.pool.pool_session`, tasks land on
        the session's warm pool; otherwise an ephemeral pool of at most
        ``self.workers`` processes is spawned (never one per task --
        oversubscribing the host with ``len(tasks)`` processes is
        exactly the dispatch bug the cap fixes).
        """
        if not tasks:
            return []
        if len(tasks) == 1:
            return [worker_fn(tasks[0])]
        warm = active_pool()
        if warm is not None:
            return warm.map(worker_fn, tasks)
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(self.workers, len(tasks))) as pool:
            return pool.map(worker_fn, tasks)

    # ------------------------------------------------------------------
    def imap_tasks(
        self, worker_fn: Callable[[Task], Result], tasks: Sequence[Task]
    ):
        """Lazily yield task results in **task order** (streaming map).

        The streaming counterpart of :meth:`map_tasks` for many-small-task
        workloads (one task per device): a pool of at most ``workers``
        persistent processes consumes the task list and results are
        yielded as they arrive -- but always in submission order
        (``Pool.imap``'s guarantee), so the consumer's fold is
        deterministic regardless of which worker finishes first.  Note
        that pool processes are *reused* across tasks, so task functions
        that export per-task telemetry must reset their runtime at task
        start (see :func:`repro.parallel.workers.run_trace_chunk`).

        With ``workers=1`` or a single task, everything runs in-process
        and results stream with zero process overhead.
        """
        if not tasks:
            return
        if self.workers == 1 or len(tasks) == 1:
            for task in tasks:
                yield worker_fn(task)
            return
        warm = active_pool()
        if warm is not None:
            yield from warm.imap(worker_fn, tasks)
            return
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(self.workers, len(tasks))) as pool:
            yield from pool.imap(worker_fn, tasks, chunksize=1)
