"""X.509 distinguished names for the simulated PKI.

Only the attributes the paper's experiments depend on are modelled:
Common Name, Organization, Organizational Unit and Country.  Equality and
hashing follow RFC 5280 name-matching semantics closely enough for chain
building (case-insensitive, whitespace-normalised comparison of attribute
values), which is what matters for the root-store probing side channel:
a spoofed CA certificate matches a legitimate root by *name* while failing
signature validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

__all__ = ["DistinguishedName"]


@lru_cache(maxsize=4096)
def _norm(value: str) -> str:
    """RFC 5280 (simplified) caseIgnoreMatch: collapse whitespace, casefold.

    Cached: chain building normalises the same few hundred CA/server
    attribute strings tens of thousands of times per run.
    """
    return " ".join(value.split()).casefold()


@dataclass(frozen=True)
class DistinguishedName:
    """A simplified X.500 distinguished name.

    Instances are immutable and hashable so they can key root-store sets.
    """

    common_name: str
    organization: str = ""
    organizational_unit: str = ""
    country: str = ""

    def __post_init__(self) -> None:
        if not self.common_name:
            raise ValueError("DistinguishedName requires a non-empty common_name")

    def rfc4514(self) -> str:
        """Render in RFC 4514 string form, most-specific attribute first."""
        parts = [f"CN={self.common_name}"]
        if self.organizational_unit:
            parts.append(f"OU={self.organizational_unit}")
        if self.organization:
            parts.append(f"O={self.organization}")
        if self.country:
            parts.append(f"C={self.country}")
        return ",".join(parts)

    def matches(self, other: "DistinguishedName") -> bool:
        """RFC 5280-style name comparison (case/whitespace-insensitive)."""
        return (
            _norm(self.common_name) == _norm(other.common_name)
            and _norm(self.organization) == _norm(other.organization)
            and _norm(self.organizational_unit) == _norm(other.organizational_unit)
            and _norm(self.country) == _norm(other.country)
        )

    def normalized_key(self) -> tuple[str, str, str, str]:
        """Hashable normalised form, used to index issuer lookup tables."""
        return (
            _norm(self.common_name),
            _norm(self.organization),
            _norm(self.organizational_unit),
            _norm(self.country),
        )

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.rfc4514()
