"""Certificates and certificate authorities for the simulated PKI.

The model keeps the fields and extensions that the paper's three
interception attacks (Table 2) and the root-store probing technique
exercise:

* subject / issuer :class:`~repro.pki.name.DistinguishedName`,
* serial number (spoofed-CA probes must match it),
* validity window (deprecated-yet-*unexpired* roots are the Table 9 focus),
* ``BasicConstraints`` (the InvalidBasicConstraints attack),
* Subject Alternative Names (hostname validation / WrongHostname attack),
* revocation pointers (CRL distribution point, OCSP responder URL) and the
  ``Must-Staple`` TLS-feature extension (Table 8),
* a signature over the TBS bytes via :mod:`repro.pki.simcrypto`.

Everything is immutable; building happens through :class:`CertificateBuilder`
or the higher-level :class:`CertificateAuthority`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone

from .name import DistinguishedName
from .simcrypto import KeyPair, PrivateKey, PublicKey, Signature, generate_keypair, verify

__all__ = [
    "BasicConstraints",
    "KeyUsage",
    "Certificate",
    "CertificateBuilder",
    "CertificateAuthority",
    "utc",
]


def utc(year: int, month: int = 1, day: int = 1) -> datetime:
    """Shorthand for a UTC datetime at midnight."""
    return datetime(year, month, day, tzinfo=timezone.utc)


_SERIAL_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class BasicConstraints:
    """The X.509 BasicConstraints extension.

    ``ca`` is what the InvalidBasicConstraints attack abuses: a leaf
    certificate (``ca=False``) must not be accepted as a chain issuer.
    """

    ca: bool
    path_len: int | None = None


@dataclass(frozen=True)
class KeyUsage:
    """Subset of the X.509 KeyUsage extension relevant to TLS."""

    digital_signature: bool = True
    key_cert_sign: bool = False
    crl_sign: bool = False


@dataclass(frozen=True)
class Certificate:
    """An issued (signed) certificate."""

    subject: DistinguishedName
    issuer: DistinguishedName
    serial: int
    not_before: datetime
    not_after: datetime
    public_key: PublicKey
    basic_constraints: BasicConstraints
    key_usage: KeyUsage
    signature: Signature
    subject_alt_names: tuple[str, ...] = ()
    crl_distribution_point: str | None = None
    ocsp_responder_url: str | None = None
    must_staple: bool = False

    def tbs_bytes(self) -> bytes:
        """Canonical byte encoding of the to-be-signed portion.

        Any attacker modification of a signed field changes these bytes
        and therefore invalidates the signature -- the property the
        spoofed-CA probe depends on.

        Cached per instance: the encoding is a pure function of frozen
        fields, and every handshake re-verifies the same few chain
        certificates (``dataclasses.replace`` builds a new instance, so
        a copy never inherits a stale cache).
        """
        cached = self.__dict__.get("_tbs_cache")
        if cached is None:
            parts = [
                self.subject.rfc4514(),
                self.issuer.rfc4514(),
                str(self.serial),
                self.not_before.isoformat(),
                self.not_after.isoformat(),
                self.public_key.key_id,
                f"ca={self.basic_constraints.ca}",
                f"pathlen={self.basic_constraints.path_len}",
                f"ku={self.key_usage.digital_signature},{self.key_usage.key_cert_sign}",
                "|".join(self.subject_alt_names),
                self.crl_distribution_point or "",
                self.ocsp_responder_url or "",
                f"must_staple={self.must_staple}",
            ]
            cached = "\x1f".join(parts).encode()
            object.__setattr__(self, "_tbs_cache", cached)
        return cached

    @property
    def is_self_signed(self) -> bool:
        """True when issuer name equals subject name."""
        return self.subject.matches(self.issuer)

    def is_valid_at(self, when: datetime) -> bool:
        """Check the validity window (inclusive bounds, as X.509 specifies)."""
        return self.not_before <= when <= self.not_after

    def verify_signature(self, issuer_public_key: PublicKey) -> bool:
        """Verify this certificate's signature against an issuer key."""
        return verify(issuer_public_key, self.tbs_bytes(), self.signature)

    def sha256_name_serial(self) -> tuple[tuple[str, str, str, str], int]:
        """Identity tuple used by root stores: (normalised subject, serial)."""
        return (self.subject.normalized_key(), self.serial)

    def summary(self) -> str:
        """One-line human-readable description for reports."""
        kind = "CA" if self.basic_constraints.ca else "leaf"
        return (
            f"{kind} cert subject={self.subject.rfc4514()!r} "
            f"issuer={self.issuer.rfc4514()!r} serial={self.serial} "
            f"valid {self.not_before.date()}..{self.not_after.date()}"
        )


@dataclass
class CertificateBuilder:
    """Step-by-step construction of a certificate, then ``sign``.

    The builder is also the tool attackers use: ``spoof_from`` copies the
    *names and serial* of a target certificate without its key, producing
    exactly the probe certificate the paper's root-store technique sends.
    """

    subject: DistinguishedName | None = None
    issuer: DistinguishedName | None = None
    serial: int | None = None
    not_before: datetime = field(default_factory=lambda: utc(2018))
    not_after: datetime = field(default_factory=lambda: utc(2030))
    public_key: PublicKey | None = None
    basic_constraints: BasicConstraints = field(default_factory=lambda: BasicConstraints(ca=False))
    key_usage: KeyUsage = field(default_factory=KeyUsage)
    subject_alt_names: tuple[str, ...] = ()
    crl_distribution_point: str | None = None
    ocsp_responder_url: str | None = None
    must_staple: bool = False

    @classmethod
    def spoof_from(cls, target: Certificate, attacker_key: PublicKey) -> "CertificateBuilder":
        """Pre-fill a builder that mimics ``target``'s identity fields.

        Subject Name, Issuer Name and Serial Number all match the target
        (per §4.1 of the paper) but the key -- and hence every signature
        below it -- is the attacker's.
        """
        return cls(
            subject=target.subject,
            issuer=target.issuer,
            serial=target.serial,
            not_before=target.not_before,
            not_after=target.not_after,
            public_key=attacker_key,
            basic_constraints=target.basic_constraints,
            key_usage=target.key_usage,
            subject_alt_names=target.subject_alt_names,
        )

    def sign(self, signing_key: PrivateKey, issuer_name: DistinguishedName | None = None) -> Certificate:
        """Produce the signed certificate.

        ``issuer_name`` defaults to the builder's own ``issuer`` field, or
        to ``subject`` for self-signed certificates.
        """
        if self.subject is None:
            raise ValueError("certificate requires a subject")
        if self.public_key is None:
            raise ValueError("certificate requires a public key")
        issuer = issuer_name or self.issuer or self.subject
        serial = self.serial if self.serial is not None else next(_SERIAL_COUNTER)
        unsigned = Certificate(
            subject=self.subject,
            issuer=issuer,
            serial=serial,
            not_before=self.not_before,
            not_after=self.not_after,
            public_key=self.public_key,
            basic_constraints=self.basic_constraints,
            key_usage=self.key_usage,
            signature=Signature(key_id="", tag=""),
            subject_alt_names=self.subject_alt_names,
            crl_distribution_point=self.crl_distribution_point,
            ocsp_responder_url=self.ocsp_responder_url,
            must_staple=self.must_staple,
        )
        signature = signing_key.sign(unsigned.tbs_bytes())
        return replace(unsigned, signature=signature)


class CertificateAuthority:
    """A CA: a key pair plus a self-signed root (or an intermediate).

    Provides the issuing operations every substrate needs: leaf issuance
    for cloud servers, intermediate issuance for realistic chains, and the
    ``self_signed_leaf`` helper the NoValidation attack uses.
    """

    def __init__(
        self,
        name: DistinguishedName,
        *,
        not_before: datetime | None = None,
        not_after: datetime | None = None,
        seed: bytes | None = None,
        parent: "CertificateAuthority | None" = None,
    ) -> None:
        self.name = name
        self.keypair: KeyPair = generate_keypair(seed=seed)
        self.parent = parent
        builder = CertificateBuilder(
            subject=name,
            issuer=parent.name if parent else name,
            public_key=self.keypair.public,
            not_before=not_before or utc(2010),
            not_after=not_after or utc(2035),
            basic_constraints=BasicConstraints(ca=True),
            key_usage=KeyUsage(digital_signature=True, key_cert_sign=True, crl_sign=True),
        )
        signing_key = parent.keypair.private if parent else self.keypair.private
        self.certificate: Certificate = builder.sign(signing_key)

    def issue_leaf(
        self,
        hostname: str,
        *,
        extra_names: tuple[str, ...] = (),
        not_before: datetime | None = None,
        not_after: datetime | None = None,
        crl_distribution_point: str | None = None,
        ocsp_responder_url: str | None = None,
        must_staple: bool = False,
        seed: bytes | None = None,
    ) -> tuple[Certificate, KeyPair]:
        """Issue a server (leaf) certificate for ``hostname``."""
        keypair = generate_keypair(seed=seed)
        builder = CertificateBuilder(
            subject=DistinguishedName(common_name=hostname),
            issuer=self.name,
            public_key=keypair.public,
            not_before=not_before or self.certificate.not_before,
            not_after=not_after or self.certificate.not_after,
            subject_alt_names=(hostname, *extra_names),
            crl_distribution_point=crl_distribution_point,
            ocsp_responder_url=ocsp_responder_url,
            must_staple=must_staple,
        )
        return builder.sign(self.keypair.private), keypair

    def issue_intermediate(
        self, name: DistinguishedName, *, seed: bytes | None = None
    ) -> "CertificateAuthority":
        """Create a subordinate CA whose certificate this CA signs."""
        return CertificateAuthority(
            name,
            not_before=self.certificate.not_before,
            not_after=self.certificate.not_after,
            seed=seed,
            parent=self,
        )

    @staticmethod
    def self_signed_leaf(
        hostname: str, *, seed: bytes | None = None
    ) -> tuple[Certificate, KeyPair]:
        """A self-signed server certificate (the NoValidation attack tool)."""
        keypair = generate_keypair(seed=seed)
        builder = CertificateBuilder(
            subject=DistinguishedName(common_name=hostname),
            public_key=keypair.public,
            subject_alt_names=(hostname,),
        )
        return builder.sign(keypair.private), keypair
