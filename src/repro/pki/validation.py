"""Certificate-chain (path) validation, RFC 5280 subset.

This is the *reference* validator.  Simulated TLS libraries call it with
different strictness knobs (see :mod:`repro.tlslib`), and vulnerable
device policies skip parts of it -- reproducing the paper's Table 7
failure modes (no validation at all, or no hostname validation).

Crucially, validation failures are *typed* (:class:`ValidationErrorCode`)
so that library alert policies can translate them into the distinct TLS
alerts that open the root-store probing side channel:

* ``UNKNOWN_CA``  -> issuer name absent from the root store,
* ``BAD_SIGNATURE`` -> issuer name *present* but signature invalid
  (the spoofed-CA case).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from enum import Enum

from .certificate import Certificate
from .hostname import match_hostname
from .store import RootStore

__all__ = [
    "ValidationErrorCode",
    "ValidationResult",
    "validate_chain",
    "MAX_CHAIN_LENGTH",
]

#: Defensive bound on presented-chain length (loops, resource abuse).
MAX_CHAIN_LENGTH = 10


class ValidationErrorCode(Enum):
    """Why a certificate chain was rejected."""

    OK = "ok"
    EMPTY_CHAIN = "empty_chain"
    CHAIN_TOO_LONG = "chain_too_long"
    EXPIRED = "expired"
    NOT_YET_VALID = "not_yet_valid"
    BROKEN_CHAIN = "broken_chain"  # adjacent issuer/subject names do not link
    BAD_SIGNATURE = "bad_signature"  # known issuer name, invalid signature
    UNKNOWN_CA = "unknown_ca"  # no trusted root with the issuer's name
    INVALID_BASIC_CONSTRAINTS = "invalid_basic_constraints"  # non-CA used as issuer
    PATHLEN_EXCEEDED = "pathlen_exceeded"
    KEY_USAGE = "key_usage"  # issuer lacks keyCertSign
    HOSTNAME_MISMATCH = "hostname_mismatch"


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of a chain validation."""

    code: ValidationErrorCode
    detail: str = ""
    depth: int | None = None  # index in the presented chain where failure occurred

    @property
    def ok(self) -> bool:
        return self.code is ValidationErrorCode.OK

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _fail(code: ValidationErrorCode, detail: str, depth: int | None = None) -> ValidationResult:
    return ValidationResult(code=code, detail=detail, depth=depth)


def _check_window(certificate: Certificate, when: datetime, depth: int) -> ValidationResult | None:
    if when < certificate.not_before:
        return _fail(
            ValidationErrorCode.NOT_YET_VALID,
            f"certificate at depth {depth} not valid before {certificate.not_before.isoformat()}",
            depth,
        )
    if when > certificate.not_after:
        return _fail(
            ValidationErrorCode.EXPIRED,
            f"certificate at depth {depth} expired {certificate.not_after.isoformat()}",
            depth,
        )
    return None


def validate_chain(
    chain: list[Certificate],
    root_store: RootStore,
    *,
    when: datetime,
    hostname: str | None = None,
    check_hostname: bool = True,
    check_basic_constraints: bool = True,
    check_validity: bool = True,
) -> ValidationResult:
    """Validate a presented certificate chain (leaf first) against a store.

    The knobs (``check_hostname`` etc.) exist because real TLS stacks --
    and, per the paper, IoT devices -- differ in which checks they apply;
    device validation policies map onto them.

    Returns :class:`ValidationResult`; ``result.ok`` is True on success.
    """
    if not chain:
        return _fail(ValidationErrorCode.EMPTY_CHAIN, "no certificates presented")
    if len(chain) > MAX_CHAIN_LENGTH:
        return _fail(
            ValidationErrorCode.CHAIN_TOO_LONG,
            f"presented chain has {len(chain)} certificates (max {MAX_CHAIN_LENGTH})",
        )

    leaf = chain[0]

    if check_validity:
        for depth, certificate in enumerate(chain):
            failure = _check_window(certificate, when, depth)
            if failure is not None:
                return failure

    # Walk the chain from the leaf upward.  Each certificate must be
    # signed by the next one; the last must be signed by a trusted root
    # (or itself *be* a trusted root).
    for depth, certificate in enumerate(chain):
        issuer_name = certificate.issuer

        # Case 1: the issuer is the next certificate in the presented chain.
        if depth + 1 < len(chain):
            issuer_cert = chain[depth + 1]
            if not issuer_cert.subject.matches(issuer_name):
                return _fail(
                    ValidationErrorCode.BROKEN_CHAIN,
                    f"issuer {issuer_name.rfc4514()!r} at depth {depth} does not match "
                    f"next subject {issuer_cert.subject.rfc4514()!r}",
                    depth,
                )
            if check_basic_constraints:
                if not issuer_cert.basic_constraints.ca:
                    return _fail(
                        ValidationErrorCode.INVALID_BASIC_CONSTRAINTS,
                        f"issuer at depth {depth + 1} is not a CA certificate",
                        depth + 1,
                    )
                path_len = issuer_cert.basic_constraints.path_len
                if path_len is not None and depth > path_len:
                    return _fail(
                        ValidationErrorCode.PATHLEN_EXCEEDED,
                        f"pathLenConstraint={path_len} exceeded at depth {depth}",
                        depth,
                    )
                if not issuer_cert.key_usage.key_cert_sign:
                    return _fail(
                        ValidationErrorCode.KEY_USAGE,
                        f"issuer at depth {depth + 1} lacks keyCertSign",
                        depth + 1,
                    )
            if not certificate.verify_signature(issuer_cert.public_key):
                return _fail(
                    ValidationErrorCode.BAD_SIGNATURE,
                    f"signature at depth {depth} not made by presented issuer",
                    depth,
                )
            continue

        # Case 2: top of the presented chain; anchor in the root store.
        # A self-signed top certificate that is *exactly* in the store is
        # trusted directly.
        if certificate.is_self_signed and root_store.contains(certificate):
            break

        candidates = root_store.find_by_subject(issuer_name)
        if not candidates:
            # This is also the self-signed-leaf (NoValidation attack) path:
            # the leaf's issuer (itself) is not a trusted root.
            return _fail(
                ValidationErrorCode.UNKNOWN_CA,
                f"no trusted root with subject {issuer_name.rfc4514()!r}",
                depth,
            )
        anchored = False
        for root in candidates:
            if check_basic_constraints and not root.basic_constraints.ca:
                continue
            if certificate.verify_signature(root.public_key):
                anchored = True
                break
        if not anchored:
            # Name is known but no trusted key verifies the signature:
            # this is the spoofed-CA probe outcome.
            return _fail(
                ValidationErrorCode.BAD_SIGNATURE,
                f"trusted root {issuer_name.rfc4514()!r} found but signature invalid",
                depth,
            )

    if check_hostname and hostname is not None:
        if not match_hostname(leaf, hostname):
            presented = leaf.subject_alt_names or (leaf.subject.common_name,)
            return _fail(
                ValidationErrorCode.HOSTNAME_MISMATCH,
                f"hostname {hostname!r} not among presented identifiers {presented!r}",
                0,
            )

    return ValidationResult(code=ValidationErrorCode.OK)
