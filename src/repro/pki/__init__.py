"""Simulated PKI substrate: keys, certificates, stores, validation, revocation.

Public API re-exports the names the rest of the library (and downstream
users) need; see the module docstrings for the fidelity argument of each
simulation choice.
"""

from .certificate import (
    BasicConstraints,
    Certificate,
    CertificateAuthority,
    CertificateBuilder,
    KeyUsage,
    utc,
)
from .hostname import hostname_matches_pattern, match_hostname
from .name import DistinguishedName
from .revocation import (
    CertificateRevocationList,
    OCSPResponder,
    OCSPResponse,
    RevocationMethod,
    RevocationRegistry,
    RevocationStatus,
)
from .simcrypto import KeyPair, PrivateKey, PublicKey, Signature, generate_keypair, verify
from .store import RootStore
from .validation import (
    MAX_CHAIN_LENGTH,
    ValidationErrorCode,
    ValidationResult,
    validate_chain,
)

__all__ = [
    "BasicConstraints",
    "Certificate",
    "CertificateAuthority",
    "CertificateBuilder",
    "CertificateRevocationList",
    "DistinguishedName",
    "KeyPair",
    "KeyUsage",
    "MAX_CHAIN_LENGTH",
    "OCSPResponder",
    "OCSPResponse",
    "PrivateKey",
    "PublicKey",
    "RevocationMethod",
    "RevocationRegistry",
    "RevocationStatus",
    "RootStore",
    "Signature",
    "ValidationErrorCode",
    "ValidationResult",
    "generate_keypair",
    "hostname_matches_pattern",
    "match_hostname",
    "utc",
    "validate_chain",
    "verify",
]
