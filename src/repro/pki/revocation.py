"""Certificate revocation infrastructure: CRLs, OCSP, OCSP stapling.

Table 8 of the paper classifies devices by which revocation-checking
method they ever use (most use none).  The passive analysis detects the
methods from traffic signals:

* fetches of CRL distribution points,
* queries to OCSP responders,
* the ``status_request`` ClientHello extension (OCSP stapling) and
  presence of Must-Staple leaf extensions.

This module provides the server-side machinery those signals come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from enum import Enum

from .certificate import Certificate
from .simcrypto import PrivateKey, Signature, verify

__all__ = [
    "RevocationStatus",
    "RevocationMethod",
    "CertificateRevocationList",
    "OCSPResponse",
    "OCSPResponder",
    "RevocationRegistry",
]


class RevocationStatus(Enum):
    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


class RevocationMethod(Enum):
    """How a client checks revocation (Table 8 categories)."""

    NONE = "none"
    CRL = "crl"
    OCSP = "ocsp"
    OCSP_STAPLING = "ocsp_stapling"


@dataclass
class CertificateRevocationList:
    """A signed list of revoked serial numbers for one issuing CA."""

    issuer_name: str
    url: str
    this_update: datetime
    next_update: datetime
    revoked_serials: frozenset[int]
    signature: Signature

    def is_revoked(self, serial: int) -> bool:
        return serial in self.revoked_serials

    def is_fresh_at(self, when: datetime) -> bool:
        return self.this_update <= when <= self.next_update


@dataclass(frozen=True)
class OCSPResponse:
    """A (possibly stapled) OCSP response for a single certificate."""

    serial: int
    status: RevocationStatus
    produced_at: datetime
    next_update: datetime
    responder_url: str
    signature: Signature

    def is_fresh_at(self, when: datetime) -> bool:
        return self.produced_at <= when <= self.next_update


@dataclass
class OCSPResponder:
    """An online OCSP responder bound to one CA's revocation registry."""

    url: str
    signing_key: PrivateKey
    _revoked: set[int] = field(default_factory=set)
    #: Count of queries served; the passive revocation analysis reads this
    #: indirectly through traffic records, tests read it directly.
    queries_served: int = 0

    def revoke(self, serial: int) -> None:
        self._revoked.add(serial)

    def respond(self, serial: int, *, when: datetime, validity: timedelta = timedelta(days=7)) -> OCSPResponse:
        """Produce a signed response for ``serial`` as of ``when``."""
        self.queries_served += 1
        status = RevocationStatus.REVOKED if serial in self._revoked else RevocationStatus.GOOD
        body = f"ocsp:{self.url}:{serial}:{status.value}:{when.isoformat()}".encode()
        return OCSPResponse(
            serial=serial,
            status=status,
            produced_at=when,
            next_update=when + validity,
            responder_url=self.url,
            signature=self.signing_key.sign(body),
        )

    @staticmethod
    def verify_response(response: OCSPResponse, responder_public_key) -> bool:
        """Check the responder's signature on a response/staple."""
        body = (
            f"ocsp:{response.responder_url}:{response.serial}:"
            f"{response.status.value}:{response.produced_at.isoformat()}".encode()
        )
        return verify(responder_public_key, body, response.signature)


@dataclass
class RevocationRegistry:
    """Per-CA revocation bookkeeping: issues CRLs and hosts an OCSP responder.

    One registry is attached to each simulated CA that the testbed's cloud
    servers chain to.
    """

    issuer_name: str
    crl_url: str
    ocsp_url: str
    signing_key: PrivateKey
    _revoked: set[int] = field(default_factory=set)
    crl_fetches: int = 0

    def __post_init__(self) -> None:
        self.ocsp = OCSPResponder(url=self.ocsp_url, signing_key=self.signing_key)

    def revoke(self, certificate: Certificate) -> None:
        """Revoke an issued certificate (serial-based, like real CRLs)."""
        self._revoked.add(certificate.serial)
        self.ocsp.revoke(certificate.serial)

    def revoke_serial(self, serial: int) -> None:
        self._revoked.add(serial)
        self.ocsp.revoke(serial)

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked

    def current_crl(self, *, when: datetime, validity: timedelta = timedelta(days=30)) -> CertificateRevocationList:
        """Serve the current CRL (models a fetch of the distribution point)."""
        self.crl_fetches += 1
        body = f"crl:{self.crl_url}:{sorted(self._revoked)}:{when.isoformat()}".encode()
        return CertificateRevocationList(
            issuer_name=self.issuer_name,
            url=self.crl_url,
            this_update=when,
            next_update=when + validity,
            revoked_serials=frozenset(self._revoked),
            signature=self.signing_key.sign(body),
        )

    def staple_for(self, certificate: Certificate, *, when: datetime) -> OCSPResponse:
        """Produce a staple a server can attach in its handshake."""
        return self.ocsp.respond(certificate.serial, when=when)
