"""Hostname verification per RFC 2818 / RFC 6125 (simplified).

The WrongHostname attack in the paper presents a *valid* chain for a
domain the attacker controls; devices that skip this check accept it.
This module is the reference implementation the secure validation policy
uses; vulnerable device policies simply do not call it.

Rules implemented:

* dNSName entries from SubjectAltName are matched first; if any SAN of
  dNSName type is present, the Common Name is ignored (RFC 6125 §6.4.4).
* Matching is case-insensitive on ASCII labels.
* A single wildcard is allowed only as the complete left-most label
  (``*.example.com``), must not match more than one label, and must not
  match a bare registrable domain (``*.com`` style wildcards are refused
  via a minimum-label heuristic).
* IP addresses never match wildcards and must compare exactly.
"""

from __future__ import annotations

import ipaddress
from functools import lru_cache

from .certificate import Certificate

__all__ = ["match_hostname", "hostname_matches_pattern"]


@lru_cache(maxsize=4096)
def _is_ip_address(value: str) -> bool:
    """Cached: the catalog's hostname/SAN universe is small and each
    handshake re-checks the same strings (a failed ``ip_address`` parse
    costs an exception per call)."""
    try:
        ipaddress.ip_address(value)
    except ValueError:
        return False
    return True


def hostname_matches_pattern(hostname: str, pattern: str) -> bool:
    """Check one presented identifier ``pattern`` against ``hostname``."""
    hostname = hostname.rstrip(".").lower()
    pattern = pattern.rstrip(".").lower()
    if not hostname or not pattern:
        return False

    if _is_ip_address(hostname) or _is_ip_address(pattern):
        return hostname == pattern

    if "*" not in pattern:
        return hostname == pattern

    pattern_labels = pattern.split(".")
    host_labels = hostname.split(".")

    # Wildcard must be the entire left-most label only.
    if pattern_labels[0] != "*" or any("*" in label for label in pattern_labels[1:]):
        return False
    # Refuse overly-broad wildcards such as "*.com".
    if len(pattern_labels) < 3:
        return False
    # The wildcard covers exactly one label.
    if len(host_labels) != len(pattern_labels):
        return False
    return host_labels[1:] == pattern_labels[1:]


def match_hostname(certificate: Certificate, hostname: str) -> bool:
    """RFC 6125 check of ``hostname`` against a certificate's identifiers."""
    sans = [name for name in certificate.subject_alt_names if name]
    if sans:
        return any(hostname_matches_pattern(hostname, san) for san in sans)
    return hostname_matches_pattern(hostname, certificate.subject.common_name)
