"""Trusted root stores.

A root store is the set of CA certificates a TLS client trusts.  The
paper's central observation is that IoT root stores are poorly maintained:
they keep *deprecated-yet-unexpired* roots, including explicitly
distrusted CAs (TurkTrust, CNNIC, WoSign, Certinomis).  This module
provides the store container used by both device models and the platform
history substrate (:mod:`repro.roothistory`).

Lookups are by *subject name* first -- that ordering is what creates the
alert side channel: a client that finds a name match but a signature
mismatch reports a different error (``decrypt_error`` / ``bad_certificate``)
than one that finds no name at all (``unknown_ca``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Iterable, Iterator

from .certificate import Certificate
from .name import DistinguishedName

__all__ = ["RootStore"]


@dataclass
class RootStore:
    """A mutable set of trusted root certificates.

    ``label`` names the owning platform or device (for reports).
    """

    label: str = "unnamed"
    _by_subject: dict[tuple[str, str, str, str], list[Certificate]] = field(default_factory=dict)

    @classmethod
    def from_certificates(cls, label: str, certificates: Iterable[Certificate]) -> "RootStore":
        store = cls(label=label)
        for certificate in certificates:
            store.add(certificate)
        return store

    def add(self, certificate: Certificate) -> None:
        """Add a trusted root.  Idempotent for identical certificates."""
        key = certificate.subject.normalized_key()
        bucket = self._by_subject.setdefault(key, [])
        if certificate not in bucket:
            bucket.append(certificate)

    def remove(self, certificate: Certificate) -> bool:
        """Remove a root; returns True when it was present."""
        key = certificate.subject.normalized_key()
        bucket = self._by_subject.get(key, [])
        if certificate in bucket:
            bucket.remove(certificate)
            if not bucket:
                del self._by_subject[key]
            return True
        return False

    def remove_by_name(self, name: DistinguishedName) -> int:
        """Remove all roots with the given subject; returns count removed."""
        bucket = self._by_subject.pop(name.normalized_key(), [])
        return len(bucket)

    def find_by_subject(self, name: DistinguishedName) -> list[Certificate]:
        """All trusted roots whose subject matches ``name``."""
        return list(self._by_subject.get(name.normalized_key(), []))

    def contains_name(self, name: DistinguishedName) -> bool:
        """Whether any trusted root carries this subject name."""
        return name.normalized_key() in self._by_subject

    def contains(self, certificate: Certificate) -> bool:
        """Exact-certificate membership (same name *and* same key/signature)."""
        return certificate in self._by_subject.get(certificate.subject.normalized_key(), [])

    def certificates(self) -> list[Certificate]:
        """All roots, in insertion order per subject bucket."""
        return [cert for bucket in self._by_subject.values() for cert in bucket]

    def unexpired_at(self, when: datetime) -> list[Certificate]:
        """Roots whose validity window covers ``when``."""
        return [cert for cert in self.certificates() if cert.is_valid_at(when)]

    def copy(self, label: str | None = None) -> "RootStore":
        """Shallow copy (certificates are immutable, so this is safe)."""
        return RootStore.from_certificates(label or self.label, self.certificates())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_subject.values())

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self.certificates())

    def __contains__(self, certificate: object) -> bool:
        return isinstance(certificate, Certificate) and self.contains(certificate)
