"""Simulated public-key cryptography for the IoTLS reproduction.

The paper's attacks and probing technique are *structural*: they depend on
whether a signature over a certificate's TBS ("to-be-signed") bytes is
valid, never on breaking cryptography.  Real asymmetric crypto would only
slow the simulation down, so this module provides a faithful stand-in:

* :func:`generate_keypair` creates a key pair whose private half holds a
  random secret.  The secret is also registered with a module-level
  *signature oracle* keyed by the public key id.
* :meth:`PrivateKey.sign` computes ``SHA-256(secret || message)``.  Only
  code holding the :class:`PrivateKey` object can produce valid signatures.
* :func:`verify` recomputes the tag by looking the secret up in the oracle
  via the *public* key id.  Attacker code inside the simulation never holds
  victim private keys, so unforgeability holds exactly as it would with
  real signatures.

This preserves the one distinction every experiment in the paper relies
on -- *valid signature from key K* versus *anything else* -- while keeping
handshakes fast enough to generate multi-million-connection longitudinal
traces on a laptop.  See DESIGN.md ("Signature oracle vs real crypto").
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field

__all__ = [
    "KeyId",
    "PublicKey",
    "PrivateKey",
    "KeyPair",
    "Signature",
    "generate_keypair",
    "verify",
    "sha256_hex",
    "oracle_size",
]

KeyId = str

#: Module-level signature oracle: public key id -> signing secret.
#: Private by convention; simulation code must go through ``verify``.
_ORACLE: dict[KeyId, bytes] = {}


def sha256_hex(data: bytes) -> str:
    """Return the hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def oracle_size() -> int:
    """Number of keys registered with the signature oracle (for tests)."""
    return len(_ORACLE)


@dataclass(frozen=True)
class PublicKey:
    """Public half of a simulated key pair.

    ``key_id`` is a digest of the signing secret, so two independently
    generated keys collide with negligible probability -- mirroring how
    distinct real-world keys have distinct SubjectPublicKeyInfo.
    """

    key_id: KeyId
    algorithm: str = "sim-rsa-2048"

    def fingerprint(self) -> str:
        """Short printable identifier used in logs and cert summaries."""
        return self.key_id[:16]


@dataclass(frozen=True)
class Signature:
    """A signature value: the signing key id plus the oracle tag."""

    key_id: KeyId
    tag: str
    algorithm: str = "sim-rsa-sha256"


@dataclass(frozen=True)
class PrivateKey:
    """Private half of a simulated key pair.

    Holding this object is the simulation's equivalent of knowing the
    private exponent: ``sign`` works only from here.
    """

    key_id: KeyId
    _secret: bytes = field(repr=False)

    def sign(self, message: bytes) -> Signature:
        """Sign ``message``; verifiable via :func:`verify` with the public key."""
        tag = hmac.new(self._secret, message, hashlib.sha256).hexdigest()
        return Signature(key_id=self.key_id, tag=tag)

    def public_key(self) -> PublicKey:
        return PublicKey(key_id=self.key_id)


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of the two key halves."""

    private: PrivateKey
    public: PublicKey


def generate_keypair(seed: bytes | None = None) -> KeyPair:
    """Generate a fresh simulated key pair.

    ``seed`` makes generation deterministic (used so that the device
    catalog and CA hierarchy are bit-for-bit reproducible across runs);
    omit it for a random key.
    """
    secret = hashlib.sha256(b"keygen:" + seed).digest() if seed is not None else os.urandom(32)
    key_id = hashlib.sha256(b"keyid:" + secret).hexdigest()
    _ORACLE[key_id] = secret
    private = PrivateKey(key_id=key_id, _secret=secret)
    return KeyPair(private=private, public=private.public_key())


def verify(public_key: PublicKey, message: bytes, signature: Signature) -> bool:
    """Check that ``signature`` is a valid signature over ``message``
    by the key identified by ``public_key``.

    Returns ``False`` when the signature was produced by a different key
    (e.g. an attacker's spoofed CA whose Subject/Issuer/Serial matches a
    legitimate root but whose key does not) or when the message differs.
    """
    if signature.key_id != public_key.key_id:
        return False
    secret = _ORACLE.get(public_key.key_id)
    if secret is None:
        return False
    expected = hmac.new(secret, message, hashlib.sha256).hexdigest()
    return hmac.compare_digest(expected, signature.tag)
