"""Device profiles: the declarative description of one IoT device.

A profile bundles everything the experiments need to know about a
device:

* identity (name, category, manufacturer) -- Table 1,
* whether it took part in *active* experiments and whether it tolerates
  repeated reboots (the paper excluded Washer/Dryer/Thermostat/Fridge
  from probing),
* its TLS instances (:mod:`repro.devices.instance`),
* the destinations it contacts, each wired to one instance and carrying
  a server-side TLS spec -- the client/server split is what lets the
  paper's "devices support better security than their servers" findings
  emerge from negotiation,
* a root-store profile (:mod:`repro.devices.rootstores`) -- Table 9,
* revocation behaviour -- Table 8,
* a longitudinal activity window -- the passive study's month grid.

The study's passive window is January 2018 (month 0) through March 2020
(month 26); active experiments ran in March 2021 (month 38).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from enum import Enum

from ..tls.versions import ProtocolVersion
from .instance import TLSInstanceSpec
from .policies import RevocationBehavior

__all__ = [
    "STUDY_MONTHS",
    "ACTIVE_EXPERIMENT_MONTH",
    "month_to_date",
    "DeviceCategory",
    "Party",
    "ServerEpoch",
    "ServerSpec",
    "DestinationSpec",
    "StoreProfile",
    "LongitudinalSpec",
    "DeviceProfile",
]

#: Number of months in the passive study (Jan 2018 .. Mar 2020 inclusive).
STUDY_MONTHS = 27

#: Month index of the bulk of the active experiments (March 2021).
ACTIVE_EXPERIMENT_MONTH = 38


def month_to_date(month: int, day: int = 15) -> datetime:
    """Convert a study-month index to a mid-month UTC datetime."""
    year = 2018 + month // 12
    return datetime(year, month % 12 + 1, day, tzinfo=timezone.utc)


class UpdatePolicy(Enum):
    """How a device receives software updates (§4.1's update discipline).

    The study updated automatic devices at the manufacturer's cadence
    and accepted manual updates ad hoc when companion apps asked.
    """

    AUTOMATIC = "automatic"
    MANUAL = "manual"
    NONE = "none"


class DeviceCategory(Enum):
    """The six Table 1 categories."""

    CAMERA = "Cameras"
    SMART_HUB = "Smart Hubs"
    HOME_AUTOMATION = "Home Automation"
    TV = "TV"
    AUDIO = "Audio"
    APPLIANCE = "Appliances"


class Party(Enum):
    """Destination ownership, labelled as in Ren et al. [52]."""

    FIRST = "first"
    THIRD = "third"


@dataclass(frozen=True)
class ServerEpoch:
    """One period of a destination server's TLS configuration."""

    versions: tuple[ProtocolVersion, ...]
    cipher_codes: tuple[int, ...]  # server preference order


@dataclass(frozen=True)
class ServerSpec:
    """A destination server's configuration over the study timeline.

    ``anchor_index`` selects which of the testbed's designated anchor CAs
    (a fixed subset of the *common* roots present in every device store)
    signs the server's certificate.
    """

    timeline: tuple[tuple[int, ServerEpoch], ...]
    anchor_index: int = 0
    supports_stapling: bool = False
    must_staple: bool = False
    #: RFC 7507: refuse fallback retries carrying TLS_FALLBACK_SCSV.
    honor_fallback_scsv: bool = False

    def epoch_at(self, month: int) -> ServerEpoch:
        chosen = self.timeline[0][1]
        for epoch_month, epoch in self.timeline:
            if month >= epoch_month:
                chosen = epoch
            else:
                break
        return chosen

    @staticmethod
    def static(
        epoch: ServerEpoch, *, anchor_index: int = 0, supports_stapling: bool = False
    ) -> "ServerSpec":
        return ServerSpec(
            timeline=((0, epoch),),
            anchor_index=anchor_index,
            supports_stapling=supports_stapling,
        )


@dataclass(frozen=True)
class DestinationSpec:
    """One destination a device contacts."""

    hostname: str
    instance: str  # name of the TLS instance used for this destination
    server: ServerSpec
    party: Party = Party.FIRST
    sensitive_payload: str | None = None  # plaintext an interceptor would see
    tested_for_downgrade: bool = True  # included in the Table 5 experiment
    #: Whether the device's application code retries this destination with
    #: downgraded security on failure.  Different code paths on a device can
    #: share one TLS instance (same fingerprint) yet differ in retry logic,
    #: which is how e.g. the HomePod downgrades on 7 of its 9 destinations.
    fallback_enabled: bool = True
    monthly_weight: float = 1.0  # relative passive connection volume
    active_months: tuple[int, int] | None = None  # (first, last) inclusive override


@dataclass(frozen=True)
class StoreProfile:
    """Ground truth for a device's root store (drives Table 9 / Figure 4).

    ``common_count`` / ``deprecated_count`` are how many of the universe's
    122 common and 87 deprecated roots the device ships.
    ``force_deprecated`` pins specific CAs into the store (e.g. LG TV's
    TurkTrust, removed in 2013).  ``recency_bias`` shapes which deprecated
    roots a device retains: high bias keeps mostly recently-removed roots
    (a recently-built or partially-maintained store), low bias keeps old
    ones too.  ``probe_conclusive_rate`` is the per-certificate chance an
    active probe yields a conclusive answer (Table 9 denominators).
    """

    common_count: int = 122
    deprecated_count: int = 0
    force_deprecated: tuple[str, ...] = ()
    recency_bias: float = 2.0
    #: Per-certificate probability that an active probe yields a conclusive
    #: answer (the device produced classifiable traffic) -- Table 9's
    #: denominators.  Split by probe set because campaign conditions
    #: differed between the common and deprecated sweeps.
    conclusive_rate_common: float = 0.97
    conclusive_rate_deprecated: float = 0.85


@dataclass(frozen=True)
class LongitudinalSpec:
    """Passive-study activity window for one device."""

    first_month: int = 0
    last_month: int = STUDY_MONTHS - 1
    gap_months: frozenset[int] = frozenset()

    def active_in(self, month: int) -> bool:
        return self.first_month <= month <= self.last_month and month not in self.gap_months

    @property
    def months_active(self) -> int:
        return sum(1 for m in range(self.first_month, self.last_month + 1) if m not in self.gap_months)


@dataclass(frozen=True)
class DeviceProfile:
    """The full declarative description of one device."""

    name: str
    category: DeviceCategory
    manufacturer: str
    active: bool  # takes part in active (interception) experiments
    rebootable: bool = True  # suitable for repeated smart-plug reboots
    instances: tuple[TLSInstanceSpec, ...] = ()
    destinations: tuple[DestinationSpec, ...] = ()
    revocation: RevocationBehavior = field(default_factory=RevocationBehavior.none)
    store: StoreProfile = field(default_factory=StoreProfile)
    longitudinal: LongitudinalSpec = field(default_factory=LongitudinalSpec)
    units_sold_millions: float = 1.0  # for the headline "200M units" figure
    update_policy: UpdatePolicy = UpdatePolicy.AUTOMATIC
    #: Month index of the last software update before the active
    #: experiments (None = updates continued through the probe date).
    #: §5.2: "LG TV was last updated in July 2019 and Roku TV in
    #: September 2020, while the bulk of our experiments were performed
    #: in 2021."
    last_update_month: int | None = None

    def __post_init__(self) -> None:
        instance_names = {spec.name for spec in self.instances}
        if len(instance_names) != len(self.instances):
            raise ValueError(f"{self.name}: duplicate instance names")
        for destination in self.destinations:
            if destination.instance not in instance_names:
                raise ValueError(
                    f"{self.name}: destination {destination.hostname!r} references "
                    f"unknown instance {destination.instance!r}"
                )

    def instance_spec(self, name: str) -> TLSInstanceSpec:
        for spec in self.instances:
            if spec.name == name:
                return spec
        raise KeyError(f"{self.name}: no instance named {name!r}")

    def destinations_via(self, instance_name: str) -> list[DestinationSpec]:
        return [d for d in self.destinations if d.instance == instance_name]
