"""Construction of per-device root stores from the CA universe.

Each device's ground-truth store is built deterministically from its
:class:`~repro.devices.profile.StoreProfile`:

* a fixed set of *anchor* CAs -- common roots that every device carries
  because the testbed's cloud servers chain to them (otherwise devices
  could not establish any legitimate connection),
* a seeded sample of the remaining common roots up to ``common_count``,
* pinned deprecated roots (``force_deprecated``, e.g. the distrusted CAs
  the paper names) plus a seeded, recency-weighted sample of further
  deprecated roots up to ``deprecated_count``.

The recency weighting models the paper's Figure 4 observation: most
retained stale roots were removed in 2018/2019 (near the devices'
manufacture date), with poorly-maintained devices (LG TV) reaching back
to 2013.
"""

from __future__ import annotations

import random

from ..pki.store import RootStore
from ..roothistory.records import RootCARecord
from ..roothistory.universe import RootStoreUniverse
from .profile import StoreProfile

__all__ = ["ANCHOR_COUNT", "anchor_records", "build_device_store"]

#: The first N common roots (sorted by name) anchor all testbed servers.
ANCHOR_COUNT = 8


def anchor_records(universe: RootStoreUniverse) -> list[RootCARecord]:
    """The designated anchor CAs every device store must contain."""
    return universe.common_records()[:ANCHOR_COUNT]


def build_device_store(
    device_name: str, profile: StoreProfile, universe: RootStoreUniverse
) -> RootStore:
    """Materialise the ground-truth root store for one device."""
    rng = random.Random(f"store:{device_name}")
    store = RootStore(label=f"{device_name} root store")

    commons = universe.common_records()
    anchors = commons[:ANCHOR_COUNT]
    others = commons[ANCHOR_COUNT:]
    common_count = min(max(profile.common_count, ANCHOR_COUNT), len(commons))
    chosen_common = anchors + rng.sample(others, common_count - len(anchors))
    for record in chosen_common:
        store.add(record.certificate)

    deprecated = universe.deprecated_records()
    by_name = {record.name: record for record in deprecated}
    forced: list[RootCARecord] = []
    for name in profile.force_deprecated:
        if name not in by_name:
            raise KeyError(f"{device_name}: forced deprecated root {name!r} not in universe")
        forced.append(by_name[name])

    remaining = [record for record in deprecated if record.name not in set(profile.force_deprecated)]
    target = min(profile.deprecated_count, len(deprecated))
    fill_count = max(0, target - len(forced))
    chosen_deprecated = forced + _weighted_sample(rng, remaining, fill_count, profile.recency_bias)
    for record in chosen_deprecated:
        store.add(record.certificate)

    return store


def _weighted_sample(
    rng: random.Random,
    records: list[RootCARecord],
    count: int,
    recency_bias: float,
) -> list[RootCARecord]:
    """Sample ``count`` records without replacement, weighting recent
    removal years by ``(year - 2012) ** recency_bias``."""
    if count >= len(records):
        return list(records)
    pool = list(records)
    chosen: list[RootCARecord] = []
    for _ in range(count):
        weights = [
            max((record.removal_year or 2020) - 2012, 1) ** recency_bias for record in pool
        ]
        total = sum(weights)
        pick = rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if pick <= cumulative:
                chosen.append(pool.pop(index))
                break
    return chosen
